//! Chaos suite for crash-safe incremental maintenance under ingest churn
//! (DESIGN.md §5i): a served sharded organization is maintained by a
//! `Maintainer` while CDC events stream in and every `churn.*` failpoint
//! kills the maintainer at phase boundaries. The contract:
//!
//! * **Bit-identical convergence** — for any failpoint schedule, killing
//!   the maintainer and restarting it from its durable directory (fresh
//!   `Maintainer`, same seed lake) converges to exactly the organization
//!   an uninterrupted run publishes, fingerprint-equal.
//! * **Exact event accounting** — a torn change-log append acknowledges
//!   nothing; the re-ingested event gets the *same* sequence number, so
//!   no event is ever lost or applied twice.
//! * **ε-convergence** — an incrementally maintained organization's Eq 6
//!   effectiveness stays within ε of a from-scratch rebuild over the
//!   post-churn lake.
//! * **Shard-scoped migration** — sessions pinned to shards the churn
//!   didn't touch ride the republish in place (`lost_depth == 0`), even
//!   though the underlying lake changed.
//!
//! CI runs this binary with `DLN_FAILPOINTS` arming the `churn.*` sites
//! at various probabilities (and `--test-threads=1`, since an env-armed
//! run must not overlap another test's scoped override); the assertions
//! hold in every cell of that matrix.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use datalake_nav::embed::TopicAccumulator;
use datalake_nav::lake::{AttrChange, ChangeEvent};
use datalake_nav::org::{
    build_sharded, Evaluator, MaintConfig, Maintainer, NavConfig, OrgContext, Organization,
    Representatives, SearchConfig, ShardPolicy, ShardedBuild, StateId,
};
use datalake_nav::prelude::*;
use datalake_nav::serve::{MaintReport, ManualClock, SwapOutcome};
use datalake_nav::synth::TagCloudConfig;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_churn_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup() -> (DataLake, ShardedBuild) {
    let bench = TagCloudConfig::small().generate();
    let cfg = SearchConfig {
        max_iters: 60,
        plateau_iters: 20,
        shards: ShardPolicy::Fixed(2),
        ..SearchConfig::default()
    };
    let sharded = build_sharded(&bench.lake, &cfg);
    assert!(sharded.n_shards() >= 2, "need a router to shard-republish");
    (bench.lake, sharded)
}

fn service(build: &ShardedBuild) -> NavService {
    NavService::with_clock(
        build.built.ctx.clone(),
        build.built.organization.clone(),
        build.built.nav,
        ServeConfig::default(),
        Arc::new(ManualClock::new(0)),
    )
}

/// Maintenance configuration pinned against environment overrides: a
/// small sliced deadline (so `churn.search_kill` has slice boundaries to
/// fire at) and the change log inside the per-test directory.
fn maint_cfg(dir: &Path) -> MaintConfig {
    let mut cfg = MaintConfig::new(dir);
    cfg.search = SearchConfig {
        max_iters: 60,
        plateau_iters: 20,
        seed: 5,
        ..SearchConfig::default()
    };
    cfg.slice = Some(Duration::from_millis(2));
    cfg.ckpt_every = 2;
    cfg.rebalance_drift = 0.05;
    cfg.cdc_path = None;
    cfg
}

/// Deterministic splitmix64 — the tests' own randomness, independent of
/// any library RNG.
fn mix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A topic accumulator near an existing tag's direction (so admissions
/// and rebalances have meaningful geometry), with a deterministic nudge.
fn topic_near(lake: &DataLake, tag_ix: usize, nudge: f32) -> TopicAccumulator {
    let tags = lake.tags();
    let unit = &tags[tag_ix % tags.len()].unit_topic;
    let mut v: Vec<f32> = unit.clone();
    for (i, x) in v.iter_mut().enumerate() {
        *x += nudge * ((i % 3) as f32 - 1.0);
    }
    let mut acc = TopicAccumulator::new(lake.dim());
    acc.add(&v);
    acc
}

/// The test's own model of churn: table name → sorted labels. Used to
/// verify the maintained lake against an independent fold of the events.
type Model = BTreeMap<String, Vec<String>>;

/// Generate `n` deterministic pseudo-random events against `lake`:
/// adds (sometimes under a brand-new label), removes and retags of
/// previously added tables. Returns the events plus the expected
/// post-churn table model (churn tables only).
fn random_events(lake: &DataLake, n: usize, seed: u64) -> (Vec<ChangeEvent>, Model) {
    let mut z = seed;
    let labels: Vec<String> = lake.tags().iter().map(|t| t.label.clone()).collect();
    let mut model: Model = Model::new();
    let mut live: Vec<String> = Vec::new();
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let roll = mix(&mut z) % 4;
        if roll >= 2 || live.is_empty() {
            // Add a churn table under 1–2 existing labels, sometimes plus
            // a brand-new one.
            let name = format!("churn_t{i}");
            let l0 = labels[(mix(&mut z) as usize) % labels.len()].clone();
            let mut tags = vec![l0];
            if mix(&mut z).is_multiple_of(3) {
                tags.push(format!("churn_tag{}", mix(&mut z) % 3));
            }
            let attr_tag_ix = (mix(&mut z) as usize) % labels.len();
            events.push(ChangeEvent::TableAdded {
                name: name.clone(),
                tags: tags.clone(),
                attrs: vec![AttrChange {
                    name: "c0".to_string(),
                    topic: topic_near(lake, attr_tag_ix, 0.01 * (i as f32 + 1.0)),
                    n_values: 6,
                    tags: Vec::new(),
                }],
            });
            tags.sort();
            tags.dedup();
            model.insert(name.clone(), tags);
            live.push(name);
        } else if roll == 0 {
            let ix = (mix(&mut z) as usize) % live.len();
            let name = live.swap_remove(ix);
            events.push(ChangeEvent::TableRemoved { name: name.clone() });
            model.remove(&name);
        } else {
            let ix = (mix(&mut z) as usize) % live.len();
            let name = live[ix].clone();
            let mut tags = vec![labels[(mix(&mut z) as usize) % labels.len()].clone()];
            if mix(&mut z).is_multiple_of(2) {
                tags.push(labels[(mix(&mut z) as usize) % labels.len()].clone());
            }
            events.push(ChangeEvent::TableRetagged {
                name: name.clone(),
                tags: tags.clone(),
            });
            tags.sort();
            tags.dedup();
            model.insert(name, tags);
        }
    }
    (events, model)
}

/// Ingest every event with kill-and-restart on torn appends: an `Err`
/// acknowledges nothing, so the event is re-ingested through a *fresh*
/// maintainer over the same directory — and must receive the sequence
/// number the torn attempt failed to ack. Returns the last acked seq.
fn ingest_all(
    seed_lake: &DataLake,
    build: &ShardedBuild,
    dir: &Path,
    events: &[ChangeEvent],
) -> u64 {
    let mut maint = Maintainer::for_build(seed_lake, build, maint_cfg(dir)).expect("open");
    let mut last = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let want = (i + 1) as u64;
        let mut tries = 0;
        loop {
            match maint.ingest(ev) {
                Ok(seq) => {
                    assert_eq!(
                        seq, want,
                        "acked sequence numbers are contiguous: nothing lost, nothing doubled"
                    );
                    last = seq;
                    break;
                }
                Err(_) => {
                    // Torn append: crash and restart the maintainer.
                    tries += 1;
                    assert!(tries < 200, "torn-log retries diverged");
                    maint =
                        Maintainer::for_build(seed_lake, build, maint_cfg(dir)).expect("reopen");
                }
            }
        }
    }
    last
}

/// Run maintenance cycles until one publishes, simulating `kill -9`
/// recovery: every attempt constructs a fresh `Maintainer` over the same
/// directory. After every attempt — crashed or not — no live session's
/// path may be torn.
fn drive_to_publish(
    svc: &NavService,
    seed_lake: &DataLake,
    build: &ShardedBuild,
    dir: &Path,
    max_attempts: usize,
) -> (MaintReport, usize) {
    for attempt in 1..=max_attempts {
        let mut maint = Maintainer::for_build(seed_lake, build, maint_cfg(dir)).expect("restart");
        let out = svc.run_maintenance_cycle(&mut maint);
        let (_, invalid) = svc.validate_live_paths();
        assert_eq!(invalid, 0, "a cycle attempt tore a live session's path");
        match out {
            Ok(r) if r.epoch.is_some() => return (r, attempt),
            Ok(_) | Err(_) => continue,
        }
    }
    panic!("maintainer failed to publish within {max_attempts} restarts");
}

/// The served organization's fingerprint.
fn served_fp(svc: &NavService) -> u64 {
    svc.snapshot()
        .owned_parts()
        .expect("owned snapshot")
        .1
        .fingerprint()
}

/// Eq 6 effectiveness of `org` over `ctx` (exact representatives).
fn effectiveness(ctx: &OrgContext, org: &Organization, nav: NavConfig) -> f64 {
    let reps = Representatives::exact(ctx);
    Evaluator::new(ctx, org, nav, &reps).effectiveness()
}

/// Verify the maintained lake against the test's independent event fold:
/// every churn table present with exactly its final labels, every removed
/// one absent.
fn assert_lake_matches_model(lake: &DataLake, model: &Model, n_churn_tables: usize) {
    let mut present = 0;
    for tid in lake.table_ids() {
        let t = lake.table(tid);
        if !t.name.starts_with("churn_t") {
            continue;
        }
        present += 1;
        let want = model
            .get(&t.name)
            .unwrap_or_else(|| panic!("table {} should have been removed", t.name));
        // The table's label set: table-level tags plus attr-level tags.
        let mut got: Vec<String> = t
            .tags
            .iter()
            .chain(t.attrs.iter().flat_map(|&a| lake.attr_tags(a)))
            .map(|&tg| lake.tag(tg).label.clone())
            .collect();
        got.sort();
        got.dedup();
        assert_eq!(
            &got, want,
            "labels of {} diverged from the event fold",
            t.name
        );
    }
    assert_eq!(present, model.len(), "missing churn tables");
    assert!(n_churn_tables >= model.len());
}

/// The root-anchored path to `target` (BFS over alive children).
fn path_to(org: &Organization, target: StateId) -> Vec<StateId> {
    use std::collections::{HashMap, HashSet, VecDeque};
    let mut prev: HashMap<u32, StateId> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::from([org.root().0]);
    let mut q = VecDeque::from([org.root()]);
    while let Some(s) = q.pop_front() {
        if s == target {
            break;
        }
        for &c in &org.state(s).children {
            if seen.insert(c.0) {
                prev.insert(c.0, s);
                q.push_back(c);
            }
        }
    }
    let mut path = vec![target];
    while *path.last().expect("nonempty") != org.root() {
        let p = prev[&path.last().expect("nonempty").0];
        path.push(p);
    }
    path.reverse();
    path
}

/// Open a session and walk it to `target` via the step API.
fn open_probe_at(svc: &NavService, org: &Organization, target: StateId, key: u64) -> SessionId {
    let sid = svc.open_session_keyed(key).expect("open probe");
    for step in path_to(org, target).into_iter().skip(1) {
        svc.step(sid, &StepRequest::action(StepAction::Descend(step)))
            .expect("probe descend");
    }
    sid
}

/// The tentpole property: under every `churn.*` failpoint, kill-and-
/// restart maintenance converges to the bit-identical organization of an
/// uninterrupted run, with exact event accounting throughout.
#[test]
fn killed_maintainer_converges_bit_identically() {
    let (lake, build) = setup();
    let (events, model) = random_events(&lake, 10, 0xC0FFEE);

    // Baseline: same events, one uninterrupted cycle, no failpoints.
    let base_fp;
    {
        let _clean = dln_fault::scoped("").expect("clean scope");
        let svc = service(&build);
        let dir = tmp("base");
        let last = ingest_all(&lake, &build, &dir, &events);
        assert_eq!(last, events.len() as u64);
        let (report, attempts) = drive_to_publish(&svc, &lake, &build, &dir, 4);
        assert_eq!(attempts, 1, "unfaulted cycle publishes on the first try");
        assert_eq!(report.applied_events, events.len() as u64);
        base_fp = served_fp(&svc);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Chaos: identical events, every phase-boundary failpoint armed
    // (unless the CI matrix armed its own schedule via DLN_FAILPOINTS).
    let armed_by_env = [
        "churn.log_torn",
        "churn.crash_mid_plan",
        "churn.crash_mid_apply",
        "churn.crash_mid_publish",
        "churn.search_kill",
    ]
    .iter()
    .any(|s| dln_fault::is_armed(s));
    let _fp = if armed_by_env {
        None
    } else {
        Some(
            dln_fault::scoped(
                "churn.log_torn:0.5:31,churn.crash_mid_plan:0.5:32,\
                 churn.crash_mid_apply:0.5:33,churn.crash_mid_publish:0.5:34,\
                 churn.search_kill:0.5:35",
            )
            .expect("valid spec"),
        )
    };

    let svc = service(&build);
    // One live mid-walk session rides through every crashed attempt.
    let live = svc.open_session_keyed(99).expect("open live");
    let view = svc
        .step(live, &StepRequest::action(StepAction::Stay))
        .expect("view");
    svc.step(
        live,
        &StepRequest::action(StepAction::Descend(view.children[0].state)),
    )
    .expect("descend");

    let dir = tmp("chaos");
    let last = ingest_all(&lake, &build, &dir, &events);
    assert_eq!(last, events.len() as u64, "every event acked exactly once");
    let (report, _attempts) = drive_to_publish(&svc, &lake, &build, &dir, 200);
    drop(_fp);

    assert_eq!(
        served_fp(&svc),
        base_fp,
        "kill-and-restart must converge bit-identically to the unfaulted run"
    );
    assert_eq!(report.applied_events, events.len() as u64);

    // Post-mortem under a clean scope: the cycle committed exactly once,
    // the change log drained, and the maintained lake matches an
    // independent fold of the events — no event lost or double-applied.
    let _clean = dln_fault::scoped("").expect("clean scope");
    let maint = Maintainer::for_build(&lake, &build, maint_cfg(&dir)).expect("reopen");
    assert_eq!(maint.cycle(), 1, "exactly one committed cycle");
    assert!(!maint.in_flight());
    assert_eq!(maint.applied_seq(), events.len() as u64);
    assert_eq!(maint.pending(), 0);
    assert_eq!(maint.quarantined(), 0);
    assert_lake_matches_model(maint.lake(), &model, events.len());

    // The live session migrates onto the republished organization.
    let resp = svc
        .step(live, &StepRequest::action(StepAction::Stay))
        .expect("step after publish");
    match resp.swap {
        SwapOutcome::Migrated { to_epoch, .. } => {
            assert_eq!(Some(to_epoch), report.epoch);
        }
        other => panic!("live session must observe the publish, got {other:?}"),
    }
    assert_eq!(svc.validate_live_paths(), (1, 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// ε-convergence: incrementally maintained organizations stay within ε
/// of a from-scratch rebuild's effectiveness over the post-churn lake —
/// across several random event batches, each published as its own cycle.
#[test]
fn maintained_effectiveness_tracks_fresh_rebuild() {
    let _clean = dln_fault::scoped("").expect("clean scope");
    let (lake, build) = setup();
    let svc = service(&build);
    let dir = tmp("epsilon");
    let scfg = SearchConfig {
        max_iters: 60,
        plateau_iters: 20,
        shards: ShardPolicy::Fixed(2),
        ..SearchConfig::default()
    };

    let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(&dir)).expect("open");
    let mut cycles = 0;
    for batch in 0..3u64 {
        let (events, _) = random_events(maint.lake(), 5, 0xBEEF ^ batch);
        for ev in &events {
            maint.ingest(ev).expect("ingest");
        }
        let report = svc.run_maintenance_cycle(&mut maint).expect("cycle");
        assert!(report.epoch.is_some(), "each batch publishes a cycle");
        cycles += 1;
    }
    assert_eq!(maint.cycle(), cycles);

    let (ctx, org) = svc.snapshot().owned_parts().expect("owned snapshot");
    org.validate(&ctx).expect("maintained org validates");
    let maintained = effectiveness(&ctx, &org, svc.snapshot().nav());

    // From-scratch rebuild over the identical post-churn lake.
    let final_lake = maint.lake().clone();
    let fresh = build_sharded(&final_lake, &scfg);
    let fresh_eff = effectiveness(&fresh.built.ctx, &fresh.built.organization, fresh.built.nav);

    assert!(
        maintained >= fresh_eff - 0.15,
        "maintained effectiveness {maintained:.4} fell more than ε below \
         the fresh rebuild's {fresh_eff:.4}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Exact accounting under a hostile change log: with `churn.log_torn`
/// armed at high probability, every event still lands exactly once, in
/// order, and the final maintained lake matches the independent fold.
#[test]
fn torn_change_log_never_loses_or_doubles_events() {
    let (lake, build) = setup();
    let (events, model) = random_events(&lake, 8, 0xDEAD);
    let dir = tmp("torn");
    {
        let _fp = dln_fault::scoped("churn.log_torn:0.7:77").expect("valid spec");
        let last = ingest_all(&lake, &build, &dir, &events);
        assert_eq!(last, events.len() as u64);
    }
    let _clean = dln_fault::scoped("").expect("clean scope");
    let svc = service(&build);
    let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(&dir)).expect("reopen");
    assert_eq!(maint.pending(), events.len() as u64);
    let report = svc.run_maintenance_cycle(&mut maint).expect("cycle");
    assert_eq!(report.applied_events, events.len() as u64);
    assert_lake_matches_model(maint.lake(), &model, events.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// Shard-scoped migration across a *lake change*: an event that only
/// touches one shard's labels republishes only that shard, and a session
/// pinned to the other shard rides the swap in place — zero lost depth,
/// identical slots — even though the organization now serves a different
/// lake.
#[test]
fn untouched_shard_sessions_ride_churn_republish_in_place() {
    let _clean = dln_fault::scoped("").expect("clean scope");
    let (lake, build) = setup();
    let svc = service(&build);

    // An event under a label owned by shard 1 only (pick the shard with
    // ≥ 2 tags so the republish is a genuine re-search).
    let hit_shard = (0..build.n_shards())
        .max_by_key(|&s| build.shard_tags[s].len())
        .expect("shards");
    let other_shard = (hit_shard + 1) % build.n_shards();
    let label = lake.tag(build.shard_tags[hit_shard][0]).label.clone();
    let ev = ChangeEvent::TableAdded {
        name: "churn_probe_t".to_string(),
        tags: vec![label],
        attrs: vec![AttrChange {
            name: "c0".to_string(),
            topic: topic_near(&lake, 0, 0.02),
            n_values: 6,
            tags: Vec::new(),
        }],
    };

    let org = &build.built.organization;
    let untouched = open_probe_at(&svc, org, build.shard_roots[other_shard], 100);
    let affected = open_probe_at(&svc, org, build.shard_roots[hit_shard], 101);
    let path_before = svc.session_path(untouched).expect("path");
    assert!(path_before.len() >= 2, "probe is genuinely mid-walk");

    let dir = tmp("ride");
    let mut maint = Maintainer::for_build(&lake, &build, maint_cfg(&dir)).expect("open");
    maint.ingest(&ev).expect("ingest");
    let report = svc.run_maintenance_cycle(&mut maint).expect("cycle");
    let epoch = report.epoch.expect("published epoch");
    assert_eq!(
        report.searched_shards, 1,
        "churn under one shard's label re-searches only that shard"
    );

    // Untouched shard: in-place ride, nothing lost, identical slots —
    // across a lake change.
    let resp = svc
        .step(untouched, &StepRequest::action(StepAction::Stay))
        .expect("step untouched");
    match resp.swap {
        SwapOutcome::Migrated {
            lost_depth,
            to_epoch,
            ..
        } => {
            assert_eq!(lost_depth, 0, "untouched shard loses nothing");
            assert_eq!(to_epoch, epoch);
        }
        other => panic!("expected migration, got {other:?}"),
    }
    assert_eq!(
        svc.session_path(untouched).expect("path"),
        path_before,
        "no replay: the exact same slots stay valid"
    );
    assert_eq!(
        svc.stats().migrated_in_place.load(Ordering::Relaxed),
        1,
        "the swap was taken in place"
    );

    // Affected shard: ordinary replay onto a valid path.
    let resp = svc
        .step(affected, &StepRequest::action(StepAction::Stay))
        .expect("step affected");
    assert!(
        matches!(resp.swap, SwapOutcome::Migrated { .. }),
        "affected probe must migrate, got {:?}",
        resp.swap
    );
    assert_eq!(svc.validate_live_paths(), (2, 0));
    std::fs::remove_dir_all(&dir).ok();
}
