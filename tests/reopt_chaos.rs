//! Chaos suite for the crash-safe feedback-driven re-optimization loop
//! (DESIGN.md §5h): a served sharded organization collects navigation
//! feedback, and a `Reoptimizer` runs epoch-committed cycles against it
//! while every `reopt.*` failpoint kills the optimizer at phase
//! boundaries. The contract:
//!
//! * **Bit-identical convergence** — for any failpoint schedule, killing
//!   the optimizer and restarting it from its durable state (fresh
//!   `Reoptimizer` over the same directory) converges to exactly the
//!   organization an uninterrupted run publishes, fingerprint-equal.
//! * **No torn snapshots** — `validate_live_paths` reports zero invalid
//!   paths after every crashed or successful cycle attempt.
//! * **Evidence conservation** — walk counts in the durable evidence log
//!   plus the service's merged log always equal the walks recorded: a
//!   torn append loses nothing (not acknowledged), a repeated drain
//!   double-counts nothing (ack-after-durable subtraction).
//! * **Shard-scoped migration** — sessions pinned to untouched shards
//!   ride a shard republish in place (`lost_depth == 0`, no replay);
//!   sessions inside the republished shard migrate by ordinary path
//!   replay onto valid paths.
//!
//! CI runs this binary with `DLN_FAILPOINTS` arming the `reopt.*` sites
//! at various probabilities (and `--test-threads=1`, since an env-armed
//! run must not overlap another test's scoped override); the assertions
//! hold in every cell of that matrix.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use datalake_nav::org::{
    build_sharded, CyclePhase, Organization, ReoptConfig, Reoptimizer, SearchConfig, ShardPolicy,
    ShardedBuild, StateId,
};
use datalake_nav::prelude::*;
use datalake_nav::serve::{Clock, CycleReport, ManualClock, SwapOutcome};
use datalake_nav::synth::TagCloudConfig;

const N_WALKS: u64 = 6;
const WALK_DEPTH: usize = 3;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_reopt_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup() -> (DataLake, ShardedBuild) {
    let bench = TagCloudConfig::small().generate();
    let cfg = SearchConfig {
        max_iters: 60,
        plateau_iters: 20,
        shards: ShardPolicy::Fixed(2),
        ..SearchConfig::default()
    };
    let sharded = build_sharded(&bench.lake, &cfg);
    assert!(sharded.n_shards() >= 2, "need a router to shard-republish");
    (bench.lake, sharded)
}

fn service(build: &ShardedBuild) -> NavService {
    NavService::with_clock(
        build.built.ctx.clone(),
        build.built.organization.clone(),
        build.built.nav,
        ServeConfig::default(),
        Arc::new(ManualClock::new(0)),
    )
}

/// Cycle configuration pinned against environment overrides: a small
/// sliced deadline (so `reopt.search_kill` has slice boundaries to fire
/// at) and the evidence log inside the per-test directory.
fn reopt_cfg(dir: &Path) -> ReoptConfig {
    let mut cfg = ReoptConfig::new(dir);
    cfg.search = SearchConfig {
        max_iters: 60,
        plateau_iters: 20,
        seed: 5,
        ..SearchConfig::default()
    };
    cfg.slice = Some(Duration::from_millis(2));
    cfg.ckpt_every = 2;
    cfg.evidence_path = None;
    cfg
}

/// Record `n` deterministic walks: each session descends `depth` levels
/// (child picked by session index, so identical across services over the
/// same organization) and closes, finalizing its walk into the merged log.
fn drive_walks(svc: &NavService, n: u64, depth: usize) {
    for i in 0..n {
        let sid = svc.open_session_keyed(i).expect("open session");
        for d in 0..depth {
            let view = svc
                .step(sid, &StepRequest::action(StepAction::Stay))
                .expect("view");
            if view.children.is_empty() {
                break;
            }
            let pick = view.children[(i as usize + d) % view.children.len()].state;
            svc.step(sid, &StepRequest::action(StepAction::Descend(pick)))
                .expect("descend");
        }
        svc.close_session(sid).expect("close session");
    }
}

/// Run cycles until one publishes, simulating `kill -9` recovery: every
/// attempt constructs a *fresh* `Reoptimizer` over the same directory (the
/// durable state is the only carry-over). After every attempt — crashed or
/// not — no live session's path may be torn.
fn drive_to_publish(
    svc: &NavService,
    lake: &DataLake,
    build: &ShardedBuild,
    dir: &Path,
    max_attempts: usize,
) -> (CycleReport, usize) {
    for attempt in 1..=max_attempts {
        let mut reopt = Reoptimizer::for_build(lake, build, reopt_cfg(dir)).expect("restart");
        let out = svc.run_reopt_cycle(&mut reopt);
        let (_, invalid) = svc.validate_live_paths();
        assert_eq!(invalid, 0, "a cycle attempt tore a live session's path");
        match out {
            Ok(r) if r.epoch.is_some() => return (r, attempt),
            Ok(_) | Err(_) => continue,
        }
    }
    panic!("optimizer failed to publish within {max_attempts} restarts");
}

/// The root-anchored path to `target` (BFS over alive children).
fn path_to(org: &Organization, target: StateId) -> Vec<StateId> {
    use std::collections::{HashMap, HashSet, VecDeque};
    let mut prev: HashMap<u32, StateId> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::from([org.root().0]);
    let mut q = VecDeque::from([org.root()]);
    while let Some(s) = q.pop_front() {
        if s == target {
            break;
        }
        for &c in &org.state(s).children {
            if seen.insert(c.0) {
                prev.insert(c.0, s);
                q.push_back(c);
            }
        }
    }
    let mut path = vec![target];
    while *path.last().expect("nonempty") != org.root() {
        let p = prev[&path.last().expect("nonempty").0];
        path.push(p);
    }
    path.reverse();
    path
}

/// Open a session and walk it to `target` via the step API.
fn open_probe_at(svc: &NavService, org: &Organization, target: StateId, key: u64) -> SessionId {
    let sid = svc.open_session_keyed(key).expect("open probe");
    for step in path_to(org, target).into_iter().skip(1) {
        svc.step(sid, &StepRequest::action(StepAction::Descend(step)))
            .expect("probe descend");
    }
    sid
}

/// The tentpole property: under every `reopt.*` failpoint, kill-and-restart
/// cycles converge to the bit-identical organization of an uninterrupted
/// run, with zero torn paths and exact evidence accounting throughout.
#[test]
fn killed_optimizer_converges_bit_identically() {
    let (lake, build) = setup();

    // Baseline: the same walks, one uninterrupted cycle, no failpoints.
    let base_fp;
    {
        let _clean = dln_fault::scoped("").expect("clean scope");
        let svc = service(&build);
        drive_walks(&svc, N_WALKS, WALK_DEPTH);
        let dir = tmp("base");
        let (report, attempts) = drive_to_publish(&svc, &lake, &build, &dir, 4);
        assert_eq!(attempts, 1, "unfaulted cycle publishes on the first try");
        assert_eq!(report.drained_sessions, N_WALKS);
        base_fp = svc
            .snapshot()
            .owned_parts()
            .expect("owned snapshot")
            .1
            .fingerprint();
        std::fs::remove_dir_all(&dir).ok();
    }

    // Chaos: identical walks, every phase-boundary failpoint armed (unless
    // the CI matrix armed its own schedule via DLN_FAILPOINTS).
    let armed_by_env = [
        "reopt.log_torn",
        "reopt.crash_mid_cycle",
        "reopt.crash_mid_publish",
        "reopt.search_kill",
    ]
    .iter()
    .any(|s| dln_fault::is_armed(s));
    let _fp = if armed_by_env {
        None
    } else {
        Some(
            dln_fault::scoped(
                "reopt.log_torn:0.6:21,reopt.crash_mid_cycle:0.5:22,\
                 reopt.crash_mid_publish:0.5:23,reopt.search_kill:0.5:24",
            )
            .expect("valid spec"),
        )
    };

    let svc = service(&build);
    drive_walks(&svc, N_WALKS, WALK_DEPTH);
    // One live mid-walk session rides through every crashed attempt.
    let live = svc.open_session_keyed(99).expect("open live");
    let view = svc
        .step(live, &StepRequest::action(StepAction::Stay))
        .expect("view");
    svc.step(
        live,
        &StepRequest::action(StepAction::Descend(view.children[0].state)),
    )
    .expect("descend");

    let dir = tmp("chaos");
    let (report, _attempts) = drive_to_publish(&svc, &lake, &build, &dir, 80);
    drop(_fp);

    let chaos_fp = svc
        .snapshot()
        .owned_parts()
        .expect("owned snapshot")
        .1
        .fingerprint();
    assert_eq!(
        chaos_fp, base_fp,
        "kill-and-restart must converge bit-identically to the unfaulted run"
    );

    // Post-mortem under a clean scope: durable state committed, evidence
    // conserved exactly, the live session migrates onto the republish.
    let _clean = dln_fault::scoped("").expect("clean scope");
    let reopt = Reoptimizer::for_build(&lake, &build, reopt_cfg(&dir)).expect("reopen");
    assert_eq!(reopt.cycle(), 1, "exactly one committed cycle");
    assert_eq!(reopt.phase(), CyclePhase::Idle);
    assert_eq!(
        reopt.evidence().n_sessions() + svc.merged_log().n_sessions(),
        N_WALKS,
        "evidence walk counts must match exactly: no loss, no double count"
    );
    let resp = svc
        .step(live, &StepRequest::action(StepAction::Stay))
        .expect("step after publish");
    match resp.swap {
        SwapOutcome::Migrated {
            to_epoch,
            lost_depth,
            ..
        } => {
            assert_eq!(Some(to_epoch), report.epoch);
            assert!(lost_depth <= 1, "at most the unreplayable tip is lost");
        }
        other => panic!("live session must observe the publish, got {other:?}"),
    }
    assert_eq!(svc.validate_live_paths(), (1, 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the cycle's background sweep finalizes TTL-expired sessions
/// into the merged log *before* the drain, so feedback from abandoned
/// sessions still reaches the evidence log and drives the republish.
#[test]
fn expired_sessions_finalize_into_the_cycle_drain() {
    let _clean = dln_fault::scoped("").expect("clean scope");
    let (lake, build) = setup();
    let clock = Arc::new(ManualClock::new(0));
    let svc = NavService::with_clock(
        build.built.ctx.clone(),
        build.built.organization.clone(),
        build.built.nav,
        ServeConfig {
            session_ttl_ms: 100,
            ..ServeConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    for i in 0..2u64 {
        let sid = svc.open_session_keyed(i).expect("open");
        let view = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .expect("view");
        let pick = view.children[(i as usize) % view.children.len()].state;
        svc.step(sid, &StepRequest::action(StepAction::Descend(pick)))
            .expect("descend");
    }
    clock.advance(10_000);

    let dir = tmp("sweep");
    let mut reopt = Reoptimizer::for_build(&lake, &build, reopt_cfg(&dir)).expect("reopt");
    let report = svc.run_reopt_cycle(&mut reopt).expect("cycle");
    assert_eq!(report.swept, 2, "the cycle sweeps expired sessions first");
    assert_eq!(
        report.drained_sessions, 2,
        "abandoned walks reach the evidence log"
    );
    assert!(report.epoch.is_some(), "their feedback drives a republish");
    assert_eq!(reopt.evidence().n_sessions(), 2);
    assert_eq!(svc.merged_log().n_sessions(), 0, "drain acked exactly");
    assert_eq!(svc.live_sessions(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: shard-scoped migration. A session whose path avoids the
/// republished shard rides the swap in place — identical slots, zero lost
/// depth, no replay — while a session inside the shard replays onto a
/// valid path.
#[test]
fn untouched_shard_sessions_ride_republish_in_place() {
    let _clean = dln_fault::scoped("").expect("clean scope");
    let (lake, build) = setup();

    // Rehearsal over a scratch service: the plan is a pure function of
    // (evidence, organization), so this reveals which shard the real run
    // will republish.
    let hit_shard;
    {
        let svc = service(&build);
        drive_walks(&svc, N_WALKS, WALK_DEPTH);
        let dir = tmp("rehearsal");
        let (report, _) = drive_to_publish(&svc, &lake, &build, &dir, 4);
        hit_shard = report.shard.expect("published shard");
        std::fs::remove_dir_all(&dir).ok();
    }
    let other_shard = (hit_shard + 1) % build.n_shards();

    let svc = service(&build);
    drive_walks(&svc, N_WALKS, WALK_DEPTH);
    let org = &build.built.organization;
    let untouched = open_probe_at(&svc, org, build.shard_roots[other_shard], 100);
    let affected = open_probe_at(&svc, org, build.shard_roots[hit_shard], 101);
    let path_before = svc.session_path(untouched).expect("path");
    assert!(path_before.len() >= 2, "probe is genuinely mid-walk");

    let dir = tmp("probe");
    let (report, _) = drive_to_publish(&svc, &lake, &build, &dir, 4);
    assert_eq!(
        report.shard,
        Some(hit_shard),
        "identical feedback replans the identical shard"
    );
    let epoch = report.epoch.expect("published epoch");

    // Untouched shard: in-place ride, nothing lost, identical slots.
    let resp = svc
        .step(untouched, &StepRequest::action(StepAction::Stay))
        .expect("step untouched");
    match resp.swap {
        SwapOutcome::Migrated {
            lost_depth,
            to_epoch,
            ..
        } => {
            assert_eq!(lost_depth, 0, "untouched shard loses nothing");
            assert_eq!(to_epoch, epoch);
        }
        other => panic!("expected migration, got {other:?}"),
    }
    assert_eq!(
        svc.session_path(untouched).expect("path"),
        path_before,
        "no replay: the exact same slots stay valid"
    );
    assert_eq!(
        svc.stats().migrated_in_place.load(Ordering::Relaxed),
        1,
        "the swap was taken in place"
    );

    // Affected shard: ordinary replay onto a valid path.
    let replays_before = svc.stats().migrated.load(Ordering::Relaxed);
    let resp = svc
        .step(affected, &StepRequest::action(StepAction::Stay))
        .expect("step affected");
    assert!(
        matches!(resp.swap, SwapOutcome::Migrated { .. }),
        "affected probe must migrate, got {:?}",
        resp.swap
    );
    assert!(
        svc.stats().migrated.load(Ordering::Relaxed) > replays_before,
        "inside the republished shard, migration is a replay"
    );
    assert_eq!(svc.validate_live_paths(), (2, 0));
    std::fs::remove_dir_all(&dir).ok();
}
