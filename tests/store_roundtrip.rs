//! Store durability suite (own binary: the failpoint registry is
//! process-global, so the corruption schedules here must not share a
//! process with other suites).
//!
//! * **Byte-flip exhaustion** — flipping *any single byte* of a store
//!   file makes `open_store` fail with a typed `Corrupt`, never a panic,
//!   never a silently-wrong snapshot: every byte of the file (header,
//!   payloads, checksums, inter-section padding) is covered by some
//!   validation.
//! * **Truncation** — every prefix of a store file is typed-corrupt.
//! * **Torn writes** — the `store.torn` failpoint produces a file that
//!   fails open; `open_store_with_fallback` then serves the rotated
//!   `.prev` generation.
//! * **Serving equivalence** — a navigation session served from a mapped
//!   snapshot is bit-identical (states, labels, probabilities, tables) to
//!   the same session served from the in-memory snapshot, across many
//!   seeded query walks (in-workspace property-test harness; the registry
//!   `proptest` crate is unavailable offline).

use std::path::PathBuf;
use std::sync::Arc;

use datalake_nav::org::{
    clustering_org, open_store, open_store_with_fallback, save_store, NavConfig, OrgContext,
    OrgView,
};
use datalake_nav::prelude::*;
use datalake_nav::serve::clock::ManualClock;
use datalake_nav::serve::Clock;
use dln_fault::DlnError;

fn tiny_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 8,
        n_attrs_target: 40,
        values_min: 4,
        values_max: 10,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_store_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Disarm every failpoint for the guard's lifetime. CI arms hostile
/// schedules (e.g. `store.torn:0.5`) for this whole binary; tests that
/// *require* clean saves pin their own schedule instead of inheriting the
/// environment, exactly like the scoped torn/mmap sections pin theirs.
fn clean() -> dln_fault::ScopedFailpoints {
    dln_fault::scoped("").expect("empty spec parses")
}

#[test]
fn every_single_byte_flip_is_typed_corrupt() {
    let _fp = clean();
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let path = tmp("flip.dlnstore");
    save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert!(open_store(&path).is_ok(), "pristine file opens");

    let flipped_path = tmp("flip_mut.dlnstore");
    for at in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x01;
        std::fs::write(&flipped_path, &bytes).unwrap();
        match open_store(&flipped_path) {
            Err(DlnError::Corrupt { .. }) => {}
            Err(other) => panic!("flip at byte {at}: wrong error type {other}"),
            Ok(_) => panic!("flip at byte {at} of {} went undetected", pristine.len()),
        }
    }
}

#[test]
fn every_truncation_is_typed_corrupt() {
    let _fp = clean();
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let path = tmp("trunc.dlnstore");
    save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let cut_path = tmp("trunc_mut.dlnstore");
    // Every prefix would be O(n²) I/O for no extra coverage; probe each
    // validation regime: empty, mid-magic, mid-header, just-short-of-
    // header, every section boundary neighbourhood, and len-1.
    let mut cuts = vec![0, 1, 4, 8, 24, 100, pristine.len() / 2, pristine.len() - 1];
    let mut at = 64;
    while at < pristine.len() {
        cuts.push(at);
        cuts.push(at - 1);
        at += 512;
    }
    for &cut in &cuts {
        std::fs::write(&cut_path, &pristine[..cut]).unwrap();
        match open_store(&cut_path) {
            Err(DlnError::Corrupt { .. }) => {}
            Err(other) => panic!("truncation to {cut} bytes: wrong error type {other}"),
            Ok(_) => panic!("truncation to {cut} bytes went undetected"),
        }
    }
}

#[test]
fn torn_write_rotates_and_fallback_recovers() {
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let path = tmp("torn.dlnstore");
    {
        let _fp = clean();
        save_store(&path, &ctx, &org, NavConfig { gamma: 5.0 }).unwrap();
    }
    {
        let _fp = dln_fault::scoped("store.torn:1.0:0").unwrap();
        save_store(&path, &ctx, &org, NavConfig { gamma: 9.0 }).unwrap();
    }
    // The newest generation is torn...
    assert!(matches!(open_store(&path), Err(DlnError::Corrupt { .. })));
    // ...but the rotated previous generation serves.
    let recovered = open_store_with_fallback(&path).unwrap();
    assert_eq!(recovered.nav().gamma, 5.0);
    assert_eq!(recovered.fingerprint(), org.fingerprint());
    // A healthy re-save heals the chain for direct opens again.
    {
        let _fp = clean();
        save_store(&path, &ctx, &org, NavConfig { gamma: 7.0 }).unwrap();
    }
    assert_eq!(open_store(&path).unwrap().nav().gamma, 7.0);
}

#[test]
fn mmap_failpoint_heap_fallback_serves_identically() {
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let path = tmp("heap.dlnstore");
    let mapped = {
        let _fp = clean();
        save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
        open_store(&path).unwrap()
    };
    let heaped = {
        let _fp = dln_fault::scoped("store.mmap:1.0:0").unwrap();
        open_store(&path).unwrap()
    };
    assert!(!heaped.is_mmap(), "failpoint forces the heap copy");
    assert_eq!(mapped.fingerprint(), heaped.fingerprint());
    let q = ctx.attr(0).unit_topic.clone();
    for &sid in mapped.topo_order() {
        assert_eq!(mapped.label_of(sid, 2), heaped.label_of(sid, 2));
        let (a, b) = (
            datalake_nav::org::transition_probs_over(
                mapped.children(sid),
                mapped.nav(),
                mapped.child_mat(sid).unwrap(),
                &q,
            ),
            datalake_nav::org::transition_probs_over(
                heaped.children(sid),
                heaped.nav(),
                heaped.child_mat(sid).unwrap(),
                &q,
            ),
        );
        assert_eq!(a.len(), b.len());
        for ((s1, p1), (s2, p2)) in a.iter().zip(&b) {
            assert_eq!(s1, s2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
    }
}

#[test]
fn mapped_resave_preserves_exact_bytes() {
    let _fp = clean();
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let path = tmp("resave.dlnstore");
    save_store(&path, &ctx, &org, NavConfig::default()).unwrap();
    let mapped = open_store(&path).unwrap();
    let copy = tmp("resave_copy.dlnstore");
    mapped.save_to(&copy).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&copy).unwrap(),
        "re-publishing a mapped snapshot is byte-exact"
    );
}

/// Drive the same seeded greedy navigation session against two services
/// and assert every observable response field is identical (floating
/// point compared as exact bits).
fn assert_sessions_identical(a: &NavService, b: &NavService, ctx: &OrgContext, seed: u64) {
    let sa = a.open_session_keyed(seed).unwrap();
    let sb = b.open_session_keyed(seed).unwrap();
    let n_attrs = ctx.n_attrs() as u64;
    let mut cursor = seed;
    for step in 0..8 {
        cursor = cursor
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let attr = (cursor >> 33) % n_attrs;
        let mut req = StepRequest::action(StepAction::Stay);
        req.query = Some(ctx.attr(attr as u32).unit_topic.clone());
        req.list_tables = true;
        let ra = a.step(sa, &req).unwrap();
        let rb = b.step(sb, &req).unwrap();
        assert_eq!(
            ra.state, rb.state,
            "seed {seed} step {step}: cursor diverged"
        );
        assert_eq!(ra.depth, rb.depth);
        assert_eq!(
            ra.label, rb.label,
            "seed {seed} step {step}: label diverged"
        );
        assert_eq!(ra.at_tag_state, rb.at_tag_state);
        assert_eq!(
            ra.tables, rb.tables,
            "seed {seed} step {step}: tables diverged"
        );
        assert_eq!(ra.children.len(), rb.children.len());
        for (ca, cb) in ra.children.iter().zip(&rb.children) {
            assert_eq!(ca.state, cb.state);
            assert_eq!(ca.label, cb.label);
            assert_eq!(
                ca.prob.map(f64::to_bits),
                cb.prob.map(f64::to_bits),
                "seed {seed} step {step}: probability bits diverged at state {}",
                ca.state.0
            );
        }
        // Greedy descent on the (identical) ranking; reset at leaves.
        let best = ra
            .children
            .iter()
            .max_by(|x, y| {
                x.prob
                    .partial_cmp(&y.prob)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| c.state);
        let action = match best {
            Some(child) => StepAction::Descend(child),
            None => StepAction::Reset,
        };
        let da = a.step(sa, &StepRequest::action(action)).unwrap();
        let db = b.step(sb, &StepRequest::action(action)).unwrap();
        assert_eq!(da.state, db.state);
        assert_eq!(da.depth, db.depth);
    }
    a.close_session(sa).unwrap();
    b.close_session(sb).unwrap();
}

#[test]
fn mapped_sessions_are_bit_identical_to_owned_sessions() {
    let _fp = clean();
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let nav = NavConfig::default();
    let path = tmp("sessions.dlnstore");
    save_store(&path, &ctx, &org, nav).unwrap();

    let clock = Arc::new(ManualClock::new(0));
    let owned = NavService::with_clock(
        ctx.clone(),
        org,
        nav,
        ServeConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let mapped = NavService::open_path_with_clock(
        &path,
        ServeConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    )
    .unwrap();
    assert!(mapped.snapshot().is_mapped());
    assert!(!owned.snapshot().is_mapped());

    for seed in 1..=12u64 {
        assert_sessions_identical(&owned, &mapped, &ctx, seed);
    }
}

#[test]
fn live_sessions_migrate_onto_a_mapped_epoch() {
    // The existing hot-swap machinery works unchanged when the new epoch
    // is a mapped store file: sessions replay their path by tag-set
    // identity onto the mapped snapshot.
    let _fp = clean();
    let ctx = tiny_ctx();
    let org = clustering_org(&ctx);
    let nav = NavConfig::default();
    let path = tmp("migrate.dlnstore");
    save_store(&path, &ctx, &org, nav).unwrap();

    let svc = NavService::new(ctx.clone(), org, nav, ServeConfig::default());
    let sid = svc.open_session().unwrap();
    // Walk one level down before the swap.
    let view = svc
        .step(sid, &StepRequest::action(StepAction::Stay))
        .unwrap();
    let child = view.children[0].state;
    svc.step(sid, &StepRequest::action(StepAction::Descend(child)))
        .unwrap();

    let epoch = svc.publish_path(&path).unwrap();
    assert_eq!(epoch, 1);
    let resp = svc
        .step(sid, &StepRequest::action(StepAction::Stay))
        .unwrap();
    assert_eq!(resp.epoch, 1);
    match resp.swap {
        datalake_nav::serve::SwapOutcome::Migrated {
            from_epoch,
            to_epoch,
            lost_depth,
        } => {
            assert_eq!((from_epoch, to_epoch), (0, 1));
            assert_eq!(
                lost_depth, 0,
                "identical structure: the path replays losslessly onto the mapped epoch"
            );
        }
        other => panic!("expected migration, got {other:?}"),
    }
    assert_eq!(resp.depth, 1);
    let (checked, invalid) = svc.validate_live_paths();
    assert_eq!((checked, invalid), (1, 0));
    // save_current round-trips the mapped snapshot back out.
    let out = tmp("migrate_out.dlnstore");
    svc.save_current(&out).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&out).unwrap(),
        "publishing a mapped epoch and re-saving it is byte-exact"
    );
}
