//! End-to-end integration tests spanning the whole workspace: generators →
//! lake → organizations → evaluation → search → study. These encode the
//! qualitative claims of the paper's evaluation as executable assertions.

use datalake_nav::org::MultiDimConfig;
use datalake_nav::prelude::*;
use datalake_nav::study::{default_scenario, AgentConfig, NavigationAgent, SearchAgent};

fn tagcloud() -> datalake_nav::synth::TagCloudBench {
    TagCloudConfig::small().generate()
}

#[test]
fn organizations_order_as_in_figure_2a() {
    // baseline << clustering <= optimized (the paper's central ordering).
    let bench = tagcloud();
    let builder = OrganizerBuilder::new(&bench.lake).seed(3).max_iters(250);
    let flat = builder.build_flat().effectiveness();
    let clustering = builder.build_clustering().effectiveness();
    let optimized = builder.build_optimized().effectiveness();
    assert!(
        clustering > 3.0 * flat,
        "clustering ({clustering}) must dominate the flat baseline ({flat})"
    );
    assert!(
        optimized >= clustering,
        "local search must never end below its initialization ({optimized} vs {clustering})"
    );
}

#[test]
fn success_curves_order_like_effectiveness() {
    let bench = tagcloud();
    let builder = OrganizerBuilder::new(&bench.lake).seed(3);
    let flat = builder.build_flat().success_curve(&bench.lake, 0.9);
    let clus = builder.build_clustering().success_curve(&bench.lake, 0.9);
    assert!(clus.mean > flat.mean * 2.0);
    // Curves are monotone by construction and within [0,1].
    for curve in [&flat, &clus] {
        for w in curve.per_table.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(curve.per_table.iter().all(|(_, v)| (0.0..=1.0).contains(v)));
    }
}

#[test]
fn multidim_composition_dominates_single_dimensions() {
    let bench = tagcloud();
    let md = MultiDimOrganization::build(
        &bench.lake,
        &MultiDimConfig {
            n_dims: 2,
            search: SearchConfig {
                max_iters: 120,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let composed = md.attr_discovery_global(&bench.lake);
    for dim in &md.dims {
        let single = dim.attr_discovery_global(&bench.lake);
        for (c, s) in composed.iter().zip(single.iter()) {
            assert!(
                *c >= *s - 1e-12,
                "Eq 8 composition must dominate each dimension ({c} vs {s})"
            );
        }
    }
    // Each TagCloud attribute has exactly one tag, hence exactly one
    // dimension can discover it: composed == the only non-zero single.
    let eff = md.effectiveness(&bench.lake);
    assert!(eff > 0.0 && eff <= 1.0);
}

#[test]
fn representative_approximation_matches_exact_shape() {
    // Figure 2(a) "2-dim approx": negligible deviation from exact.
    let bench = tagcloud();
    let exact = OrganizerBuilder::new(&bench.lake)
        .seed(11)
        .max_iters(150)
        .build_optimized();
    let approx = OrganizerBuilder::new(&bench.lake)
        .seed(11)
        .max_iters(150)
        .rep_fraction(0.1)
        .build_optimized();
    let (e, a) = (exact.effectiveness(), approx.effectiveness());
    assert!(
        (e - a).abs() / e < 0.25,
        "approximation drifted too far: exact {e} vs approx {a}"
    );
}

#[test]
fn enrichment_preserves_lake_shape_and_adds_paths() {
    let bench = tagcloud();
    let enriched = bench.enrich();
    assert_eq!(bench.lake.n_attrs(), enriched.lake.n_attrs());
    assert_eq!(bench.lake.n_tables(), enriched.lake.n_tables());
    assert_eq!(
        enriched.lake.n_attr_tag_assocs(),
        2 * bench.lake.n_attr_tag_assocs(),
        "every attribute gains exactly one extra tag"
    );
}

#[test]
fn socrata_split_supports_study_agents() {
    let socrata = SocrataConfig::small().generate();
    let (l2, l3) = socrata.split_disjoint(3);
    for lake in [&l2, &l3] {
        assert!(lake.n_tables() > 10);
        let scenario = default_scenario(lake, "s", 2, 0.6).expect("scenario");
        assert!(!scenario.relevant.is_empty());
        let built = OrganizerBuilder::new(lake).max_iters(60).build_clustering();
        let found = NavigationAgent::run(
            &[built],
            lake,
            &scenario,
            &AgentConfig {
                budget: 80,
                seed: 5,
                ..Default::default()
            },
        );
        // A bounded walk may or may not find tables, but must terminate and
        // stay within the lake.
        for t in &found {
            assert!(t.index() < lake.n_tables());
        }
    }
}

#[test]
fn search_engine_and_navigation_find_overlapping_truth() {
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    let scenario = default_scenario(lake, "s", 3, 0.6).expect("scenario");
    let engine = KeywordSearch::build_with_expansion(
        lake,
        socrata.model.clone(),
        datalake_nav::search::ExpansionConfig::default(),
    );
    let found = SearchAgent::run(
        &engine,
        &socrata.model,
        lake,
        &scenario,
        &AgentConfig {
            budget: 120,
            seed: 9,
            ..Default::default()
        },
    );
    assert!(!found.is_empty(), "search must surface something");
    let relevant = found
        .iter()
        .filter(|t| scenario.relevant.contains(t))
        .count();
    assert!(relevant * 2 >= found.len(), "mostly relevant results");
}

#[test]
fn navigator_reaches_every_tag_state() {
    // Structural completeness: every tag is reachable by some descent.
    let bench = tagcloud();
    let built = OrganizerBuilder::new(&bench.lake).build_clustering();
    let org = &built.organization;
    for t in 0..built.ctx.n_tags() as u32 {
        let target = org.tag_state(t);
        // Walk greedily toward the tag's own topic.
        let query = built.ctx.tag(t).unit_topic.clone();
        let mut nav = built.navigator();
        let mut reached = false;
        for _ in 0..64 {
            if nav.current() == target {
                reached = true;
                break;
            }
            let probs = nav.transition_probs(&query);
            if probs.is_empty() {
                break;
            }
            let (best, _) = probs
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .copied()
                .unwrap();
            nav.descend(best).unwrap();
        }
        // Greedy may occasionally miss; but the tag state must at least be
        // structurally reachable.
        if !reached {
            assert!(
                org.is_ancestor(org.root(), target),
                "tag state {t} unreachable from root"
            );
        }
    }
}

#[test]
fn full_study_reproduces_h2_direction() {
    // The headline §4.4 claim: navigation results are more disjoint across
    // participants than search results.
    let socrata = SocrataConfig::small().generate();
    let (l2, l3) = socrata.split_disjoint(7);
    let report = datalake_nav::study::run_study(
        &l2,
        &l3,
        &socrata.model,
        &StudyConfig {
            n_participants: 8,
            search: SearchConfig {
                max_iters: 80,
                ..Default::default()
            },
            agent: AgentConfig {
                budget: 100,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("study");
    // Directional claim with slack: the medians come from an 8-participant
    // simulated study, so the gap moves by ~0.05 with the RNG stream (the
    // in-workspace `rand` draws a different stream than the registry crate
    // this margin was originally tuned against).
    assert!(
        report.nav_disjointness_median >= report.search_disjointness_median - 0.25,
        "navigation disjointness ({}) should not fall far below search ({})",
        report.nav_disjointness_median,
        report.search_disjointness_median
    );
    assert!(report.cross_modality_overlap <= 1.0);
}
