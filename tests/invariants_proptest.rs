//! Property-based tests over the core invariants (seeded random cases
//! generated with the in-workspace `rand`; the registry-hosted `proptest`
//! crate is unavailable in this build environment, so the harness below
//! drives each property over many deterministic random cases itself):
//!
//! * organizations stay structurally valid under arbitrary op sequences;
//! * op undo restores the organization exactly, and evaluator rollback
//!   restores every observable float bit-for-bit;
//! * the incremental parallel evaluator always agrees with a fresh serial
//!   full evaluation to 1e-9, at 1, 4, and 8 threads;
//! * bitsets behave like `BTreeSet<u32>`;
//! * Zipf sampling stays in range; Mann–Whitney U invariants hold.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

use datalake_nav::org::search::{
    optimize, optimize_reference, resume, SearchConfig, ShardPolicy, StopReason,
};
use datalake_nav::org::{
    build_sharded, clustering_org, ops, random_org, Checkpoint, CheckpointConfig, Evaluator,
    NavConfig, OrgContext, Organization, OrganizerBuilder, Representatives,
};
use datalake_nav::prelude::*;
use datalake_nav::study::mann_whitney_u;
use datalake_nav::synth::Zipf;

/// A small deterministic context shared by the org properties (generation
/// is expensive; the *randomness* under test is the op sequence).
fn small_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 12,
        n_attrs_target: 60,
        values_min: 4,
        values_max: 12,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

/// Structural fingerprint row: (alive, children, parents, tag count, topic count).
type FingerprintRow = (bool, Vec<u32>, Vec<u32>, usize, u64);

fn org_fingerprint(org: &Organization) -> Vec<FingerprintRow> {
    (0..org.n_slots() as u32)
        .map(|i| {
            let s = org.state(datalake_nav::org::StateId(i));
            let mut ch: Vec<u32> = s.children.iter().map(|c| c.0).collect();
            let mut pa: Vec<u32> = s.parents.iter().map(|p| p.0).collect();
            ch.sort_unstable();
            pa.sort_unstable();
            (s.alive, ch, pa, s.tags.len(), s.topic.count())
        })
        .collect()
}

/// Every observable evaluator float, as exact bits.
fn eval_bits(ev: &Evaluator, ctx: &OrgContext) -> Vec<u64> {
    let mut bits = vec![ev.effectiveness().to_bits()];
    bits.extend((0..ctx.n_attrs() as u32).map(|a| ev.attr_discovery(a).to_bits()));
    bits.extend((0..ctx.n_tables() as u32).map(|t| ev.table_discovery(t).to_bits()));
    for q in 0..ev.n_queries() {
        bits.extend(ev.reach_row(q).iter().map(|v| v.to_bits()));
    }
    bits.extend(ev.reachability().iter().map(|v| v.to_bits()));
    bits
}

/// One random `(kind, target_raw, keep)` op-sequence case.
fn random_steps(rng: &mut StdRng) -> Vec<(u8, u16, bool)> {
    let len = rng.random_range(1..12usize);
    (0..len)
        .map(|_| {
            (
                rng.random_range(0..2u32) as u8,
                rng.random_range(0..1000u32) as u16,
                rng.random::<bool>(),
            )
        })
        .collect()
}

/// Drive one op sequence; after every applied delta, check the incremental
/// parallel evaluator against a fresh serial full evaluation, and after
/// every rollback check bit-for-bit restoration of graph and evaluator.
fn check_op_sequence(ctx: &OrgContext, steps: &[(u8, u16, bool)]) -> Vec<u64> {
    let mut org = clustering_org(ctx);
    let reps = Representatives::exact(ctx);
    let nav = NavConfig::default();
    let mut ev = Evaluator::new(ctx, &org, nav, &reps);
    for &(kind, target_raw, keep) in steps {
        let targets: Vec<_> = org.alive_ids().filter(|&s| s != org.root()).collect();
        let target = targets[target_raw as usize % targets.len()];
        let reach = ev.reachability();
        let before_org = org_fingerprint(&org);
        let before_ev = eval_bits(&ev, ctx);
        let outcome = if kind == 0 {
            ops::try_add_parent(&mut org, ctx, target, &reach)
        } else {
            ops::try_delete_parent(&mut org, ctx, target, &reach)
        };
        let Some(outcome) = outcome else { continue };
        // Validity after every applied op.
        org.validate(ctx).expect("valid after op");
        let (undo_ev, _) = ev.apply_delta(ctx, &org, &outcome.dirty_parents);
        // Incremental evaluation agrees with a fresh (serially summed)
        // full evaluation.
        let fresh = Evaluator::new(ctx, &org, nav, &reps);
        assert!(
            (ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9,
            "incremental {} vs fresh {}",
            ev.effectiveness(),
            fresh.effectiveness()
        );
        for a in 0..ctx.n_attrs() as u32 {
            assert!(
                (ev.attr_discovery(a) - fresh.attr_discovery(a)).abs() < 1e-9,
                "attr {a} drifted"
            );
        }
        if keep {
            continue;
        }
        // Rollback restores the graph exactly and the evaluator bit-for-bit.
        ev.rollback(undo_ev);
        ops::undo(&mut org, ctx, outcome);
        assert_eq!(org_fingerprint(&org), before_org, "op undo must be exact");
        assert_eq!(
            eval_bits(&ev, ctx),
            before_ev,
            "evaluator rollback must restore every bit"
        );
    }
    eval_bits(&ev, ctx)
}

#[test]
fn ops_preserve_validity_and_evaluator_consistency() {
    let ctx = small_ctx();
    let mut rng = StdRng::seed_from_u64(0xDA7A_1AEE);
    for _case in 0..16 {
        let steps = random_steps(&mut rng);
        check_op_sequence(&ctx, &steps);
    }
}

#[test]
fn op_sequences_are_thread_count_invariant() {
    // The evaluator fans out over queries; the final state must be
    // bit-identical whether it ran on 1, 4, or 8 threads.
    let ctx = small_ctx();
    let mut rng = StdRng::seed_from_u64(0x7EAD_C0DE);
    for _case in 0..4 {
        let steps = random_steps(&mut rng);
        rayon::set_num_threads(1);
        let serial = check_op_sequence(&ctx, &steps);
        for threads in [4usize, 8] {
            rayon::set_num_threads(threads);
            let parallel = check_op_sequence(&ctx, &steps);
            assert_eq!(serial, parallel, "results changed with {threads} threads");
        }
        rayon::set_num_threads(0); // back to the environment default
    }
}

#[test]
fn speculative_fork_and_rollback_are_bit_exact() {
    // Batching-PR property (b): a losing speculation — proposed, fully
    // evaluated, and rolled back on a forked replica — leaves the replica
    // bit-identical to the master; and the master's graph-only cost census
    // (`delta_stats_only`) agrees exactly with the replica's full
    // evaluation counters while touching no evaluator observable.
    let ctx = small_ctx();
    let mut rng = StdRng::seed_from_u64(0x5BEC_F04C);
    for _case in 0..6 {
        let mut org = clustering_org(&ctx);
        let reps = Representatives::exact(&ctx);
        let mut ev = Evaluator::new(&ctx, &org, NavConfig::default(), &reps);
        let mut rep_org = org.clone();
        let mut rep_ev = ev.fork();
        assert_eq!(
            eval_bits(&rep_ev, &ctx),
            eval_bits(&ev, &ctx),
            "a fork must observe exactly what the original observes"
        );
        for _step in 0..6 {
            let targets: Vec<_> = org.alive_ids().filter(|&s| s != org.root()).collect();
            let target = targets[rng.random_range(0..targets.len() as u32) as usize];
            let first_add = rng.random::<bool>();
            let reach = ev.reachability();
            let before_bits = eval_bits(&rep_ev, &ctx);
            let before_org = org_fingerprint(&rep_org);
            let Some(outcome) = ops::propose(&mut rep_org, &ctx, target, &reach, first_add) else {
                continue;
            };
            let (undo_ev, stats) = rep_ev.apply_delta(&ctx, &rep_org, &outcome.dirty_parents);
            rep_ev.rollback(undo_ev);
            // The graph-only census on the master (op applied, measured,
            // lifted) must match the replica's full-evaluation counters.
            let census_outcome = ops::propose(&mut org, &ctx, target, &reach, first_add)
                .expect("the drafted op applies identically on the master");
            let census = ev.delta_stats_only(&org, &census_outcome.dirty_parents);
            assert_eq!(census.states_visited, stats.states_visited);
            assert_eq!(census.queries_evaluated, stats.queries_evaluated);
            assert_eq!(census.attrs_covered, stats.attrs_covered);
            ops::undo(&mut org, &ctx, census_outcome);
            ops::undo(&mut rep_org, &ctx, outcome);
            assert_eq!(
                eval_bits(&rep_ev, &ctx),
                before_bits,
                "losing speculation must leave the replica bit-identical"
            );
            assert_eq!(org_fingerprint(&rep_org), before_org);
            assert_eq!(
                eval_bits(&ev, &ctx),
                eval_bits(&rep_ev, &ctx),
                "the census must leave the master untouched"
            );
        }
    }
}

#[test]
fn batch_of_one_is_the_serial_walk_at_any_thread_count() {
    // Batching-PR property (a): optimize with batch_size = 1 reproduces
    // the serial reference walk bit-for-bit — trajectory, stats, and final
    // organization — regardless of the worker count.
    //
    // The failpoint registry is process-global; hold the (disarmed) scope
    // guard so a concurrently running failpoint test in this binary cannot
    // contaminate these baseline runs.
    let _fp = dln_fault::scoped("").expect("disarm failpoints");
    let ctx = small_ctx();
    for seed in [1u64, 0xBEE5, 424242] {
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let cfg = SearchConfig {
                max_iters: 120,
                plateau_iters: 60,
                batch_size: 1,
                seed,
                ..Default::default()
            };
            let mut a_org = random_org(&ctx, seed ^ 0x0A11);
            let a = optimize(&ctx, &mut a_org, &cfg);
            let mut b_org = random_org(&ctx, seed ^ 0x0A11);
            let b = optimize_reference(&ctx, &mut b_org, &cfg);
            rayon::set_num_threads(0);
            assert_eq!(
                a.final_effectiveness.to_bits(),
                b.final_effectiveness.to_bits(),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(a.iterations, b.iterations, "seed {seed}");
            assert_eq!(a.accepted, b.accepted, "seed {seed}");
            assert_eq!(a.iter_stats, b.iter_stats, "seed {seed}");
            assert_eq!(
                org_fingerprint(&a_org),
                org_fingerprint(&b_org),
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn killed_and_resumed_search_is_bit_identical() {
    // Robustness-PR property: kill the search at a random round boundary
    // (via the `search.kill` failpoint), resume from the newest intact
    // checkpoint, repeat until a run finishes — the surviving chain must be
    // bit-identical to the uninterrupted run: same stats, same trajectory,
    // same final organization. Holds at any batch size and thread count
    // because checkpoints are only cut at round boundaries and resume
    // replays the committed op log.
    let ctx = small_ctx();
    for (case, (seed, batch, threads)) in [(1u64, 1usize, 1usize), (7, 2, 2), (42, 4, 2)]
        .into_iter()
        .enumerate()
    {
        rayon::set_num_threads(threads);
        let base = SearchConfig {
            max_iters: 120,
            plateau_iters: 60,
            batch_size: batch,
            seed,
            deadline: None,
            checkpoint: None,
            ..Default::default()
        };
        let mut full_org = random_org(&ctx, seed ^ 0x0A11);
        let full = {
            let _fp = dln_fault::scoped("").expect("disarm failpoints");
            optimize(&ctx, &mut full_org, &base)
        };

        let dir = std::env::temp_dir().join(format!("dln_prop_kill_{case}_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("search.ckpt");
        let cfg = SearchConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 1,
            }),
            ..base.clone()
        };
        let mut kills = 0usize;
        let mut attempt = 0u64;
        let (stats, org) = loop {
            attempt += 1;
            // A fresh kill seed each attempt moves the kill point; after a
            // bounded number of kills, finish fault-free so the chain
            // always terminates.
            let spec = if attempt <= 10 {
                format!("search.kill:0.4:{}", seed ^ (attempt * 0x9E37))
            } else {
                String::new()
            };
            let _fp = dln_fault::scoped(&spec).expect("arm failpoints");
            let mut org = random_org(&ctx, seed ^ 0x0A11);
            let stats = match Checkpoint::load_with_fallback(&path) {
                Ok(ck) => resume(&ctx, &mut org, &cfg, &ck)
                    .expect("resume from an intact checkpoint must succeed"),
                // Killed before the first checkpoint was cut: start over,
                // as a restarted process would.
                Err(_) => optimize(&ctx, &mut org, &cfg),
            };
            if stats.stop == StopReason::Killed {
                kills += 1;
                continue;
            }
            break (stats, org);
        };
        rayon::set_num_threads(0);
        assert!(kills >= 1, "case {case}: the failpoint never killed a run");
        assert_eq!(
            stats.final_effectiveness.to_bits(),
            full.final_effectiveness.to_bits(),
            "case {case} ({kills} kills)"
        );
        assert_eq!(stats.iterations, full.iterations, "case {case}");
        assert_eq!(stats.accepted, full.accepted, "case {case}");
        assert_eq!(
            stats.speculative_evals, full.speculative_evals,
            "case {case}"
        );
        assert_eq!(stats.rounds, full.rounds, "case {case}");
        assert_eq!(stats.stop, full.stop, "case {case}");
        assert_eq!(stats.iter_stats, full.iter_stats, "case {case}");
        assert_eq!(
            org_fingerprint(&org),
            org_fingerprint(&full_org),
            "case {case} ({kills} kills)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_one_shard_is_bit_identical_across_seeds() {
    // Sharding-PR property (a): `shards = 1` routes through the ordinary
    // clustering + optimize path bit-for-bit — same arena, same tags, same
    // edges, same unit topics — whatever the lake and search seeds.
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    for _case in 0..4 {
        let bench = TagCloudConfig {
            n_tags: 12,
            n_attrs_target: 60,
            store_values: false,
            seed: rng.random::<u64>(),
            ..TagCloudConfig::small()
        }
        .generate();
        let cfg = SearchConfig {
            max_iters: 60,
            shards: ShardPolicy::Fixed(1),
            seed: rng.random::<u64>(),
            deadline: None,
            checkpoint: None,
            ..Default::default()
        };
        let plain = OrganizerBuilder::new(&bench.lake)
            .search_config(cfg.clone())
            .build_optimized();
        let sharded = build_sharded(&bench.lake, &cfg);
        assert_eq!(sharded.n_shards(), 1);
        assert_eq!(
            sharded.built.organization.fingerprint(),
            plain.organization.fingerprint(),
            "shards = 1 must reproduce build_optimized bit-for-bit"
        );
    }
}

#[test]
fn stitched_org_incremental_evaluator_matches_fresh_at_any_thread_count() {
    // Sharding-PR property (b): the incremental parallel evaluator driven
    // over a *stitched* multi-root organization (router + routing tier +
    // copied shard structure) agrees with a fresh full evaluation to 1e-9
    // after every applied op, at 1 and 4 workers — and the final evaluator
    // state is bit-identical across those worker counts.
    let mut rng = StdRng::seed_from_u64(0x5717C4);
    for _case in 0..3 {
        let bench = TagCloudConfig {
            n_tags: 12,
            n_attrs_target: 60,
            store_values: false,
            seed: rng.random::<u64>(),
            ..TagCloudConfig::small()
        }
        .generate();
        let cfg = SearchConfig {
            max_iters: 40,
            shards: ShardPolicy::Fixed(rng.random_range(2..5u32) as usize),
            seed: rng.random::<u64>(),
            deadline: None,
            checkpoint: None,
            ..Default::default()
        };
        let sharded = build_sharded(&bench.lake, &cfg);
        assert!(sharded.n_shards() > 1, "case must exercise a real stitch");
        let ctx = &sharded.built.ctx;
        let reps = Representatives::exact(ctx);
        let nav = NavConfig::default();
        let steps = random_steps(&mut rng);
        let mut final_bits: Vec<Vec<u64>> = Vec::new();
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let mut org = sharded.built.organization.clone();
            let mut ev = Evaluator::new(ctx, &org, nav, &reps);
            for &(kind, target_raw, _keep) in &steps {
                let targets: Vec<_> = org.alive_ids().filter(|&s| s != org.root()).collect();
                let target = targets[target_raw as usize % targets.len()];
                let reach = ev.reachability();
                let outcome = if kind == 0 {
                    ops::try_add_parent(&mut org, ctx, target, &reach)
                } else {
                    ops::try_delete_parent(&mut org, ctx, target, &reach)
                };
                let Some(outcome) = outcome else { continue };
                org.validate(ctx)
                    .expect("stitched org stays valid under ops");
                ev.apply_delta(ctx, &org, &outcome.dirty_parents);
                let fresh = Evaluator::new(ctx, &org, nav, &reps);
                assert!(
                    (ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9,
                    "incremental {} vs fresh {} at {threads} threads",
                    ev.effectiveness(),
                    fresh.effectiveness()
                );
            }
            final_bits.push(eval_bits(&ev, ctx));
        }
        rayon::set_num_threads(0);
        assert_eq!(
            final_bits[0], final_bits[1],
            "stitched-org evaluation changed with the worker count"
        );
    }
}

#[test]
fn bitset_behaves_like_btreeset() {
    let mut rng = StdRng::seed_from_u64(0xB17_5E7);
    for _case in 0..64 {
        let n = rng.random_range(0..64usize);
        let values: Vec<u32> = (0..n).map(|_| rng.random_range(0..200u32)).collect();
        let mut bs = datalake_nav::org::BitSet::new(200);
        let mut reference = BTreeSet::new();
        for v in &values {
            assert_eq!(bs.insert(*v), reference.insert(*v));
        }
        assert_eq!(bs.len(), reference.len());
        let collected: Vec<u32> = bs.iter().collect();
        let expected: Vec<u32> = reference.iter().copied().collect();
        assert_eq!(collected, expected);
        for v in 0..200u32 {
            assert_eq!(bs.contains(v), reference.contains(&v));
        }
        // Removal round-trip.
        for v in &values {
            assert_eq!(bs.remove(*v), reference.remove(v));
        }
        assert!(bs.is_empty());
    }
}

#[test]
fn bitset_union_is_set_union() {
    let mut rng = StdRng::seed_from_u64(0x0111_0111);
    for _case in 0..64 {
        let a: Vec<u32> = (0..rng.random_range(0..40usize))
            .map(|_| rng.random_range(0..128u32))
            .collect();
        let b: Vec<u32> = (0..rng.random_range(0..40usize))
            .map(|_| rng.random_range(0..128u32))
            .collect();
        let mut x = datalake_nav::org::BitSet::from_iter_with_capacity(128, a.iter().copied());
        let y = datalake_nav::org::BitSet::from_iter_with_capacity(128, b.iter().copied());
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        x.union_with(&y);
        let got: BTreeSet<u32> = x.iter().collect();
        let want: BTreeSet<u32> = sa.union(&sb).copied().collect();
        assert_eq!(got, want);
        assert!(x.is_superset_of(&y));
    }
}

#[test]
fn zipf_samples_stay_in_support() {
    let mut rng = StdRng::seed_from_u64(0x21BF);
    for _case in 0..64 {
        let n = rng.random_range(1..200usize);
        let s = rng.random::<f64>() * 3.0;
        let z = Zipf::new(n, s);
        let mut sample_rng = StdRng::seed_from_u64(rng.random::<u64>());
        for _ in 0..50 {
            let v = z.sample(&mut sample_rng);
            assert!((1..=n).contains(&v));
        }
        assert!(z.mean() >= 1.0 && z.mean() <= n as f64);
    }
}

#[test]
fn mann_whitney_u_complementarity() {
    let mut rng = StdRng::seed_from_u64(0x3A33);
    for _case in 0..64 {
        let a: Vec<f64> = (0..rng.random_range(1..20usize))
            .map(|_| rng.random::<f64>() * 200.0 - 100.0)
            .collect();
        let b: Vec<f64> = (0..rng.random_range(1..20usize))
            .map(|_| rng.random::<f64>() * 200.0 - 100.0)
            .collect();
        if let Some(mw) = mann_whitney_u(&a, &b) {
            assert!((mw.u1 + mw.u2 - (a.len() * b.len()) as f64).abs() < 1e-6);
            assert!((0.0..=1.0).contains(&mw.p_value));
            // Symmetry: swapping samples swaps U statistics.
            let swapped = mann_whitney_u(&b, &a).unwrap();
            assert!((mw.u1 - swapped.u2).abs() < 1e-6);
            assert!((mw.p_value - swapped.p_value).abs() < 1e-9);
        }
    }
}

#[test]
fn topic_accumulator_merge_unmerge_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xACC);
    let random_vecs = |rng: &mut StdRng| -> Vec<Vec<f32>> {
        let n = rng.random_range(0..8usize);
        (0..n)
            .map(|_| (0..4).map(|_| rng.random::<f32>() * 10.0 - 5.0).collect())
            .collect()
    };
    for _case in 0..64 {
        let xs = random_vecs(&mut rng);
        let ys = random_vecs(&mut rng);
        let mut a = TopicAccumulator::new(4);
        for x in &xs {
            a.add(x);
        }
        let before_mean = a.mean();
        let before_count = a.count();
        let mut b = TopicAccumulator::new(4);
        for y in &ys {
            b.add(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), xs.len() as u64 + ys.len() as u64);
        a.unmerge(&b);
        assert_eq!(a.count(), before_count);
        for (m1, m2) in a.mean().iter().zip(&before_mean) {
            assert!((m1 - m2).abs() < 1e-3);
        }
    }
}

#[test]
fn cosine_bounds_and_symmetry() {
    let mut rng = StdRng::seed_from_u64(0xC05);
    for _case in 0..64 {
        let a: Vec<f32> = (0..8).map(|_| rng.random::<f32>() * 20.0 - 10.0).collect();
        let b: Vec<f32> = (0..8).map(|_| rng.random::<f32>() * 20.0 - 10.0).collect();
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
        assert!((c - cosine(&b, &a)).abs() < 1e-6);
    }
}
