//! Property-based tests over the core invariants:
//!
//! * organizations stay structurally valid under arbitrary op sequences;
//! * op undo restores the organization exactly;
//! * the incremental evaluator always agrees with a fresh full evaluation;
//! * bitsets behave like `BTreeSet<u32>`;
//! * Zipf sampling stays in range; Mann–Whitney U invariants hold.

use proptest::prelude::*;
use std::collections::BTreeSet;

use datalake_nav::org::{
    clustering_org, ops, Evaluator, NavConfig, OrgContext, Organization, Representatives,
};
use datalake_nav::prelude::*;
use datalake_nav::study::mann_whitney_u;
use datalake_nav::synth::Zipf;

/// A small deterministic context shared by the org properties (generation
/// is expensive; the *randomness* under test is the op sequence).
fn small_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 12,
        n_attrs_target: 60,
        values_min: 4,
        values_max: 12,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

/// Structural fingerprint row: (alive, children, parents, tag count, topic count).
type FingerprintRow = (bool, Vec<u32>, Vec<u32>, usize, u64);

fn org_fingerprint(org: &Organization) -> Vec<FingerprintRow> {
    (0..org.n_slots() as u32)
        .map(|i| {
            let s = org.state(datalake_nav::org::StateId(i));
            let mut ch: Vec<u32> = s.children.iter().map(|c| c.0).collect();
            let mut pa: Vec<u32> = s.parents.iter().map(|p| p.0).collect();
            ch.sort_unstable();
            pa.sort_unstable();
            (s.alive, ch, pa, s.tags.len(), s.topic.count())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ops_preserve_validity_and_evaluator_consistency(
        steps in proptest::collection::vec((0u8..2, 0u16..1000, any::<bool>()), 1..12)
    ) {
        let ctx = small_ctx();
        let mut org = clustering_org(&ctx);
        let reps = Representatives::exact(&ctx);
        let nav = NavConfig::default();
        let mut ev = Evaluator::new(&ctx, &org, nav, &reps);
        for (kind, target_raw, keep) in steps {
            let targets: Vec<_> = org.alive_ids().filter(|&s| s != org.root()).collect();
            let target = targets[target_raw as usize % targets.len()];
            let reach = ev.reachability();
            let before = org_fingerprint(&org);
            let outcome = if kind == 0 {
                ops::try_add_parent(&mut org, &ctx, target, &reach)
            } else {
                ops::try_delete_parent(&mut org, &ctx, target, &reach)
            };
            let Some(outcome) = outcome else { continue };
            // Validity after every applied op.
            org.validate(&ctx).expect("valid after op");
            let (undo_ev, _) = ev.apply_delta(&ctx, &org, &outcome.dirty_parents);
            // Incremental evaluation agrees with a fresh evaluator.
            let fresh = Evaluator::new(&ctx, &org, nav, &reps);
            prop_assert!((ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9);
            if keep {
                continue;
            }
            // Rollback restores both the graph and the evaluator.
            ev.rollback(undo_ev);
            ops::undo(&mut org, &ctx, outcome);
            prop_assert_eq!(org_fingerprint(&org), before);
            let fresh2 = Evaluator::new(&ctx, &org, nav, &reps);
            prop_assert!((ev.effectiveness() - fresh2.effectiveness()).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitset_behaves_like_btreeset(values in proptest::collection::vec(0u32..200, 0..64)) {
        let mut bs = datalake_nav::org::BitSet::new(200);
        let mut reference = BTreeSet::new();
        for v in &values {
            prop_assert_eq!(bs.insert(*v), reference.insert(*v));
        }
        prop_assert_eq!(bs.len(), reference.len());
        let collected: Vec<u32> = bs.iter().collect();
        let expected: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(collected, expected);
        for v in 0..200u32 {
            prop_assert_eq!(bs.contains(v), reference.contains(&v));
        }
        // Removal round-trip.
        for v in &values {
            prop_assert_eq!(bs.remove(*v), reference.remove(v));
        }
        prop_assert!(bs.is_empty());
    }

    #[test]
    fn bitset_union_is_set_union(
        a in proptest::collection::vec(0u32..128, 0..40),
        b in proptest::collection::vec(0u32..128, 0..40),
    ) {
        let mut x = datalake_nav::org::BitSet::from_iter_with_capacity(128, a.iter().copied());
        let y = datalake_nav::org::BitSet::from_iter_with_capacity(128, b.iter().copied());
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        x.union_with(&y);
        let got: BTreeSet<u32> = x.iter().collect();
        let want: BTreeSet<u32> = sa.union(&sb).copied().collect();
        prop_assert_eq!(got, want);
        prop_assert!(x.is_superset_of(&y));
    }

    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..200, s in 0.0f64..3.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&v));
        }
        prop_assert!(z.mean() >= 1.0 && z.mean() <= n as f64);
    }

    #[test]
    fn mann_whitney_u_complementarity(
        a in proptest::collection::vec(-100.0f64..100.0, 1..20),
        b in proptest::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        if let Some(mw) = mann_whitney_u(&a, &b) {
            prop_assert!((mw.u1 + mw.u2 - (a.len() * b.len()) as f64).abs() < 1e-6);
            prop_assert!((0.0..=1.0).contains(&mw.p_value));
            // Symmetry: swapping samples swaps U statistics.
            let swapped = mann_whitney_u(&b, &a).unwrap();
            prop_assert!((mw.u1 - swapped.u2).abs() < 1e-6);
            prop_assert!((mw.p_value - swapped.p_value).abs() < 1e-9);
        }
    }

    #[test]
    fn topic_accumulator_merge_unmerge_roundtrip(
        xs in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 0..8),
        ys in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 0..8),
    ) {
        let mut a = TopicAccumulator::new(4);
        for x in &xs { a.add(x); }
        let before_mean = a.mean();
        let before_count = a.count();
        let mut b = TopicAccumulator::new(4);
        for y in &ys { b.add(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), xs.len() as u64 + ys.len() as u64);
        a.unmerge(&b);
        prop_assert_eq!(a.count(), before_count);
        for (m1, m2) in a.mean().iter().zip(&before_mean) {
            prop_assert!((m1 - m2).abs() < 1e-3);
        }
    }

    #[test]
    fn cosine_bounds_and_symmetry(
        a in proptest::collection::vec(-10.0f32..10.0, 8),
        b in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert!((c - cosine(&b, &a)).abs() < 1e-6);
    }
}
