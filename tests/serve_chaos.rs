//! Chaos suite for the navigation serving layer: a fleet of simulated
//! participants hammers one `NavService` from many threads while faults
//! (slow requests, dropped sessions, widened swap races) and hot-swap
//! republications are injected, and the suite asserts the robustness
//! contract:
//!
//! * **No silent session loss** — every session the service loses is
//!   either TTL-evicted or injected by `serve.drop_session`, and each loss
//!   surfaces to the client as a *typed* error it recovers from.
//! * **Hot-swap safety** — after any number of mid-run publications, every
//!   live session's path is valid on its own snapshot (pinned or
//!   migrated); nobody observes a torn organization.
//! * **Graceful degradation** — deadline-hit requests return well-formed,
//!   label-complete responses flagged `degraded`, never errors.
//! * **Determinism** — with a logical clock and keyed fault draws, all
//!   deterministic counters agree between a 1-thread serial run and a
//!   concurrent run of the same fleet, under the same armed failpoints.
//!
//! CI runs this binary with `DLN_FAILPOINTS` arming the serve failpoints
//! at various probabilities and with `DLN_THREADS` 1 and 4; the assertions
//! hold in every cell of that matrix.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use datalake_nav::org::{clustering_org, flat_org, NavConfig, OrgContext};
use datalake_nav::prelude::*;
use datalake_nav::serve::{ManualClock, SwapOutcome};
use datalake_nav::study::{run_concurrent, run_serial, AgentConfig, Scenario};

const N_AGENTS: u64 = 8;

fn setup() -> (DataLake, Scenario, OrgContext) {
    let s = SocrataConfig::small().generate();
    let tags: Vec<TagId> = s.lake.tag_ids().take(3).collect();
    let sc = Scenario::from_tags(&s.lake, "chaos", &tags, 0.6);
    let ctx = OrgContext::full(&s.lake);
    (s.lake, sc, ctx)
}

fn fleet(budget: usize) -> Vec<AgentConfig> {
    (0..N_AGENTS)
        .map(|i| AgentConfig {
            budget,
            seed: 1000 + 7919 * i,
            ..Default::default()
        })
        .collect()
}

/// A service whose gate can never shed this fleet (shedding depends on
/// real arrival timing, which the determinism assertions must exclude).
fn wide_config() -> ServeConfig {
    ServeConfig {
        max_sessions: 64,
        max_concurrency: N_AGENTS as usize,
        queue_depth: 2 * N_AGENTS as usize,
        deadline_ms: Some(200),
        slow_penalty_ms: 1000,
        ..ServeConfig::default()
    }
}

fn service(ctx: &OrgContext, cfg: ServeConfig) -> NavService {
    NavService::with_clock(
        ctx.clone(),
        clustering_org(ctx),
        NavConfig::default(),
        cfg,
        Arc::new(ManualClock::new(0)),
    )
}

/// Deterministic counters only: everything in a `ServedOutcome` is already
/// interleaving-independent, plus the service-side totals that are.
fn service_fingerprint(svc: &NavService) -> Vec<(&'static str, u64)> {
    let st = svc.stats();
    vec![
        ("requests", st.requests.load(Ordering::Relaxed)),
        ("degraded", st.degraded.load(Ordering::Relaxed)),
        ("opened", st.opened.load(Ordering::Relaxed)),
        ("closed", st.closed.load(Ordering::Relaxed)),
        ("dropped_fault", st.dropped_fault.load(Ordering::Relaxed)),
    ]
}

/// The core acceptance property: under armed failpoints (whatever CI put
/// in `DLN_FAILPOINTS` — plus a floor this test arms itself), a serial and
/// a concurrent run of the same 8-agent fleet agree on every deterministic
/// outcome, nobody loses a session without an injected cause, and the
/// merged logs match.
#[test]
fn serial_and_concurrent_chaos_runs_agree() {
    let (lake, sc, ctx) = setup();
    // Arm a representative chaos floor unless the environment already
    // armed serve failpoints (the CI matrix does; scoped() would override
    // the env spec, so only set the floor when none is armed).
    let _fp = if dln_fault::is_armed("serve.drop_session") || dln_fault::is_armed("serve.slow") {
        None
    } else {
        Some(
            dln_fault::scoped("serve.slow:0.15:11,serve.drop_session:0.04:12").expect("valid spec"),
        )
    };
    let agents = fleet(60);
    let retry = RetryPolicy::default();

    let svc_a = service(&ctx, wide_config());
    let serial = run_serial(&svc_a, &lake, &sc, &agents, &retry);
    let fp_a = service_fingerprint(&svc_a);

    let svc_b = service(&ctx, wide_config());
    let conc = run_concurrent(&svc_b, &lake, &sc, &agents, &retry);
    let fp_b = service_fingerprint(&svc_b);

    assert_eq!(
        serial, conc,
        "agent outcomes must not depend on interleaving"
    );
    assert_eq!(
        fp_a, fp_b,
        "service counters must not depend on interleaving"
    );

    // Loss accounting: every lost session was injected (no TTL pressure
    // here — the manual clock never advances).
    for (i, o) in conc.iter().enumerate() {
        assert_eq!(
            o.lost_sessions, o.injected_losses,
            "agent {i}: a session was lost without an injected cause"
        );
        assert!(o.steps > 0, "agent {i} made no progress");
    }
    let total_injected: u64 = conc.iter().map(|o| o.injected_losses).sum();
    assert_eq!(
        svc_b.stats().dropped_fault.load(Ordering::Relaxed),
        total_injected,
        "service-side drop count must equal client-observed injected losses"
    );
    // Session accounting closes: every open is matched by a close, a drop,
    // or survives to the end (agents close their final session).
    let st = svc_b.stats();
    assert_eq!(
        st.opened.load(Ordering::Relaxed),
        st.closed.load(Ordering::Relaxed)
            + st.dropped_fault.load(Ordering::Relaxed)
            + svc_b.live_sessions() as u64,
        "sessions are conserved"
    );
}

/// Hot-swap under concurrent traffic: publishes land mid-run while agents
/// walk; afterwards, every surviving session's path is valid on its own
/// snapshot and the service answered every request from a coherent epoch.
#[test]
fn hot_swap_under_concurrent_traffic_never_tears_a_session() {
    let (lake, sc, ctx) = setup();
    // Widen the race window on every request.
    let _fp = dln_fault::scoped("serve.swap_race:1.0:5").expect("valid spec");
    let cfg = ServeConfig {
        deadline_ms: None,
        ..wide_config()
    };
    let svc = service(&ctx, cfg);
    let agents = fleet(120);
    let retry = RetryPolicy::default();

    // A sentinel session opened at epoch 0 and walked one level down: it
    // stays pinned through every publish (nobody steps it until the dust
    // settles), guaranteeing at least one cross-epoch migration happens
    // regardless of how the scheduler interleaves the fleet.
    let sentinel = svc.open_session_keyed(77).expect("sentinel");
    let view = svc
        .step(sentinel, &StepRequest::action(StepAction::Stay))
        .expect("sentinel view");
    svc.step(
        sentinel,
        &StepRequest::action(StepAction::Descend(view.children[0].state)),
    )
    .expect("sentinel descend");

    let done = std::sync::atomic::AtomicBool::new(false);
    let outcomes = std::thread::scope(|scope| {
        let svc = &svc;
        let ctx = &ctx;
        let done = &done;
        let publisher = scope.spawn(move || {
            // Wait for the whole fleet to hold sessions, then alternate
            // structurally different organizations under them.
            while svc.stats().opened.load(Ordering::Relaxed) < 1 + N_AGENTS {
                std::thread::yield_now();
            }
            for i in 0..6u32 {
                let org = if i % 2 == 0 {
                    flat_org(ctx)
                } else {
                    clustering_org(ctx)
                };
                svc.publish(ctx.clone(), org, NavConfig::default());
                for _ in 0..50 {
                    std::thread::yield_now();
                }
            }
        });
        // Continuously audit live paths *while* swaps and steps race.
        let checker = scope.spawn(move || {
            let mut max_checked = 0;
            while !done.load(Ordering::Relaxed) {
                let (checked, invalid) = svc.validate_live_paths();
                assert_eq!(invalid, 0, "a hot-swap tore {invalid}/{checked} live paths");
                max_checked = max_checked.max(checked);
                std::thread::yield_now();
            }
            max_checked
        });
        let outcomes = run_concurrent(svc, &lake, &sc, &agents, &retry);
        publisher.join().expect("publisher panicked");
        done.store(true, Ordering::Relaxed);
        let max_checked = checker.join().expect("checker panicked");
        assert!(max_checked >= 1, "the audit must have seen live sessions");
        outcomes
    });

    // The pinned sentinel now steps across all six publishes at once:
    // typed migration, valid path, no session loss.
    let resp = svc
        .step(sentinel, &StepRequest::action(StepAction::Stay))
        .expect("sentinel survives the swaps");
    match resp.swap {
        SwapOutcome::Migrated {
            from_epoch,
            to_epoch,
            lost_depth,
        } => {
            assert_eq!((from_epoch, to_epoch), (0, 6));
            assert!(lost_depth <= 1, "replay loses at most the unmatched suffix");
        }
        other => panic!("sentinel must migrate, got {other:?}"),
    }
    assert_eq!(resp.epoch, 6);
    let (checked, invalid) = svc.validate_live_paths();
    assert_eq!((checked, invalid), (1, 0), "sentinel path valid post-swap");
    assert!(svc.stats().migrated.load(Ordering::Relaxed) >= 1);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.lost_sessions, 0, "agent {i} lost a session to a swap");
        assert_eq!(o.injected_losses, 0);
        assert!(o.steps > 0);
    }
    assert_eq!(svc.epoch(), 6);
    svc.close_session(sentinel).expect("sentinel close");
}

/// Deadline pressure: with `serve.slow` always on, every response is
/// degraded — and still complete (labels for every child, a label for the
/// state, no error). The paper's user would rather see an unranked list
/// than a spinner.
#[test]
fn deadline_hits_degrade_but_stay_well_formed() {
    let (_lake, _sc, ctx) = setup();
    let _fp = dln_fault::scoped("serve.slow:1.0:3").expect("valid spec");
    let svc = service(&ctx, wide_config());
    let sid = svc.open_session_keyed(9).expect("open");
    let q: Vec<f32> = ctx.attr(0).unit_topic.clone();
    let mut req = StepRequest::action(StepAction::Stay);
    req.query = Some(q);
    req.list_tables = true;
    for _ in 0..10 {
        let resp = svc.step(sid, &req).expect("degraded, not dead");
        assert!(resp.degraded);
        assert!(!resp.label.is_empty());
        assert!(!resp.children.is_empty());
        for c in &resp.children {
            assert!(!c.label.is_empty(), "degraded child views keep labels");
            assert!(c.prob.is_none(), "no ranking under a blown deadline");
        }
        assert_eq!(resp.swap, SwapOutcome::Current);
    }
    assert_eq!(svc.stats().degraded.load(Ordering::Relaxed), 10);
}

/// Load shedding end-to-end: a gate sized 1/0 sheds the second concurrent
/// request with a typed `Overloaded`, and the retry helper recovers once
/// capacity frees up.
#[test]
fn overload_sheds_typed_and_retry_recovers() {
    let (_lake, _sc, ctx) = setup();
    let cfg = ServeConfig {
        max_concurrency: 1,
        queue_depth: 0,
        deadline_ms: None,
        ..wide_config()
    };
    let svc = service(&ctx, cfg);
    let sid = svc.open_session_keyed(21).expect("open");
    let req = StepRequest::action(StepAction::Stay);

    // Hold the only slot, then watch a step get shed...
    let permit = svc.gate().admit().expect("slot");
    match svc.step(sid, &req) {
        Err(ServeError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // ...and a retrying client succeed after the slot frees mid-backoff.
    let retry = RetryPolicy {
        max_attempts: 4,
        ..RetryPolicy::default()
    };
    let mut slept = 0u32;
    let mut permit = Some(permit);
    let out = retry.run(
        |_ms| {
            slept += 1;
            permit.take(); // first backoff releases the held slot
        },
        || svc.step(sid, &req),
    );
    assert!(out.is_ok(), "retry must land once capacity returns");
    assert!(slept >= 1);
    assert!(svc.stats().overloaded.load(Ordering::Relaxed) >= 2);
}
