//! Fault-injection integration tests (ISSUE 3): with failpoints armed, the
//! pipeline must complete, report what it quarantined, and — for the
//! search — produce results **bit-identical** to the fault-free run.
//!
//! The failpoint schedule honors the `DLN_FAILPOINTS` environment variable
//! (the CI fault matrix runs this binary under several fixed specs) and
//! falls back to a default spec arming every site. Every faulted section
//! runs under `dln_fault::scoped`, which resets hit counters — so a given
//! spec produces the same fault schedule on every run — and serializes the
//! tests of this binary against each other (the failpoint registry is
//! process-global). Fault-free baselines run under `scoped("")` for the
//! same reason.

use std::path::{Path, PathBuf};

use datalake_nav::embed::VecFileModel;
use datalake_nav::lake::csv::{ingest_dir, CsvOptions};
use datalake_nav::org::checkpoint::Checkpoint;
use datalake_nav::org::search::{optimize, resume, SearchConfig, SearchStats, StopReason};
use datalake_nav::org::{random_org, CheckpointConfig, OrgContext, Organization};
use datalake_nav::prelude::*;

/// The failpoint spec under test: the CI matrix entry if set, else a
/// default arming every site.
fn armed_spec() -> String {
    std::env::var("DLN_FAILPOINTS")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .unwrap_or_else(|| {
            "ingest.read:0.3:7,checkpoint.torn:0.5:3,search.spec_panic:0.2:9,search.kill:0.3:5"
                .to_string()
        })
}

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_fault_{name}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A lake directory with six clean tables plus the two malformed fixtures
/// (unbalanced quote, invalid UTF-8).
fn build_lake_dir(name: &str) -> (PathBuf, usize) {
    let dir = tmp_dir(name);
    for i in 0..6 {
        let body = format!("city,rank\nlisbon{i},1\nporto{i},2\nbraga{i},3\ncoimbra{i},4\n");
        std::fs::write(dir.join(format!("table{i}.csv")), body).expect("write csv");
    }
    for fixture in ["torn.csv", "binary.csv"] {
        std::fs::copy(fixtures().join(fixture), dir.join(fixture)).expect("copy fixture");
    }
    (dir, 8)
}

#[test]
fn ingest_completes_and_accounts_for_every_file_under_faults() {
    let (dir, n_files) = build_lake_dir("ingest");
    let model = SyntheticEmbedding::new(&SyntheticEmbeddingConfig::default());
    let opts = CsvOptions::default();

    // Fault-free baseline: only the two malformed fixtures quarantine.
    let clean = {
        let _fp = dln_fault::scoped("").expect("disarm");
        ingest_dir(&dir, &model, &opts).expect("clean ingest")
    };
    assert_eq!(clean.report.tables_loaded, 6);
    assert_eq!(clean.report.malformed_csv, 1, "torn.csv");
    assert_eq!(clean.report.invalid_utf8, 1, "binary.csv");
    assert_eq!(clean.report.io_errors, 0);
    assert_eq!(clean.lake.tables().len(), 6);

    // Faulted run: must still complete, and every CSV file must be
    // accounted for — loaded, text-free, or quarantined with a reason.
    let faulted = {
        let _fp = dln_fault::scoped(&armed_spec()).expect("arm");
        ingest_dir(&dir, &model, &opts).expect("faulted ingest must complete")
    };
    let r = &faulted.report;
    assert_eq!(
        r.tables_loaded + r.tables_without_text + r.total_quarantined(),
        n_files,
        "every file accounted for: {r:?}"
    );
    assert_eq!(r.quarantined.len(), r.total_quarantined());
    // The two malformed fixtures quarantine in *some* category (an armed
    // ingest.read fault may claim them as IO errors before parsing).
    assert!(r.total_quarantined() >= 2, "{r:?}");
    assert_eq!(faulted.lake.tables().len(), r.tables_loaded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_vec_fixtures_are_quarantined_not_fatal() {
    let (model, report) =
        VecFileModel::from_path_report(&fixtures().join("truncated.vec")).expect("loads");
    assert_eq!(report.rows_loaded, 3, "{report:?}");
    assert_eq!(report.header_lines, 1);
    assert_eq!(report.dim_mismatch_rows, 1, "the truncated gamma row");
    assert_eq!(model.len(), 3);

    let (model, report) =
        VecFileModel::from_path_report(&fixtures().join("nan.vec")).expect("loads");
    assert_eq!(report.rows_loaded, 2, "{report:?}");
    assert_eq!(report.non_finite_rows, 2, "the nan and inf rows");
    assert_eq!(model.len(), 2);
}

fn small_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 12,
        n_attrs_target: 60,
        values_min: 4,
        values_max: 12,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

fn walk_cfg(batch: usize) -> SearchConfig {
    SearchConfig {
        max_iters: 120,
        plateau_iters: 60,
        batch_size: batch,
        deadline: None,
        checkpoint: None,
        ..Default::default()
    }
}

fn assert_same_run(a: &SearchStats, b: &SearchStats, a_org: &Organization, b_org: &Organization) {
    assert_eq!(
        a.final_effectiveness.to_bits(),
        b.final_effectiveness.to_bits()
    );
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.speculative_evals, b.speculative_evals);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.iter_stats, b.iter_stats);
    assert_eq!(a_org.fingerprint(), b_org.fingerprint());
}

#[test]
fn speculative_panics_degrade_rounds_without_changing_results() {
    // A panicking speculative draft evaluation (search.spec_panic) is
    // caught on its worker; the poisoned replica is discarded and the
    // round falls back to the lazy master-only schedule — which resolves
    // bit-identically. So the faulted run must match the fault-free run
    // exactly, even at several workers.
    let ctx = small_ctx();
    rayon::set_num_threads(4);
    let cfg = walk_cfg(4);
    let mut org_clean = random_org(&ctx, 0x0A11);
    let clean = {
        let _fp = dln_fault::scoped("").expect("disarm");
        optimize(&ctx, &mut org_clean, &cfg)
    };
    let mut org_faulted = random_org(&ctx, 0x0A11);
    // Only the spec-panic site matters here; kill would end the run
    // early, so strip it from the armed spec for this test.
    let spec: String = armed_spec()
        .split(',')
        .filter(|e| !e.trim_start().starts_with("search.kill"))
        .collect::<Vec<_>>()
        .join(",");
    let faulted = {
        let _fp = dln_fault::scoped(&spec).expect("arm without kill");
        optimize(&ctx, &mut org_faulted, &cfg)
    };
    rayon::set_num_threads(0);
    assert_same_run(&clean, &faulted, &org_clean, &org_faulted);
}

#[test]
fn killed_runs_resume_through_torn_checkpoints_to_the_fault_free_result() {
    // The full crash story end to end: the search is killed at round
    // boundaries (search.kill), checkpoints suffer torn writes
    // (checkpoint.torn, rejected by checksum and recovered via the .prev
    // generation), and each resume replays the op log — the surviving
    // chain must land on the fault-free result, bit for bit.
    let ctx = small_ctx();
    let dir = tmp_dir("kill_chain");
    let path = dir.join("search.ckpt");
    let walk = walk_cfg(2);
    let mut org_clean = random_org(&ctx, 0xC4A5);
    let clean = {
        let _fp = dln_fault::scoped("").expect("disarm");
        optimize(&ctx, &mut org_clean, &walk)
    };
    let cfg = SearchConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            every_rounds: 1,
        }),
        ..walk.clone()
    };
    // This test is *about* the kill site: if the CI matrix entry under test
    // arms other sites only, add a default kill schedule on top.
    let mut base_spec = armed_spec();
    if !base_spec.contains("search.kill") {
        base_spec.push_str(",search.kill:0.3:5");
    }
    let mut kills = 0usize;
    let mut attempt = 0usize;
    let (stats, org_final) = loop {
        attempt += 1;
        // Vary the kill seed per attempt so the chain makes progress; the
        // final attempts run fault-free to guarantee termination.
        let spec = if attempt <= 12 {
            base_spec
                .split(',')
                .map(|e| {
                    let e = e.trim();
                    if e.starts_with("search.kill") {
                        let mut parts = e.split(':');
                        let name = parts.next().unwrap_or("search.kill");
                        let prob = parts.next().unwrap_or("0.3");
                        let seed: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(5);
                        format!("{name}:{prob}:{}", seed.wrapping_add(attempt as u64))
                    } else {
                        e.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        } else {
            String::new()
        };
        let _fp = dln_fault::scoped(&spec).expect("arm");
        let mut org = random_org(&ctx, 0xC4A5);
        let stats = match Checkpoint::load_with_fallback(&path) {
            Ok(ck) => resume(&ctx, &mut org, &cfg, &ck)
                .expect("a checkpointed run must resume against its initial organization"),
            // Killed before the first (or any intact) checkpoint: start
            // over, exactly like a crashed process would.
            Err(_) => optimize(&ctx, &mut org, &cfg),
        };
        if stats.stop == StopReason::Killed {
            kills += 1;
            continue;
        }
        break (stats, org);
    };
    assert!(
        kills >= 1,
        "the armed spec must actually kill the search at least once"
    );
    assert_same_run(&clean, &stats, &org_clean, &org_final);
    std::fs::remove_dir_all(&dir).ok();
}
