//! Chaos suite for the network front-end (`dln-net`): real sockets, real
//! reactor, injected transport faults — and the acceptance contract of
//! the wire layer:
//!
//! * **Bit-identity** — the same seeded walk driven through `net::Client`
//!   and through `NavService` directly produces `f64::to_bits`-equal
//!   responses, under every `net.*` failpoint schedule. Transport faults
//!   (torn reads, dropped conns, partial writes, accept failures) are
//!   recovered by reconnect + resend, and the server's exactly-once
//!   response cache guarantees a retried step is a replay, never a
//!   double-apply.
//! * **Hot-swap coexistence** — a republish while wire sessions are
//!   mid-walk migrates them exactly like library sessions: typed
//!   `Migrated` outcome, zero invalid live paths.
//! * **Graceful shutdown** — in-flight dispatches drain and every wire
//!   session finalizes into the navigation log; feedback evidence
//!   survives the restart.
//! * **Shedding and hygiene** — accepts past `max_conns` get a typed
//!   `Overloaded` frame; garbage bytes sever exactly one connection and
//!   leave the server healthy; idle connections are reaped on the
//!   injected clock without touching their sessions.
//!
//! The failpoint registry is process-global, so this suite has its own
//! binary; the CI `net-chaos` matrix re-runs it with `DLN_FAILPOINTS`
//! arming each `net.*` schedule (and `--test-threads=1`, since an
//! env-armed run must not race the scoped overrides below).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use datalake_nav::net::{Client, NetConfig, NetServer};
use datalake_nav::org::{clustering_org, flat_org, NavConfig, OrgContext};
use datalake_nav::prelude::*;
use datalake_nav::serve::{ManualClock, ServeResult, SwapOutcome, WallClock};

fn build_service() -> (NavService, OrgContext) {
    let bench = TagCloudConfig::small().generate();
    let ctx = OrgContext::full(&bench.lake);
    let org = clustering_org(&ctx);
    let cfg = ServeConfig {
        // Wall-clock deadlines would make degradation (and thus the
        // response bits) timing-dependent; identity tests need them off.
        deadline_ms: None,
        ..ServeConfig::default()
    };
    (
        NavService::new(ctx.clone(), org, NavConfig::default(), cfg),
        ctx,
    )
}

fn start_server(svc: Arc<NavService>, config: NetConfig) -> NetServer {
    NetServer::start(svc, config, Arc::new(WallClock::new())).expect("server starts")
}

fn test_client(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr.to_string()).expect("client connects");
    // Chaos schedules tear connections with probability ~0.3 per attempt;
    // a deep reconnect budget makes the suite's failure odds negligible
    // without masking real bugs (a correct server converges in 1-2).
    c.max_reconnects = 20;
    c
}

/// Everything in a step response except the session id, with floats as
/// IEEE-754 bits. Session ids are the one intentionally non-identical
/// field: the two services allocate them independently (and a lost `Open`
/// response legitimately burns an id on the server).
type StepFingerprint = (
    u64,                             // epoch
    u32,                             // state
    u64,                             // depth
    String,                          // label
    Option<u32>,                     // at_tag_state
    Vec<(u32, String, Option<u64>)>, // children: (state, label, prob bits)
    Vec<(u32, u64)>,                 // tables
    bool,                            // degraded
);

fn fingerprint(r: &StepResponse) -> StepFingerprint {
    (
        r.epoch,
        r.state.0,
        r.depth as u64,
        r.label.clone(),
        r.at_tag_state,
        r.children
            .iter()
            .map(|c| (c.state.0, c.label.clone(), c.prob.map(f64::to_bits)))
            .collect(),
        r.tables.iter().map(|&(t, n)| (t.0, n as u64)).collect(),
        r.degraded,
    )
}

/// Drive one deterministic seeded walk through `step`, returning the
/// fingerprint of every response. The action schedule is a pure function
/// of the seed: descend when children exist, backtrack every 5th step,
/// attach a query every 3rd, list tables every 4th.
fn drive_walk(
    mut step: impl FnMut(&StepRequest) -> ServeResult<StepResponse>,
    query: &[f32],
    steps: usize,
    seed: u64,
) -> Vec<StepFingerprint> {
    let mut x = seed;
    let mut next = move || {
        // SplitMix64: deterministic, dependency-free.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(steps + 1);
    let first = step(&StepRequest::action(StepAction::Stay)).expect("first view");
    let mut children: Vec<_> = first.children.iter().map(|c| c.state).collect();
    out.push(fingerprint(&first));
    for i in 0..steps {
        let action = if i % 5 == 4 || children.is_empty() {
            StepAction::Backtrack
        } else {
            StepAction::Descend(children[(next() % children.len() as u64) as usize])
        };
        let req = StepRequest {
            action,
            query: (i % 3 == 0).then(|| query.to_vec()),
            deadline_ms: None,
            list_tables: i % 4 == 0,
        };
        let resp = step(&req).expect("walk step");
        children = resp.children.iter().map(|c| c.state).collect();
        out.push(fingerprint(&resp));
    }
    out
}

/// The headline acceptance property: a wire walk and a library walk over
/// identically built services produce bit-identical responses — under
/// whatever `net.*` schedule CI armed, or a local floor arming all four.
#[test]
fn wire_walk_is_bit_identical_to_library_walk_under_chaos() {
    let env_armed = [
        "net.accept_fail",
        "net.read_torn",
        "net.write_partial",
        "net.conn_drop",
    ]
    .iter()
    .any(|s| dln_fault::is_armed(s));
    let _fp = if env_armed {
        None
    } else {
        Some(
            dln_fault::scoped(
                "net.accept_fail:0.05:3,net.read_torn:0.2:5,net.write_partial:0.3:7,net.conn_drop:0.2:9",
            )
            .expect("valid spec"),
        )
    };

    let (svc_local, ctx) = build_service();
    let (svc_remote, _) = build_service();
    let query: Vec<f32> = ctx.attr(0).unit_topic.clone();

    // Library walk: the typed methods, directly.
    let sid = svc_local.open_session_keyed(7).expect("local open");
    let local = drive_walk(|req| svc_local.step(sid, req), &query, 40, 0xDA7A);
    svc_local.close_session(sid).expect("local close");

    // Wire walk: every step a frame through the reactor, with transport
    // faults injected underneath.
    let server = start_server(Arc::new(svc_remote), NetConfig::default());
    let mut client = test_client(server.local_addr());
    let wid = client.open_keyed(7).expect("wire open");
    let wire = drive_walk(|req| client.step(wid, req), &query, 40, 0xDA7A);
    client.close(wid).expect("wire close");

    assert_eq!(
        local.len(),
        wire.len(),
        "both walks answer every scheduled step"
    );
    for (i, (l, w)) in local.iter().zip(&wire).enumerate() {
        assert_eq!(l, w, "step {i}: wire response diverged from library");
    }
    server.shutdown();
}

/// Torn-connection recovery is *exactly-once*: with `net.conn_drop`
/// always-on, every step's first application kills the connection after
/// dispatch but before the response — the client's resend must observe
/// the cached response, and the walk must advance one level per step
/// (a double-apply would descend twice).
#[test]
fn conn_drop_replays_from_cache_never_double_applies() {
    let _fp = dln_fault::scoped("net.conn_drop:1.0:13").expect("valid spec");
    let (svc, _ctx) = build_service();
    let svc = Arc::new(svc);
    let server = start_server(Arc::clone(&svc), NetConfig::default());
    let mut client = test_client(server.local_addr());

    let sid = client.open().expect("open");
    let root = client
        .step(sid, &StepRequest::action(StepAction::Stay))
        .expect("root view");
    let mut expected_depth = 0u64;
    let mut children: Vec<_> = root.children.iter().map(|c| c.state).collect();
    for _ in 0..6 {
        let Some(&target) = children.first() else {
            break;
        };
        let resp = client
            .step(sid, &StepRequest::action(StepAction::Descend(target)))
            .expect("descend");
        expected_depth += 1;
        assert_eq!(
            resp.depth as u64, expected_depth,
            "a double-applied descend would overshoot the depth"
        );
        assert_eq!(resp.state, target, "the replayed response is the original");
        children = resp.children.iter().map(|c| c.state).collect();
    }
    assert!(
        expected_depth > 0,
        "the small org must have at least a level"
    );
    let stats = server.stats();
    assert!(
        stats.dedup_hits.load(Ordering::Relaxed) >= expected_depth,
        "every dropped conn's resend must be served from the cache"
    );
    client.close(sid).expect("close");
    server.shutdown();
}

/// A republish lands while wire sessions are mid-walk: the next wire step
/// migrates with a typed outcome and the audit sees zero invalid paths —
/// the hot-swap contract, unchanged by the wire.
#[test]
fn republish_migrates_wire_sessions_with_zero_torn_paths() {
    let _fp = dln_fault::scoped("net.write_partial:0.5:21").expect("valid spec");
    let (svc, ctx) = build_service();
    let svc = Arc::new(svc);
    let server = start_server(Arc::clone(&svc), NetConfig::default());
    let mut client = test_client(server.local_addr());

    let sid = client.open().expect("open");
    let root = client
        .step(sid, &StepRequest::action(StepAction::Stay))
        .expect("root");
    client
        .step(
            sid,
            &StepRequest::action(StepAction::Descend(root.children[0].state)),
        )
        .expect("descend");

    let epoch = svc.publish(ctx.clone(), flat_org(&ctx), NavConfig::default());
    assert_eq!(epoch, 1);

    let resp = client
        .step(sid, &StepRequest::action(StepAction::Stay))
        .expect("post-publish step");
    assert_eq!(resp.epoch, 1, "the wire session follows the publish");
    match resp.swap {
        SwapOutcome::Migrated {
            from_epoch,
            to_epoch,
            ..
        } => {
            assert_eq!((from_epoch, to_epoch), (0, 1));
        }
        other => panic!("wire session must migrate on republish, got {other:?}"),
    }
    let (checked, invalid) = svc.validate_live_paths();
    assert!(checked >= 1, "the wire session is live and audited");
    assert_eq!(invalid, 0, "republish must not tear a wire session");
    client.close(sid).expect("close");
    server.shutdown();
}

/// Graceful shutdown finalizes every wire session into the navigation
/// log: the walks' feedback evidence survives even though the clients
/// never sent `Close`.
#[test]
fn shutdown_finalizes_wire_sessions_into_the_log() {
    let _fp = dln_fault::scoped("net.write_partial:0.0:1").expect("valid spec");
    let (svc, _ctx) = build_service();
    let svc = Arc::new(svc);
    let server = start_server(Arc::clone(&svc), NetConfig::default());

    let mut clients = Vec::new();
    for _ in 0..3 {
        let mut c = test_client(server.local_addr());
        let sid = c.open().expect("open");
        let root = c
            .step(sid, &StepRequest::action(StepAction::Stay))
            .expect("root");
        c.step(
            sid,
            &StepRequest::action(StepAction::Descend(root.children[0].state)),
        )
        .expect("descend");
        clients.push((c, sid)); // deliberately never closed
    }
    assert_eq!(svc.live_sessions(), 3);

    server.shutdown();
    assert_eq!(
        svc.live_sessions(),
        0,
        "shutdown must close every wire session"
    );
    assert_eq!(
        svc.merged_log().n_sessions(),
        3,
        "every wire walk must be finalized into the navigation log"
    );
}

/// Accepts past `max_conns` are shed with a typed first-class `Overloaded`
/// frame — before any session or gate resource is touched — and capacity
/// freed by a disconnect is reusable.
#[test]
fn accept_shedding_is_typed_and_recovers() {
    let _fp = dln_fault::scoped("net.accept_fail:0.0:1").expect("valid spec");
    let (svc, _ctx) = build_service();
    let server = start_server(
        Arc::new(svc),
        NetConfig {
            max_conns: 1,
            ..NetConfig::default()
        },
    );
    let mut first = test_client(server.local_addr());
    first.ping().expect("the one slot serves");

    // The second connection is shed at accept. Depending on how the RST
    // races the shed frame, the client sees either the typed Overloaded
    // or a transport failure after exhausting reconnects — never success.
    let mut second = Client::connect(server.local_addr().to_string()).expect("tcp connects");
    second.max_reconnects = 2;
    match second.ping() {
        Err(ServeError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
        Err(ServeError::Nav(_)) => {}
        Ok(()) => panic!("a shed connection must not serve"),
        Err(other) => panic!("unexpected error class: {other}"),
    }
    assert!(server.stats().shed_accepts.load(Ordering::Relaxed) >= 1);

    // Freeing the slot lets a fresh client in (the reactor notices the
    // disconnect on its next readiness pass).
    drop(first);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(server.local_addr().to_string()).expect("tcp connects");
        retry.max_reconnects = 1;
        if retry.ping().is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "freed capacity never became usable"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}

/// Garbage bytes sever exactly the offending connection with a typed
/// internal error — the server stays healthy for well-behaved clients,
/// and over-announced frame lengths never allocate.
#[test]
fn adversarial_bytes_sever_one_conn_and_leave_the_server_healthy() {
    let _fp = dln_fault::scoped("net.accept_fail:0.0:1").expect("valid spec");
    use std::io::{Read, Write};
    let (svc, _ctx) = build_service();
    let server = start_server(Arc::new(svc), NetConfig::default());

    // Not-even-magic garbage.
    let mut vandal = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    vandal.write_all(&[0xAB; 64]).expect("send garbage");
    vandal
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    let n = vandal.read(&mut buf).expect("server closes, not hangs");
    assert_eq!(n, 0, "the garbage conn gets EOF, not a response");

    // Correct magic, absurd announced length: refused before allocation.
    let mut liar = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(&u32::from_le_bytes(*b"DLN1").to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    liar.write_all(&header).expect("send lying header");
    liar.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");
    let n = liar.read(&mut buf).expect("server closes, not hangs");
    assert_eq!(n, 0, "the oversized conn gets EOF");

    // The server still serves a well-behaved client.
    let mut good = test_client(server.local_addr());
    good.ping().expect("healthy after vandalism");
    let sid = good.open().expect("open");
    good.step(sid, &StepRequest::action(StepAction::Stay))
        .expect("step");
    good.close(sid).expect("close");
    server.shutdown();
}

/// Idle connections are reaped on the injected clock; their sessions stay
/// in the registry, so a reconnecting client continues its walk.
#[test]
fn idle_ttl_reaps_conns_but_preserves_sessions() {
    let _fp = dln_fault::scoped("net.accept_fail:0.0:1").expect("valid spec");
    let (svc, _ctx) = build_service();
    let svc = Arc::new(svc);
    let clock = Arc::new(ManualClock::new(0));
    let server = NetServer::start(
        Arc::clone(&svc),
        NetConfig {
            idle_ttl_ms: 100,
            ..NetConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn datalake_nav::serve::Clock>,
    )
    .expect("server starts");

    let mut client = test_client(server.local_addr());
    let sid = client.open().expect("open");
    let root = client
        .step(sid, &StepRequest::action(StepAction::Stay))
        .expect("root");

    // Tick past the TTL; the reactor sweeps on its next poll timeout.
    clock.advance(500);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().idle_reaped.load(Ordering::Relaxed) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle sweep never reaped the silent connection"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(svc.live_sessions(), 1, "the session outlives its conn");

    // The client's next request rides the built-in reconnect and resumes
    // the same session where it left off.
    let resp = client
        .step(
            sid,
            &StepRequest::action(StepAction::Descend(root.children[0].state)),
        )
        .expect("reconnect resumes the walk");
    assert_eq!(resp.depth, 1);
    client.close(sid).expect("close");
    server.shutdown();
}
