//! Tests of the *DAG* (multi-parent) probability semantics: Equation 3 sums
//! reach probability over **all** discovery sequences, which is exactly what
//! `ADD_PARENT` exploits — a state with two parents can be reached two ways.
//! These tests build diamonds explicitly and verify the evaluator computes
//! the path-sum, that levels/topo orders behave, and that the navigation
//! model stays a proper (sub-)probability measure.

use datalake_nav::org::{
    clustering_org, flat_org, ops, BitSet, Evaluator, NavConfig, OrgContext, Organization,
    Representatives,
};
use datalake_nav::prelude::*;

fn ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 8,
        n_attrs_target: 40,
        values_min: 4,
        values_max: 10,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

/// Build a diamond: root → {A, B} → shared tag state `t0`, with remaining
/// tag states under A or B to keep the graph sensible.
fn diamond(ctx: &OrgContext) -> Organization {
    let n = ctx.n_tags();
    assert!(n >= 4);
    let mut org = Organization::with_tag_states(ctx);
    let half = n / 2;
    // A holds tags 0..=half, B holds tags {0} ∪ (half+1..n): tag 0 shared.
    let a_tags = BitSet::from_iter_with_capacity(n, (0..=half as u32).collect::<Vec<_>>());
    let b_tags =
        BitSet::from_iter_with_capacity(n, std::iter::once(0u32).chain(half as u32 + 1..n as u32));
    let a = org.add_state(ctx, a_tags, None);
    let b = org.add_state(ctx, b_tags, None);
    org.add_edge(org.root(), a);
    org.add_edge(org.root(), b);
    // Tag 0 under BOTH interior states (the diamond).
    org.add_edge(a, org.tag_state(0));
    org.add_edge(b, org.tag_state(0));
    for t in 1..=half as u32 {
        org.add_edge(a, org.tag_state(t));
    }
    for t in half as u32 + 1..n as u32 {
        org.add_edge(b, org.tag_state(t));
    }
    org
}

#[test]
fn diamond_validates_and_has_multi_parent_state() {
    let ctx = ctx();
    let org = diamond(&ctx);
    org.validate(&ctx).expect("diamond is a valid organization");
    let shared = org.tag_state(0);
    assert_eq!(org.state(shared).parents.len(), 2, "two discovery paths");
}

#[test]
fn reach_probability_sums_over_paths() {
    // Equation 3: P(s|X,O) = Σ over discovery sequences. For the shared tag
    // state, reach must equal the sum of the two path products — we verify
    // by comparing against a hand-rolled two-path computation.
    let ctx = ctx();
    let org = diamond(&ctx);
    let reps = Representatives::exact(&ctx);
    let nav = NavConfig::default();
    let ev = Evaluator::new(&ctx, &org, nav, &reps);
    // Take the first attribute of tag 0 as the query and recompute by hand.
    let attr = ctx.tag(0).attrs[0];
    let unit = ctx.attr(attr).unit_topic.clone();
    let manual_trans =
        |parent: datalake_nav::org::StateId, child: datalake_nav::org::StateId| -> f64 {
            let children = &org.state(parent).children;
            let scale = nav.gamma as f64 / children.len() as f64;
            let scores: Vec<f64> = children
                .iter()
                .map(|&c| scale * datalake_nav::embed::dot(&org.state(c).unit_topic, &unit) as f64)
                .collect();
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
            let total: f64 = exps.iter().sum();
            let idx = children.iter().position(|&c| c == child).expect("child");
            exps[idx] / total
        };
    let root = org.root();
    let (a, b) = (org.state(root).children[0], org.state(root).children[1]);
    let shared = org.tag_state(0);
    let expected = manual_trans(root, a) * manual_trans(a, shared)
        + manual_trans(root, b) * manual_trans(b, shared);
    // Reconstruct the evaluator's reach for this attribute by reading the
    // discovery probability and dividing out the (precomputed) final hop.
    // Simpler: compute exact discovery and compare against expected × hop.
    let exact = datalake_nav::org::eval::discovery_probs(&ctx, &org, nav, 1);
    // hop: softmax of the attr among tag 0's population.
    let pop = &ctx.tag(0).attrs;
    let scale = nav.gamma as f64 / pop.len() as f64;
    let scores: Vec<f64> = pop
        .iter()
        .map(|&bb| scale * datalake_nav::embed::dot(&ctx.attr(bb).unit_topic, &unit) as f64)
        .collect();
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    let own = pop.iter().position(|&x| x == attr).unwrap();
    let hop = exps[own] / total;
    // Other tags of the attribute (TagCloud: exactly one tag) — so the
    // discovery probability is exactly reach(shared) × hop.
    assert_eq!(ctx.attr(attr).tags.len(), 1);
    let got = exact[attr as usize];
    let want = expected * hop;
    assert!(
        (got - want).abs() < 1e-9,
        "path-sum mismatch: evaluator {got} vs manual {want}"
    );
    drop(ev);
}

#[test]
fn shared_state_outreaches_single_parent_version() {
    // Removing one diamond edge must strictly reduce the shared tag state's
    // attributes' discovery probability (fewer discovery sequences).
    let ctx = ctx();
    let org2 = diamond(&ctx);
    let mut org1 = diamond(&ctx);
    let b = org1.state(org1.root()).children[1];
    org1.remove_edge(b, org1.tag_state(0));
    let nav = NavConfig::default();
    let d2 = datalake_nav::org::eval::discovery_probs(&ctx, &org2, nav, 1);
    let d1 = datalake_nav::org::eval::discovery_probs(&ctx, &org1, nav, 1);
    for &a in &ctx.tag(0).attrs {
        // Only strictly greater if the attr has no other tags (true in
        // TagCloud).
        assert!(
            d2[a as usize] > d1[a as usize],
            "attr {a}: two paths {} must beat one {}",
            d2[a as usize],
            d1[a as usize]
        );
    }
}

#[test]
fn incremental_evaluation_handles_diamonds() {
    // apply_delta on an organization that already contains multi-parent
    // states must agree with full recomputation.
    let ctx = ctx();
    let mut org = diamond(&ctx);
    let reps = Representatives::exact(&ctx);
    let nav = NavConfig::default();
    let mut ev = Evaluator::new(&ctx, &org, nav, &reps);
    let reach = ev.reachability();
    // Add another parent somewhere.
    let target = org.tag_state(1);
    if let Some(out) = ops::try_add_parent(&mut org, &ctx, target, &reach) {
        let (_undo, _stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
        let fresh = Evaluator::new(&ctx, &org, nav, &reps);
        assert!(
            (ev.effectiveness() - fresh.effectiveness()).abs() < 1e-9,
            "incremental {} vs fresh {}",
            ev.effectiveness(),
            fresh.effectiveness()
        );
    }
}

#[test]
fn leaf_mass_is_bounded_in_dags() {
    // In a tree the total mass over sinks is exactly 1; a DAG *duplicates*
    // mass along multiple paths, so per-state reach stays ≤ 1 but the sum
    // over sinks may exceed 1 — discovery composes with `1 − Π(1 − p)`, so
    // this is sound. Verify reach stays within [0, 1] per state.
    let ctx = ctx();
    let org = diamond(&ctx);
    let nav = NavConfig::default();
    let disc = datalake_nav::org::eval::discovery_probs(&ctx, &org, nav, 1);
    for (a, d) in disc.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(d),
            "attr {a} discovery probability {d} out of range"
        );
    }
}

#[test]
fn ops_on_flat_and_clustering_interoperate() {
    // Cross-check: starting from clustering, a few ADD_PARENTs produce
    // multi-parent states, and the org still validates and evaluates.
    let ctx = ctx();
    let mut org = clustering_org(&ctx);
    let reps = Representatives::exact(&ctx);
    let nav = NavConfig::default();
    let mut ev = Evaluator::new(&ctx, &org, nav, &reps);
    let mut produced_multi_parent = false;
    for t in 0..ctx.n_tags() as u32 {
        let reach = ev.reachability();
        let target = org.tag_state(t);
        if let Some(out) = ops::try_add_parent(&mut org, &ctx, target, &reach) {
            ev.apply_delta(&ctx, &org, &out.dirty_parents);
            if org.state(org.tag_state(t)).parents.len() > 1 {
                produced_multi_parent = true;
            }
        }
    }
    assert!(produced_multi_parent, "ADD_PARENT should create diamonds");
    org.validate(&ctx).expect("valid");
    let flat = flat_org(&ctx);
    flat.validate(&ctx).expect("valid");
}
