//! # datalake-nav
//!
//! A production-quality Rust reproduction of **"Organizing Data Lakes for
//! Navigation"** (F. Nargesian, K. Q. Pu, E. Zhu, B. Ghadiri Bashardoost,
//! R. J. Miller — SIGMOD 2020).
//!
//! The library builds *organizations* — DAGs of attribute sets with a subset
//! (inclusion) property on edges — over the text attributes of a data lake,
//! and optimizes them so that a user navigating the DAG under a Markov
//! transition model has maximal expected probability of discovering any
//! table in the lake.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`embed`] — embedding vectors, topic accumulators, the synthetic
//!   fastText substitute and a real `.vec` loader.
//! * [`lake`] — the data-lake model: tables, attributes, domains, tags.
//! * [`synth`] — the TagCloud benchmark and Socrata-like lake generators.
//! * [`cluster`] — agglomerative hierarchical clustering and k-medoids.
//! * [`org`] — **the paper's contribution**: the organization DAG, the
//!   navigation (Markov) model, the local-search construction algorithm,
//!   approximation machinery, and multi-dimensional organizations.
//! * [`search`] — a BM25 keyword-search engine with embedding-based query
//!   expansion (the user-study comparator).
//! * [`serve`] — concurrent, fault-tolerant navigation serving: immutable
//!   snapshot hot-swap, bounded sessions, deadlines with graceful
//!   degradation, admission control and load shedding.
//! * [`net`] — the network front-end: a std-only epoll/kqueue reactor,
//!   length-prefixed binary wire protocol with FNV-1a frame checksums,
//!   and a blocking client, so thousands of mostly-idle remote sessions
//!   share a handful of threads.
//! * [`study`] — the simulated user study and its statistics.
//!
//! ## Quickstart
//!
//! ```no_run
//! use datalake_nav::prelude::*;
//!
//! // 1. Generate a small TagCloud-style benchmark lake.
//! let bench = TagCloudConfig::small().generate();
//!
//! // 2. Build and optimize an organization over its tags.
//! let built = OrganizerBuilder::new(&bench.lake)
//!     .gamma(20.0)
//!     .seed(7)
//!     .build_optimized();
//!
//! // 3. Evaluate: expected probability a navigating user finds each table.
//! let eff = built.effectiveness();
//! println!("organization effectiveness = {eff:.3}");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the binaries that regenerate every table and figure of the paper.

pub use dln_cluster as cluster;
pub use dln_embed as embed;
pub use dln_lake as lake;
pub use dln_net as net;
pub use dln_org as org;
pub use dln_search as search;
pub use dln_serve as serve;
pub use dln_study as study;
pub use dln_synth as synth;

/// Commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use crate::cluster::{agglomerative::Dendrogram, kmedoids::KMedoids};
    pub use crate::embed::{
        cosine, EmbeddingModel, SyntheticEmbedding, SyntheticEmbeddingConfig, TopicAccumulator,
        Vocabulary, VocabularyConfig,
    };
    pub use crate::lake::{AttrId, Attribute, DataLake, LakeBuilder, Table, TableId, Tag, TagId};
    pub use crate::net::{Client, NetConfig, NetServer};
    pub use crate::org::{
        clustering_org, flat_org, BuiltOrganization, MultiDimConfig, MultiDimOrganization,
        NavConfig, Navigator, Organization, OrganizerBuilder, SearchConfig, ShardPolicy,
    };
    pub use crate::search::{KeywordSearch, SearchHit};
    pub use crate::serve::{
        NavService, RetryPolicy, ServeConfig, ServeError, SessionId, StepAction, StepRequest,
        StepResponse, SwapPolicy,
    };
    pub use crate::study::{StudyConfig, StudyReport};
    pub use crate::synth::{SocrataConfig, TagCloudConfig};
}
