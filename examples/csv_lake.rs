//! Organize a directory of CSV files — the path for pointing the system at
//! your own open-data dump.
//!
//! The example writes a handful of CSVs (with `.tags` metadata sidecars)
//! into a temp directory, ingests them into a lake (text-column detection,
//! tokenization, topic vectors), builds an optimized organization, and
//! searches it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example csv_lake
//! ```

use datalake_nav::lake::csv::{load_dir, CsvOptions};
use datalake_nav::prelude::*;

fn main() -> std::io::Result<()> {
    // An embedding model. For real use, load fastText vectors instead:
    //   let model = datalake_nav::embed::VecFileModel::from_path(path)?;
    let model = SyntheticEmbedding::new(&SyntheticEmbeddingConfig {
        vocab: VocabularyConfig {
            n_topics: 12,
            words_per_topic: 24,
            dim: 32,
            ..Default::default()
        },
        coverage: 1.0,
        coverage_seed: 0,
    });
    // Pull a few real-looking words out of the synthetic vocabulary so the
    // CSVs have embeddable content.
    let w = |t: usize, i: usize| {
        model
            .vocab()
            .word(datalake_nav::embed::TokenId((t * 24 + i) as u32))
            .to_string()
    };

    let dir = std::env::temp_dir().join(format!("dln_csv_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    // Three small "open data" tables with tags; one numeric column that
    // ingestion must skip (§3.1: organizations are built over text
    // attributes).
    std::fs::write(
        dir.join("fish_inspections.csv"),
        format!(
            "species,agency,score\n{},{},87\n{},{},92\n",
            w(0, 0),
            w(1, 0),
            w(0, 1),
            w(1, 1)
        ),
    )?;
    std::fs::write(
        dir.join("fish_inspections.tags"),
        "fisheries\nfood safety\n",
    )?;
    std::fs::write(
        dir.join("crop_yields.csv"),
        format!(
            "crop,region\n{},{}\n{},{}\n",
            w(2, 0),
            w(3, 0),
            w(2, 1),
            w(3, 1)
        ),
    )?;
    std::fs::write(dir.join("crop_yields.tags"), "agriculture\n")?;
    std::fs::write(
        dir.join("city_budget.csv"),
        format!("department,program\n{},{}\n", w(4, 0), w(5, 0)),
    )?;
    std::fs::write(dir.join("city_budget.tags"), "finance\ncity government\n")?;

    // Ingest.
    let lake = load_dir(&dir, &model, &CsvOptions::default())?;
    std::fs::remove_dir_all(&dir)?;
    println!("{}", lake.stats());
    println!();
    for t in lake.tables() {
        let tags: Vec<&str> = t
            .tags
            .iter()
            .map(|tg| lake.tag(*tg).label.as_str())
            .collect();
        println!(
            "table `{}`: {} text attributes, tags = [{}]",
            t.name,
            t.attrs.len(),
            tags.join(", ")
        );
    }

    // Organize and evaluate.
    let built = OrganizerBuilder::new(&lake)
        .max_iters(100)
        .build_optimized();
    println!(
        "\norganization over {} tags: effectiveness = {:.3}",
        built.ctx.n_tags(),
        built.effectiveness()
    );

    // Keyword search over the same lake.
    let engine = KeywordSearch::build(&lake);
    for query in ["fisheries", "department", &w(2, 0)] {
        let hits = engine.search(query, 3);
        let names: Vec<&str> = hits
            .iter()
            .map(|h| lake.table(h.table).name.as_str())
            .collect();
        println!("search `{query}` -> [{}]", names.join(", "));
    }
    Ok(())
}
