//! An interactive navigation REPL over a generated lake — a terminal
//! version of the paper's user-study prototype (§4.4): descend into child
//! states, backtrack, list the tables on the current shelf, or type free
//! text to bias the child ordering toward a topic.
//!
//! Run with:
//! ```sh
//! cargo run --release --example navigation_repl
//! ```
//!
//! Commands:
//! * `1`, `2`, … — descend into the numbered child
//! * `b`         — backtrack one level
//! * `t`         — list tables under the current state
//! * `q`         — quit
//! * anything else — treat as a topic query: children are re-ranked by the
//!   Eq 1 transition probability for that text
//!
//! Reads EOF gracefully, so it can be driven by a pipe:
//! `printf '1\nt\nq\n' | cargo run --example navigation_repl`

use std::io::BufRead;

use datalake_nav::embed::{tokenize, EmbeddingModel, TopicAccumulator};
use datalake_nav::prelude::*;

fn main() {
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    println!("{}\n", lake.stats());
    let built = OrganizerBuilder::new(lake).max_iters(300).build_optimized();
    let mut nav = built.navigator();
    // Current topic bias (unit vector), if the user typed a query.
    let mut topic: Option<Vec<f32>> = None;

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        // Show the current state and its children (topic-ranked if set).
        println!(
            "\n== {} (depth {}, {} attrs) ==",
            nav.label(nav.current()),
            nav.depth(),
            nav.n_attrs_here()
        );
        let children: Vec<_> = if let Some(t) = &topic {
            let mut probs = nav.transition_probs(t);
            probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            probs
        } else {
            nav.children().iter().map(|&c| (c, 0.0)).collect()
        };
        if children.is_empty() {
            println!("(leaf state — type `t` to list its tables, `b` to go back)");
        }
        for (i, (c, p)) in children.iter().enumerate().take(12) {
            if topic.is_some() {
                println!("  [{}] {} (p = {:.2})", i + 1, nav.label(*c), p);
            } else {
                println!("  [{}] {}", i + 1, nav.label(*c));
            }
        }
        if children.len() > 12 {
            println!("  ... and {} more", children.len() - 12);
        }
        print!("> ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!("(eof)");
            break;
        };
        let cmd = line.trim();
        match cmd {
            "q" | "quit" | "exit" => break,
            "b" | "back" => {
                if !nav.backtrack() {
                    println!("(already at the root)");
                }
            }
            "t" | "tables" => {
                for (tid, n) in nav.tables_here().into_iter().take(15) {
                    println!("  {} ({} matching attrs)", lake.table(tid).name, n);
                }
            }
            "" => {}
            n if n.parse::<usize>().is_ok() => {
                let idx = n.parse::<usize>().expect("checked") - 1;
                match children.get(idx) {
                    Some((c, _)) => nav.descend(*c).expect("listed child"),
                    None => println!("(no child #{})", idx + 1),
                }
            }
            query => {
                let mut acc = TopicAccumulator::new(socrata.model.dim());
                for tok in tokenize(query) {
                    if let Some(v) = socrata.model.embed(&tok) {
                        acc.add(v);
                    }
                }
                if acc.is_empty() {
                    println!("(no embeddable words in {query:?}; try table values)");
                } else {
                    println!("(re-ranking children for topic {query:?})");
                    topic = Some(acc.unit_mean());
                }
            }
        }
    }
}
