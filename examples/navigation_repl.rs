//! An interactive navigation REPL over a generated lake — a terminal
//! version of the paper's user-study prototype (§4.4), served through the
//! fault-tolerant navigation service (`dln-serve`) rather than a bare
//! [`Navigator`]: every command is a [`StepRequest`], and the degraded /
//! overloaded / migrated outcomes a production client would see are
//! surfaced in the prompt.
//!
//! Run with:
//! ```sh
//! cargo run --release --example navigation_repl
//! ```
//!
//! Commands:
//! * `1`, `2`, … — descend into the numbered child
//! * `b`         — backtrack one level
//! * `t`         — list tables under the current state
//! * `r`         — republish a reorganized DAG (hot-swap: the session
//!   migrates by path replay and reports the epoch change)
//! * `w [path]`  — write the current organization to a store file
//!   (atomic, checksummed; default path from `DLN_STORE_PATH`)
//! * `o [path]`  — open a store file and publish it as a new epoch (the
//!   session migrates onto the memory-mapped snapshot on its next step)
//! * `q`         — quit
//! * anything else — treat as a topic query: children are re-ranked by the
//!   Eq 1 transition probability for that text
//!
//! When `DLN_STORE_PATH` names an existing store file, the REPL skips the
//! expensive organization build entirely and serves straight off the
//! memory map — the store's "open a lake in milliseconds" cold-start path.
//! A first run can create that file with `w`.
//!
//! The service honors `DLN_SERVE_SESSIONS`, `DLN_SERVE_DEADLINE_MS` and
//! `DLN_SERVE_CONCURRENCY`. Try `DLN_SERVE_DEADLINE_MS=1` with the
//! `serve.slow` failpoint armed (`DLN_FAILPOINTS=serve.slow:0.5:7`) to see
//! degraded label-only views, exactly as a deadline-hit user would.
//!
//! Reads EOF gracefully, so it can be driven by a pipe:
//! `printf '1\nt\nr\nq\n' | cargo run --example navigation_repl`
//!
//! ## Over the wire
//!
//! The same REPL splits into a server and a remote client:
//! ```sh
//! cargo run --release --example navigation_repl -- --listen 127.0.0.1:7070
//! cargo run --release --example navigation_repl -- --connect 127.0.0.1:7070
//! ```
//! `--listen` builds the organization and serves it through the
//! `dln-net` epoll front-end (honoring `DLN_NET_MAX_CONNS`,
//! `DLN_NET_WORKERS`, `DLN_NET_IDLE_TTL_MS`; reads stdin until EOF/`q`,
//! then shuts down gracefully, finalizing remote sessions into the
//! navigation log). `--connect` drives the walk through the blocking
//! `net::Client` — same commands, same views, every step a wire frame;
//! the lake is regenerated locally (the generator is deterministic) so
//! table names and query embeddings resolve client-side.

use std::io::BufRead;

use datalake_nav::embed::{tokenize, EmbeddingModel, TopicAccumulator};
use datalake_nav::org::OrgContext;
use datalake_nav::prelude::*;
use datalake_nav::serve::SwapOutcome;

/// Step once through the service, retrying shed requests with the default
/// backoff policy (a real client's loop, in miniature).
fn step(svc: &NavService, sid: SessionId, req: &StepRequest) -> Result<StepResponse, ServeError> {
    let policy = RetryPolicy::default();
    policy.run(
        |ms| std::thread::sleep(std::time::Duration::from_millis(ms)),
        || svc.step(sid, req),
    )
}

fn render_view(view: &StepResponse, lake: &datalake_nav::lake::DataLake) {
    match view.swap {
        SwapOutcome::Migrated {
            from_epoch,
            to_epoch,
            lost_depth,
        } => {
            println!(
                "(hot-swap: migrated epoch {from_epoch} -> {to_epoch}, \
                 {lost_depth} path level(s) lost)"
            );
        }
        SwapOutcome::Pinned { epoch } => {
            println!("(pinned to epoch {epoch}; a newer organization exists)");
        }
        SwapOutcome::Current => {}
    }
    let degraded = if view.degraded {
        "  [degraded: deadline hit, labels only]"
    } else {
        ""
    };
    println!(
        "\n== {} (depth {}, epoch {}){degraded} ==",
        view.label, view.depth, view.epoch
    );
    if view.children.is_empty() {
        println!("(leaf state — type `t` to list its tables, `b` to go back)");
    }
    for (i, c) in view.children.iter().enumerate().take(12) {
        match c.prob {
            Some(p) => println!("  [{}] {} (p = {p:.2})", i + 1, c.label),
            None => println!("  [{}] {}", i + 1, c.label),
        }
    }
    if view.children.len() > 12 {
        println!("  ... and {} more", view.children.len() - 12);
    }
    for (tid, n) in view.tables.iter().take(15) {
        println!("  {} ({n} matching attrs)", lake.table(*tid).name);
    }
}

fn render(view: &StepResponse, lake: &datalake_nav::lake::DataLake, svc: &NavService) {
    render_view(view, lake);
    let stats = svc.stats();
    use std::sync::atomic::Ordering::Relaxed;
    let (deg, mig, shed) = (
        stats.degraded.load(Relaxed),
        stats.migrated.load(Relaxed),
        stats.overloaded.load(Relaxed),
    );
    if deg + mig + shed > 0 {
        println!("(service: {deg} degraded, {mig} migrated, {shed} shed so far)");
    }
}

/// Build (or cold-start from `DLN_STORE_PATH`) the service plus the
/// context/config the `r` (republish) command needs.
fn build_service(
    lake: &datalake_nav::lake::DataLake,
    store_env: Option<&str>,
) -> (NavService, OrgContext, NavConfig) {
    let persisted = store_env.map(std::path::Path::new).filter(|p| p.exists());
    if let Some(path) = persisted {
        let t = std::time::Instant::now();
        let svc = NavService::open_path(path, ServeConfig::from_env())
            .expect("opening the DLN_STORE_PATH store file");
        println!(
            "(cold start: opened {} in {:.2} ms, mmap: {})",
            path.display(),
            t.elapsed().as_secs_f64() * 1e3,
            svc.snapshot().is_mapped()
        );
        let ctx = OrgContext::full(lake);
        let nav = svc.snapshot().nav();
        (svc, ctx, nav)
    } else {
        let built = OrganizerBuilder::new(lake).max_iters(300).build_optimized();
        let ctx = built.ctx.clone();
        let nav = built.nav;
        let svc = NavService::new(
            built.ctx,
            built.organization,
            built.nav,
            ServeConfig::from_env(),
        );
        (svc, ctx, nav)
    }
}

/// `--listen ADDR`: build the organization once and serve it over the
/// wire until stdin closes (or a `q` line), then shut down gracefully.
fn serve_remote(addr: &str) {
    let socrata = SocrataConfig::small().generate();
    println!("{}\n", socrata.lake.stats());
    let store_env = std::env::var("DLN_STORE_PATH").ok();
    let (svc, _ctx, _nav) = build_service(&socrata.lake, store_env.as_deref());
    let svc = std::sync::Arc::new(svc);
    let config = NetConfig {
        addr: addr.to_string(),
        ..NetConfig::from_env()
    };
    let server = NetServer::start(
        std::sync::Arc::clone(&svc),
        config,
        std::sync::Arc::new(datalake_nav::serve::WallClock::new()),
    )
    .expect("binding the listen address");
    println!("(listening on {}; EOF or `q` stops)", server.local_addr());
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "q" {
            break;
        }
    }
    server.shutdown();
    println!(
        "(server stopped; merged log holds {} finalized walks)",
        svc.merged_log().n_sessions()
    );
}

/// `--connect ADDR`: the same REPL loop, but every step is a wire frame
/// through the blocking client. The lake is regenerated locally (the
/// generator is deterministic) for table names and query embeddings.
fn remote_repl(addr: &str) {
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    let mut client = Client::connect(addr).expect("connecting to the server");
    let sid = client.open().expect("opening a remote session");
    println!("(connected to {addr}; session {})", sid.0);
    let mut topic: Option<Vec<f32>> = None;
    let mut view = client
        .step(sid, &StepRequest::action(StepAction::Stay))
        .expect("first remote view");
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        render_view(&view, lake);
        print!("> ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!("(eof)");
            break;
        };
        let cmd = line.trim();
        let action = match cmd {
            "q" | "quit" | "exit" => break,
            "b" | "back" => Some(StepAction::Backtrack),
            "t" | "tables" => None,
            "r" | "republish" | "w" | "o" => {
                println!("(store and republish commands live on the server side)");
                Some(StepAction::Stay)
            }
            "" => Some(StepAction::Stay),
            n if n.parse::<usize>().is_ok() => {
                let idx = n.parse::<usize>().expect("checked") - 1;
                match view.children.get(idx) {
                    Some(c) => Some(StepAction::Descend(c.state)),
                    None => {
                        println!("(no child #{})", idx + 1);
                        Some(StepAction::Stay)
                    }
                }
            }
            query => {
                let mut acc = TopicAccumulator::new(socrata.model.dim());
                for tok in tokenize(query) {
                    if let Some(v) = socrata.model.embed(&tok) {
                        acc.add(v);
                    }
                }
                if acc.is_empty() {
                    println!("(no embeddable words in {query:?}; try table values)");
                } else {
                    println!("(re-ranking children for topic {query:?})");
                    topic = Some(acc.unit_mean());
                }
                Some(StepAction::Stay)
            }
        };
        let req = StepRequest {
            action: action.unwrap_or(StepAction::Stay),
            query: topic.clone(),
            deadline_ms: None,
            list_tables: action.is_none(),
        };
        // The client already reconnects and resends on transport faults;
        // RetryPolicy on top handles Overloaded sheds exactly as the
        // local loop does.
        let policy = RetryPolicy::default();
        match policy.run(
            |ms| std::thread::sleep(std::time::Duration::from_millis(ms)),
            || client.step(sid, &req),
        ) {
            Ok(v) => view = v,
            Err(ServeError::Overloaded { retry_after_ms }) => {
                println!("(service overloaded even after retries; retry in {retry_after_ms} ms)");
            }
            Err(e) => println!("(request failed: {e})"),
        }
    }
    client.close(sid).ok();
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--listen" => listen = argv.next(),
            "--connect" => connect = argv.next(),
            other => {
                eprintln!("(ignoring unknown argument {other:?})");
            }
        }
    }
    if let Some(addr) = listen {
        return serve_remote(&addr);
    }
    if let Some(addr) = connect {
        return remote_repl(&addr);
    }

    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    println!("{}\n", lake.stats());
    let store_env = std::env::var("DLN_STORE_PATH").ok();
    let (svc, ctx, nav) = build_service(lake, store_env.as_deref());
    let sid = svc.open_session().expect("fresh service has capacity");
    // Current topic bias (unit vector), if the user typed a query.
    let mut topic: Option<Vec<f32>> = None;
    // Alternate hot-swap publishes between the two baseline organizations.
    let mut publishes = 0u32;

    let mut view = step(&svc, sid, &StepRequest::action(StepAction::Stay)).expect("first view");
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        render(&view, lake, &svc);
        print!("> ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else {
            println!("(eof)");
            break;
        };
        let cmd = line.trim();
        let action = match cmd {
            "q" | "quit" | "exit" => break,
            "b" | "back" => {
                if view.depth == 0 {
                    println!("(already at the root)");
                }
                Some(StepAction::Backtrack)
            }
            "t" | "tables" => None, // re-render current state with tables
            "r" | "republish" => {
                let org = if publishes.is_multiple_of(2) {
                    flat_org(&ctx)
                } else {
                    clustering_org(&ctx)
                };
                publishes += 1;
                let epoch = svc.publish(ctx.clone(), org, nav);
                println!("(published epoch {epoch}; next step migrates this session)");
                Some(StepAction::Stay)
            }
            cmd if cmd == "w" || cmd.starts_with("w ") => {
                let arg = cmd[1..].trim();
                let path = if arg.is_empty() {
                    store_env.as_deref().unwrap_or("org.dln")
                } else {
                    arg
                };
                match svc.save_current(std::path::Path::new(path)) {
                    Ok(()) => println!("(wrote current organization to {path})"),
                    Err(e) => println!("(write failed: {e})"),
                }
                Some(StepAction::Stay)
            }
            cmd if cmd == "o" || cmd.starts_with("o ") => {
                let arg = cmd[1..].trim();
                let path = if arg.is_empty() {
                    store_env.as_deref().unwrap_or("org.dln")
                } else {
                    arg
                };
                match svc.publish_path(std::path::Path::new(path)) {
                    Ok(epoch) => println!(
                        "(opened {path} as epoch {epoch}; next step migrates this session \
                         onto the memory-mapped snapshot)"
                    ),
                    Err(e) => println!("(open failed: {e})"),
                }
                Some(StepAction::Stay)
            }
            "" => Some(StepAction::Stay),
            n if n.parse::<usize>().is_ok() => {
                let idx = n.parse::<usize>().expect("checked") - 1;
                match view.children.get(idx) {
                    Some(c) => Some(StepAction::Descend(c.state)),
                    None => {
                        println!("(no child #{})", idx + 1);
                        Some(StepAction::Stay)
                    }
                }
            }
            query => {
                let mut acc = TopicAccumulator::new(socrata.model.dim());
                for tok in tokenize(query) {
                    if let Some(v) = socrata.model.embed(&tok) {
                        acc.add(v);
                    }
                }
                if acc.is_empty() {
                    println!("(no embeddable words in {query:?}; try table values)");
                } else {
                    println!("(re-ranking children for topic {query:?})");
                    topic = Some(acc.unit_mean());
                }
                Some(StepAction::Stay)
            }
        };
        let req = StepRequest {
            action: action.unwrap_or(StepAction::Stay),
            query: topic.clone(),
            deadline_ms: None,
            list_tables: action.is_none(),
        };
        match step(&svc, sid, &req) {
            Ok(v) => view = v,
            Err(ServeError::Overloaded { retry_after_ms }) => {
                // RetryPolicy already backed off; the service is saturated.
                println!("(service overloaded even after retries; retry in {retry_after_ms} ms)");
            }
            Err(e) => {
                println!("(request failed: {e})");
            }
        }
    }
    svc.close_session(sid).ok();
}
