//! Navigation vs keyword search, head to head — a miniature of the paper's
//! §4.4 user study.
//!
//! Two simulated participants with the same information need explore the
//! same lake: one walks the organization, the other issues keyword queries
//! against a BM25 engine with embedding query expansion. The example
//! prints both result sets and their disjointness — the paper's
//! observation was that the two modalities surface largely different
//! tables (≈5% overlap), which is exactly why navigation complements
//! search.
//!
//! Run with:
//! ```sh
//! cargo run --release --example navigation_vs_search
//! ```

use datalake_nav::prelude::*;
use datalake_nav::search::ExpansionConfig;
use datalake_nav::study::{
    default_scenario, disjointness, AgentConfig, NavigationAgent, SearchAgent,
};

fn main() {
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    println!("{}", lake.stats());

    // The shared information need.
    let scenario = default_scenario(lake, "overview need", 3, 0.6).expect("lake has tags");
    println!(
        "\nscenario: {} relevant tables exist in the lake",
        scenario.relevant.len()
    );

    // Interface 1: a 2-dimensional optimized organization.
    let md = MultiDimOrganization::build(
        lake,
        &datalake_nav::org::MultiDimConfig {
            n_dims: 2,
            search: SearchConfig {
                max_iters: 300,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Interface 2: BM25 keyword search with query expansion.
    let engine = KeywordSearch::build_with_expansion(
        lake,
        socrata.model.clone(),
        ExpansionConfig::default(),
    );

    let cfg = AgentConfig {
        budget: 150,
        seed: 7,
        ..Default::default()
    };
    let nav_found = NavigationAgent::run(&md.dims, lake, &scenario, &cfg);
    let search_found = SearchAgent::run(&engine, &socrata.model, lake, &scenario, &cfg);

    let verified = |set: &std::collections::BTreeSet<TableId>| {
        set.iter()
            .filter(|t| scenario.relevant.contains(t))
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
    };
    let nav_ok = verified(&nav_found);
    let search_ok = verified(&search_found);

    println!("\nnavigation found {} relevant tables:", nav_ok.len());
    for t in nav_ok.iter().take(8) {
        println!("  {}", lake.table(*t).name);
    }
    println!(
        "\nkeyword search found {} relevant tables:",
        search_ok.len()
    );
    for t in search_ok.iter().take(8) {
        println!("  {}", lake.table(*t).name);
    }
    println!(
        "\ndisjointness of the two result sets: {:.3} (1.0 = nothing in common)",
        disjointness(&nav_ok, &search_ok)
    );
    let both: Vec<_> = nav_ok.intersection(&search_ok).collect();
    println!("tables found by BOTH modalities: {}", both.len());
}
