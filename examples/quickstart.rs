//! Quickstart: generate a small benchmark lake, build three organizations
//! (flat baseline, agglomerative clustering, local-search optimized), and
//! compare how likely a navigating user is to find each table.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use datalake_nav::prelude::*;

fn main() {
    // 1. A small TagCloud-style benchmark lake: every attribute carries one
    //    ground-truth tag and its values cluster around that tag's topic.
    let bench = TagCloudConfig::small().generate();
    let lake = &bench.lake;
    println!(
        "lake: {} tables, {} attributes, {} tags",
        lake.n_tables(),
        lake.n_attrs(),
        lake.n_tags()
    );

    // 2. Build organizations.
    let builder = OrganizerBuilder::new(lake)
        .gamma(20.0)
        .seed(7)
        .max_iters(400);
    let flat = builder.build_flat();
    let clustering = builder.build_clustering();
    let optimized = builder.build_optimized();

    // 3. Organization effectiveness (Eq 6): the expected probability that a
    //    user who has a table "in mind" discovers it by navigation.
    println!("\norganization effectiveness (expected table-discovery probability):");
    println!("  flat tag portal : {:.4}", flat.effectiveness());
    println!("  clustering      : {:.4}", clustering.effectiveness());
    println!("  optimized       : {:.4}", optimized.effectiveness());
    if let Some(stats) = &optimized.search_stats {
        println!(
            "  (local search: {} proposals, {} accepted, {:.2?})",
            stats.iterations, stats.accepted, stats.duration
        );
    }

    // 4. The paper's success-probability measure (θ = 0.9): navigation
    //    succeeds if it finds the table's attribute or a near-duplicate.
    let curve = optimized.success_curve(lake, 0.9);
    println!(
        "\nsuccess probability over tables: mean {:.3}, hardest table {:.3}, easiest {:.3}",
        curve.mean,
        curve.per_table.first().map(|(_, v)| *v).unwrap_or(0.0),
        curve.per_table.last().map(|(_, v)| *v).unwrap_or(0.0),
    );

    // 5. Navigate: walk toward the topic of the first attribute.
    let query = lake.attr(AttrId(0)).unit_topic.clone();
    let mut nav = optimized.navigator();
    println!(
        "\nnavigating toward the topic of attribute `{}`:",
        lake.attr(AttrId(0)).name
    );
    for _ in 0..32 {
        let probs = nav.transition_probs(&query);
        let Some((best, p)) = probs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
        else {
            break;
        };
        println!("  -> {} (p = {:.2})", nav.label(best), p);
        nav.descend(best).expect("child");
    }
    let tables = nav.tables_here();
    println!("  tables at this state:");
    for (tid, n_attrs) in tables.iter().take(5) {
        println!(
            "    {} ({} matching attributes)",
            lake.table(*tid).name,
            n_attrs
        );
    }
}
