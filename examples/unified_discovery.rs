//! Unified discovery — the paper's concluding future-work item: keyword
//! search and navigation as interchangeable modalities. Search for a
//! table, pivot into the organization where it lives, browse its
//! neighbourhood, then search *within* that neighbourhood.
//!
//! Run with:
//! ```sh
//! cargo run --release --example unified_discovery
//! ```

use datalake_nav::org::MultiDimConfig;
use datalake_nav::prelude::*;
use datalake_nav::search::ExpansionConfig;
use datalake_nav::study::UnifiedSession;

fn main() {
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    println!("{}", lake.stats());

    let engine = KeywordSearch::build_with_expansion(
        lake,
        socrata.model.clone(),
        ExpansionConfig::default(),
    );
    let md = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 2,
            search: SearchConfig {
                max_iters: 200,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut session = UnifiedSession::new(lake, &engine, &md.dims);

    // 1. Search: a value the user remembers seeing somewhere.
    let probe_value = lake
        .attrs()
        .iter()
        .find_map(|a| a.values.first())
        .expect("values stored")
        .clone();
    println!("\n[search] query = {probe_value:?}");
    let hits = session.search(&probe_value, 5);
    for h in &hits {
        println!("  {:>6.2}  {}", h.score, lake.table(h.table).name);
    }

    // 2. Pivot: jump into the organization at the top hit.
    let top = hits[0].table;
    let state = session.pivot_to_table(top).expect("table is organized");
    println!(
        "\n[pivot] jumped to state {:?} ({})",
        state,
        session.position_label().unwrap()
    );
    println!("  shelf:");
    for (t, n) in session.tables_here().into_iter().take(6) {
        println!("    {} ({} matching attrs)", lake.table(t).name, n);
    }

    // 3. Browse: widen the view one level.
    session.navigator().unwrap().backtrack();
    println!(
        "\n[browse] backtracked to {}",
        session.position_label().unwrap()
    );
    println!(
        "  the wider shelf has {} tables",
        session.tables_here().len()
    );

    // 4. Scoped search: the same query, restricted to this neighbourhood.
    let scoped = session.search_here(&probe_value, 5);
    println!("\n[search-here] {} scoped hits:", scoped.len());
    for h in &scoped {
        println!("  {:>6.2}  {}", h.score, lake.table(h.table).name);
    }

    // 5. And the reverse direction: free-text pivot into the organization.
    if let Some(s2) = session.pivot_to_query(&probe_value, &socrata.model) {
        println!(
            "\n[pivot-query] free-text pivot landed at {:?} ({})",
            s2,
            session.position_label().unwrap()
        );
    }
}
