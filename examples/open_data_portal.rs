//! Organize a Socrata-like open-data lake into a multi-dimensional
//! navigation structure and simulate a discovery session — the paper's
//! motivating scenario: "a user with only a vague notion of what data
//! exists in a lake".
//!
//! Run with:
//! ```sh
//! cargo run --release --example open_data_portal
//! ```

use datalake_nav::org::MultiDimConfig;
use datalake_nav::prelude::*;
use datalake_nav::study::default_scenario;

fn main() {
    // A skewed, multi-tagged, partially-embedded open-data lake (see
    // dln-synth for how it matches the published Socrata statistics).
    let socrata = SocrataConfig::small().generate();
    let lake = &socrata.lake;
    println!("{}", lake.stats());

    // Partition tags into three dimensions and optimize each in parallel.
    let md = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 3,
            search: SearchConfig {
                max_iters: 300,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    println!("\nbuilt a {}-dimensional organization:", md.n_dims());
    for (i, stats) in md.dim_stats().iter().enumerate() {
        println!(
            "  dimension {}: {} tags, {} attributes, {} tables",
            i + 1,
            stats.n_tags,
            stats.n_attrs,
            stats.n_tables
        );
    }
    println!(
        "effectiveness (Eq 8 across dimensions): {:.4}",
        md.effectiveness(lake)
    );

    // A vague information need: the lake's most popular topic area.
    let scenario = default_scenario(lake, "overview scenario", 3, 0.6).expect("lake has tags");
    println!(
        "\nscenario '{}': {} tables are actually relevant",
        scenario.label,
        scenario.relevant.len()
    );

    // Greedy navigation session in the best-matching dimension (the one
    // whose root topic is closest to the scenario).
    let dim = md
        .dims
        .iter()
        .max_by(|a, b| {
            let sa = datalake_nav::embed::dot(
                &a.organization.state(a.organization.root()).unit_topic,
                &scenario.unit_topic,
            );
            let sb = datalake_nav::embed::dot(
                &b.organization.state(b.organization.root()).unit_topic,
                &scenario.unit_topic,
            );
            sa.partial_cmp(&sb).unwrap()
        })
        .expect("at least one dimension");
    let mut nav = dim.navigator();
    println!("\ngreedy navigation trace (best-matching dimension):");
    for step in 1..=24 {
        let probs = nav.transition_probs(&scenario.unit_topic);
        let Some((best, p)) = probs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
        else {
            break;
        };
        println!("  step {step}: -> {} (p = {:.2})", nav.label(best), p);
        nav.descend(best).expect("child");
        if nav.at_tag_state().is_some() {
            break;
        }
    }
    println!("\ntables under the reached state:");
    let mut hits = 0;
    for (tid, _) in nav.tables_here().into_iter().take(8) {
        let mark = if scenario.relevant.contains(&tid) {
            hits += 1;
            "RELEVANT"
        } else {
            "        "
        };
        println!("  [{mark}] {}", lake.table(tid).name);
    }
    println!("({hits} of the listed tables are scenario-relevant)");
}
