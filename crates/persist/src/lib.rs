//! Shared persistence plumbing: checksum framing, little-endian codecs,
//! and the atomic write / `.prev` rotation / fallback-load protocol.
//!
//! Every durable artifact in the workspace — search checkpoints and
//! organization stores (`dln-org`), the feedback evidence log
//! (`org::reopt`), and the CDC change log (`lake::cdc`) — shares one
//! torn-write story, implemented here once:
//!
//! * **FNV-1a 64 checksums** ([`fnv1a`]) over every byte that matters.
//! * **Atomic publish** ([`atomic_write`]): the encoded buffer is written
//!   to `<path>.tmp`, fsynced, then renamed over `path`; an existing file
//!   is rotated to `<path>.prev` first so one previous generation always
//!   survives a torn write of the newest.
//! * **Fallback load** ([`load_with_fallback`]): when the newest file is
//!   unreadable or fails its checksum, the rotated previous generation is
//!   tried; only a double failure is an error — and on a double failure
//!   the files on disk are left byte-for-byte untouched for forensics.
//!
//! [`Writer`] and [`Reader`] are the little-endian codec halves used by
//! the record-style formats; the store's fixed-width section format uses
//! [`fnv1a`] and [`atomic_write`] directly.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::path::{Path, PathBuf};

use dln_fault::{DlnError, DlnResult};

/// FNV-1a 64 over a byte slice — the integrity checksum used by every
/// on-disk artifact in this workspace (and by the organization
/// fingerprint in `dln-org`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The `<path>.prev` rotation target for `path`.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".prev");
    PathBuf::from(os)
}

/// The `<path>.tmp` staging target for [`atomic_write`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Atomically publish `bytes` at `path`.
///
/// The buffer is staged at `<path>.tmp` and fsynced before any visible
/// change; an existing `path` is then rotated to `<path>.prev` (the
/// one-generation fallback) and the staged file renamed into place. A
/// crash at any point leaves either the old generation, or the new one
/// with the old at `.prev` — never a half-written `path`.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> DlnResult<()> {
    use std::io::Write as _;
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| DlnError::io(format!("creating {}", tmp.display()), e))?;
        f.write_all(bytes)
            .map_err(|e| DlnError::io(format!("writing {}", tmp.display()), e))?;
        f.sync_all()
            .map_err(|e| DlnError::io(format!("fsyncing {}", tmp.display()), e))?;
    }
    if path.exists() {
        std::fs::rename(path, prev_path(path))
            .map_err(|e| DlnError::io(format!("rotating {}", path.display()), e))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| DlnError::io(format!("publishing {}", path.display()), e))
}

/// Load the artifact at `path` via `load`, falling back to the rotated
/// previous generation (`<path>.prev`) when the newest file is unreadable
/// or fails its integrity checks. Errors only when both generations are
/// unusable; `what` names the artifact kind in warnings and errors. The
/// load path never writes: a double failure leaves both generations on
/// disk exactly as found, so the corruption can be inspected post-mortem.
pub fn load_with_fallback<T>(
    path: &Path,
    what: &str,
    load: impl Fn(&Path) -> DlnResult<T>,
) -> DlnResult<T> {
    match load(path) {
        Ok(v) => Ok(v),
        Err(primary) => {
            let prev = prev_path(path);
            eprintln!(
                "warning: {what} {} unusable ({primary}); trying {}",
                path.display(),
                prev.display()
            );
            load(&prev).map_err(|fallback| {
                DlnError::corrupt(
                    path.display().to_string(),
                    format!("both generations unusable — newest: {primary}; previous: {fallback}"),
                )
            })
        }
    }
}

/// Little-endian record encoder. The caller appends fields in order and
/// finishes with [`Writer::seal`], which appends the FNV-1a checksum of
/// every preceding byte.
pub struct Writer(Vec<u8>);

impl Writer {
    /// A writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer(Vec::with_capacity(capacity))
    }
    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append the FNV-1a checksum of everything written so far and return
    /// the finished buffer.
    pub fn seal(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.0);
        self.u64(checksum);
        self.0
    }
}

/// Little-endian record decoder over a checked byte slice. Every read is
/// bounds-checked and reports [`DlnError::Corrupt`] with `context` (the
/// source path) on truncation.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes` starting at `pos`, attributing errors to
    /// `context`.
    pub fn new(bytes: &'a [u8], pos: usize, context: &'a str) -> Self {
        Reader {
            bytes,
            pos,
            context,
        }
    }

    /// Current read position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Total length of the underlying slice.
    pub fn total_len(&self) -> usize {
        self.bytes.len()
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> DlnResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DlnError::corrupt(
                self.context,
                format!("truncated at byte {} (wanted {} more)", self.pos, n),
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Read one byte.
    pub fn u8(&mut self) -> DlnResult<u8> {
        Ok(self.take(1)?[0])
    }
    /// Read a little-endian u32.
    pub fn u32(&mut self) -> DlnResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Read a little-endian u64.
    pub fn u64(&mut self) -> DlnResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    /// Read a length prefix, sanity-bounded so a corrupt-but-checksummed
    /// length cannot trigger a giant allocation.
    pub fn len_prefix(&mut self) -> DlnResult<usize> {
        let n = self.u64()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n > remaining {
            return Err(DlnError::corrupt(
                self.context,
                format!("implausible length {n} at byte {}", self.pos),
            ));
        }
        Ok(n)
    }
}

/// Split a sealed buffer into its payload and verify the trailing FNV-1a
/// checksum, reporting [`DlnError::Corrupt`] (attributed to `context`) on
/// mismatch or if the buffer is too short to carry one.
pub fn verify_sealed<'a>(bytes: &'a [u8], context: &str) -> DlnResult<&'a [u8]> {
    if bytes.len() < 8 {
        return Err(DlnError::corrupt(
            context,
            format!(
                "{} bytes is too short for a checksummed record",
                bytes.len()
            ),
        ));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes([
        tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
    ]);
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(DlnError::corrupt(
            context,
            format!("checksum mismatch (stored {stored:#x}, computed {computed:#x}) — torn or corrupt write"),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_and_verify_roundtrip() {
        let mut w = Writer::with_capacity(16);
        w.u32(7);
        w.u64(u64::MAX);
        w.u8(3);
        let buf = w.seal();
        let payload = verify_sealed(&buf, "test").expect("verify");
        let mut r = Reader::new(payload, 0, "test");
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.pos(), payload.len());
    }

    #[test]
    fn every_flipped_byte_fails_verification() {
        let mut w = Writer::with_capacity(8);
        w.u64(0x0123_4567_89ab_cdef);
        let buf = w.seal();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(verify_sealed(&bad, "test").is_err(), "flip at {i}");
        }
    }

    #[test]
    fn atomic_write_rotates_and_survives() {
        let dir = std::env::temp_dir().join(format!("dln_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"gen-1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"gen-1");
        assert!(!prev_path(&path).exists());
        atomic_write(&path, b"gen-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"gen-2");
        assert_eq!(std::fs::read(prev_path(&path)).unwrap(), b"gen-1");
        // No .tmp litter is left behind.
        assert!(!dir.join("artifact.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_with_fallback_prefers_newest_then_prev() {
        let dir = std::env::temp_dir().join(format!("dln_persist_fb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        let load = |p: &Path| -> DlnResult<Vec<u8>> {
            let b = std::fs::read(p).map_err(|e| DlnError::io(p.display().to_string(), e))?;
            if b.starts_with(b"ok:") {
                Ok(b)
            } else {
                Err(DlnError::corrupt(p.display().to_string(), "bad prefix"))
            }
        };
        atomic_write(&path, b"ok:1").unwrap();
        assert_eq!(
            load_with_fallback(&path, "artifact", load).unwrap(),
            b"ok:1"
        );
        // Newest torn, previous good.
        atomic_write(&path, b"torn").unwrap();
        assert_eq!(
            load_with_fallback(&path, "artifact", load).unwrap(),
            b"ok:1"
        );
        // Both bad: a combined Corrupt error.
        atomic_write(&path, b"torn2").unwrap();
        let err = load_with_fallback(&path, "artifact", load).unwrap_err();
        assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_corruption_is_typed_and_leaves_files_for_forensics() {
        // Both generations hold sealed records; both are then corrupted.
        // The load must surface a typed `Corrupt` (no panic) and must not
        // modify, truncate, rotate, or delete either file — a post-mortem
        // needs the torn bytes exactly as the crash left them.
        let dir = std::env::temp_dir().join(format!("dln_persist_forensic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        let seal = |tag: u64| {
            let mut w = Writer::with_capacity(16);
            w.u64(tag);
            w.seal()
        };
        atomic_write(&path, &seal(1)).unwrap();
        atomic_write(&path, &seal(2)).unwrap();
        // Corrupt both generations in place (flip one payload byte each).
        for p in [path.clone(), prev_path(&path)] {
            let mut b = std::fs::read(&p).unwrap();
            b[3] ^= 0xFF;
            std::fs::write(&p, &b).unwrap();
        }
        let newest_before = std::fs::read(&path).unwrap();
        let prev_before = std::fs::read(prev_path(&path)).unwrap();
        let load = |p: &Path| -> DlnResult<u64> {
            let b = std::fs::read(p).map_err(|e| DlnError::io(p.display().to_string(), e))?;
            let payload = verify_sealed(&b, &p.display().to_string())?;
            Reader::new(payload, 0, "forensic").u64()
        };
        let err = load_with_fallback(&path, "artifact", load).unwrap_err();
        assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("both generations"), "combined context: {msg}");
        // Forensics: both corrupt files survive byte-for-byte.
        assert_eq!(std::fs::read(&path).unwrap(), newest_before);
        assert_eq!(std::fs::read(prev_path(&path)).unwrap(), prev_before);
        assert!(!dir.join("artifact.bin.tmp").exists(), "no staging litter");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_both_generations_is_an_error() {
        let path = std::env::temp_dir().join("dln_persist_never_written.bin");
        let err = load_with_fallback(&path, "artifact", |p| {
            std::fs::read(p).map_err(|e| DlnError::io(p.display().to_string(), e))
        })
        .unwrap_err();
        assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
    }
}
