//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to a crate registry, so this
//! workspace ships the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, portable generator (xoshiro256++
//!   seeded through SplitMix64). Unlike upstream `rand`, the stream is
//!   *stable across versions of this workspace* — experiment seeds keep
//!   meaning between PRs.
//! * [`Rng`] / [`RngExt`] — the core-and-extension trait pair:
//!   `random::<T>()` for `f32`/`f64`/`bool`/integers and
//!   `random_range(..)` over integer and float ranges (half-open and
//!   inclusive).
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point the
//!   workspace uses.
//!
//! Uniform integers use the widening-multiply rejection-free method
//! (Lemire's multiply-shift without the bias-correction loop); the bias is
//! at most 2⁻⁶⁴·span, far below anything the experiments can resolve, and
//! determinism — the property the workspace actually relies on — is exact.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniformly random 64-bit words.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng::next_u64
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructor.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal
    /// streams, forever.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn draw_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn draw_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn draw_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn draw_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardUniform::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods, mirroring `rand`'s `Rng`/`RngExt` split.
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (`f64`/`f32` in `[0, 1)`, `bool`
    /// fair coin, integers over their whole domain).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.draw_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-expanded from the seed with SplitMix64. Fast,
    /// equidistributed in every 64-bit lane, and portable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot the raw xoshiro256++ state, for checkpointing. The
        /// stream continues bit-identically from a generator restored with
        /// [`from_state`](Self::from_state).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restore a generator from a [`state`](Self::state) snapshot.
        /// The all-zero state (xoshiro's fixed point, unreachable from
        /// seeding) is mapped to the same guard state `seed_from_u64` uses.
        pub fn from_state(mut s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // The all-zero state is the one fixed point of xoshiro; the
            // SplitMix64 expansion cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn state_snapshot_resumes_bit_identically() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: u32 = rng.random_range(5..=7u32);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn works_through_mut_reference() {
        // `&mut impl Rng` call sites forward through the blanket impl.
        fn takes(rng: &mut impl Rng) -> u64 {
            super::RngExt::random::<u64>(rng)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes(&mut rng);
    }
}
