//! A vendored, dependency-free subset of the `rayon` API.
//!
//! The build environment has no access to a crate registry, so this
//! workspace ships the slice of `rayon` its hot loops actually use:
//! [`ParallelSliceMut::par_chunks_mut`] plus `zip` / `enumerate` /
//! `for_each` / `for_each_init` on the resulting indexed iterators.
//!
//! Implementation: each combinator is a concrete splittable cursor; a
//! terminal `for_each` splits the item range into one contiguous span per
//! worker and drains the spans on `std::thread::scope` threads. There is
//! no work stealing — the evaluator's per-query items are uniform enough
//! that static partitioning loses nothing, and contiguous spans keep each
//! worker streaming over adjacent memory.
//!
//! **Determinism:** every item is processed exactly once, with exclusive
//! access to its chunk, by per-item code identical to the sequential path,
//! so results are bit-for-bit equal for *any* thread count (including the
//! inline single-threaded fallback).
//!
//! Thread count resolution order: [`set_num_threads`] override, then the
//! `RAYON_NUM_THREADS` / `DLN_THREADS` environment variables, then
//! `std::thread::available_parallelism`. Work smaller than
//! [`MIN_ITEMS_PER_THREAD`] items per worker runs inline.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many items per would-be worker, `for_each` runs inline —
/// spawn overhead (~tens of µs) would exceed the work.
pub const MIN_ITEMS_PER_THREAD: usize = 2;

static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count for subsequent parallel calls (0 clears the
/// override, falling back to the environment / hardware default). Used by
/// benchmarks and the thread-count equivalence tests.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The number of workers parallel calls will use: the
/// [`set_num_threads`] override, else `RAYON_NUM_THREADS`, else
/// `DLN_THREADS`, else the hardware parallelism.
pub fn current_num_threads() -> usize {
    let o = NUM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    for var in ["RAYON_NUM_THREADS", "DLN_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Set while a caller is already running on a spawned worker thread:
    /// nested `for_each` calls must not spawn a second layer of threads
    /// (`std::thread::scope` has no shared pool to absorb oversubscription).
    static FORCE_INLINE: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with all parallel combinators on this thread forced inline
/// (single-threaded). Callers that hand whole tasks to their *own* scoped
/// worker threads wrap the per-task body in this so the inner
/// `par_chunks_mut` loops don't spawn a second layer of threads. The inline
/// path executes identical per-item code, so results are unchanged.
pub fn run_inline<R>(f: impl FnOnce() -> R) -> R {
    let prev = FORCE_INLINE.with(|c| c.replace(true));
    let out = f();
    FORCE_INLINE.with(|c| c.set(prev));
    out
}

/// True when [`run_inline`] is active on this thread.
fn force_inline() -> bool {
    FORCE_INLINE.with(|c| c.get())
}

/// Indexed parallel map: computes `f(0), f(1), …, f(n − 1)` across the
/// worker pool and returns the results **in index order** — the facade's
/// equivalent of `(0..n).into_par_iter().map(f).collect()`.
///
/// Work is split into one contiguous index span per worker; each result is
/// written into its own pre-sized slot, so output order (and therefore any
/// fold the caller runs over it) is independent of the thread count. `f`
/// must not care which thread it runs on.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    out.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
        slot[0] = Some(f(i));
    });
    out.into_iter()
        .map(|v| v.expect("par_map covered every index"))
        .collect()
}

/// The traits hot loops import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IndexedParallelIterator, ParallelSliceMut};
}

/// Slices that can be iterated as parallel mutable chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// A splittable cursor over a fixed number of items: the engine behind
/// every combinator here. `split_at` partitions the remaining items;
/// `next` drains them sequentially within one worker's span.
pub trait IndexedParallelIterator: Sized + Send {
    /// The item type handed to `for_each`.
    type Item: Send;

    /// Remaining item count.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into the first `index` items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Produce the next item (sequential drain within a span).
    fn next_item(&mut self) -> Option<Self::Item>;

    /// Pair this iterator with another, yielding item tuples. Lengths must
    /// agree for the pairing to cover both sides (mismatches stop at the
    /// shorter, as with sequential `zip`).
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    /// Consume every item, in parallel when the work warrants it.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Like [`for_each`], with per-worker state built by `init` — the
    /// rayon idiom for reusable scratch buffers.
    ///
    /// [`for_each`]: IndexedParallelIterator::for_each
    fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) + Sync,
    {
        let n = self.len();
        if n == 0 {
            return;
        }
        let workers = if force_inline() {
            1
        } else {
            current_num_threads()
                .min(n.div_ceil(MIN_ITEMS_PER_THREAD))
                .max(1)
        };
        if workers == 1 {
            let mut cursor = self;
            let mut state = init();
            while let Some(item) = cursor.next_item() {
                f(&mut state, item);
            }
            return;
        }
        // Contiguous spans, sized within one item of each other.
        let mut spans = Vec::with_capacity(workers);
        let mut rest = self;
        let mut remaining = n;
        for w in 0..workers {
            let take = remaining.div_ceil(workers - w);
            let (head, tail) = rest.split_at(take);
            spans.push(head);
            rest = tail;
            remaining -= take;
        }
        let f = &f;
        let init = &init;
        std::thread::scope(|scope| {
            for mut span in spans {
                scope.spawn(move || {
                    let mut state = init();
                    while let Some(item) = span.next_item() {
                        f(&mut state, item);
                    }
                });
            }
        });
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ParChunksMut {
                slice: a,
                chunk_size: self.chunk_size,
            },
            ParChunksMut {
                slice: b,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        if self.slice.is_empty() {
            return None;
        }
        let at = self.chunk_size.min(self.slice.len());
        let (head, tail) = std::mem::take(&mut self.slice).split_at_mut(at);
        self.slice = tail;
        Some(head)
    }
}

/// Pairing of two indexed parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        match (self.a.next_item(), self.b.next_item()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

/// Index-attaching adaptor.
pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Enumerate {
                inner: a,
                offset: self.offset,
            },
            Enumerate {
                inner: b,
                offset: self.offset + index,
            },
        )
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        let item = self.inner.next_item()?;
        let i = self.offset;
        self.offset += 1;
        Some((i, item))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Tests that touch the global thread-count override must not overlap.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn chunks_cover_slice_once() {
        let mut v: Vec<u64> = vec![0; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        // Every element written exactly once, with its chunk index.
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (j / 7) as u64);
        }
    }

    #[test]
    fn zip_pairs_aligned_chunks() {
        let mut a = vec![0u32; 60];
        let mut b = [0u32; 20];
        a.par_chunks_mut(3)
            .zip(b.par_chunks_mut(1))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for x in ca.iter_mut() {
                    *x = i as u32;
                }
                cb[0] = i as u32 * 10;
            });
        assert!(a.iter().enumerate().all(|(j, &x)| x == (j / 3) as u32));
        assert!(b.iter().enumerate().all(|(j, &x)| x == j as u32 * 10));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut v: Vec<f64> = vec![0.0; 997];
            v.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = ((i * 31 + k) as f64).sin();
                }
            });
            set_num_threads(0);
            v
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            let par = run(t);
            assert!(serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn for_each_init_reuses_state_within_span() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let inits = AtomicUsize::new(0);
        let mut v = [0u8; 64];
        set_num_threads(4);
        v.par_chunks_mut(1).for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::new()
            },
            |scratch, chunk| {
                scratch.push(0);
                chunk[0] = 1;
            },
        );
        set_num_threads(0);
        assert!(inits.load(Ordering::Relaxed) <= 4, "one init per worker");
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut v: Vec<u32> = Vec::new();
        v.par_chunks_mut(4).for_each(|_| panic!("no items"));
    }

    #[test]
    fn par_map_preserves_index_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for t in [1usize, 3, 8] {
            set_num_threads(t);
            let v = par_map(257, |i| i * i);
            set_num_threads(0);
            assert_eq!(v.len(), 257);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
        }
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn run_inline_suppresses_nested_spawns() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let outer = std::thread::current().id();
        let ran_on = run_inline(|| {
            let ids = std::sync::Mutex::new(Vec::new());
            let mut v = [0u8; 64];
            v.par_chunks_mut(1).for_each(|chunk| {
                chunk[0] = 1;
                ids.lock().unwrap().push(std::thread::current().id());
            });
            assert!(v.iter().all(|&x| x == 1));
            ids.into_inner().unwrap()
        });
        set_num_threads(0);
        assert!(
            ran_on.iter().all(|&id| id == outer),
            "inline mode must not spawn"
        );
        // The guard is scoped: parallelism is restored after run_inline.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn env_override_resolution() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }
}
