//! The blocking wire client.
//!
//! [`Client`] speaks the framed protocol over one `TcpStream` and
//! presents the same typed surface as [`NavService`] itself — `open`,
//! `step`, `path`, `close` — returning [`ServeResult`], so existing
//! call sites (and [`RetryPolicy`]) work unchanged against a remote
//! service.
//!
//! ## Recovery contract
//!
//! Two failure planes are kept strictly separate:
//!
//! * **Typed refusals** (`Overloaded`, `Stale`, `SessionNotFound`, …)
//!   arrive as error *frames* and are rehydrated into the matching
//!   [`ServeError`] — the caller's retry policy decides.
//! * **Transport failures** (connection reset, EOF mid-frame, corrupt
//!   bytes) are handled *inside* the client: drop the stream, reconnect,
//!   and resend the same envelope with the **same sequence number**. The
//!   server's exactly-once cache turns the resend into a replay, so a
//!   step is never applied twice no matter where the connection died.
//!   Only after `max_reconnects` consecutive transport failures does the
//!   client surface a [`ServeError::Nav`]/Io to the caller.
//!
//! Sequence numbers are per-client and monotonic; the pairing invariant
//! is checked on every response (a mismatched seq is a transport error —
//! except an `Overloaded` shed frame, which the server may emit before it
//! has read anything, and which maps straight to the typed refusal).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dln_fault::{DlnError, DlnResult};
use dln_org::StateId;
use dln_serve::service::{StepRequest, StepResponse};
use dln_serve::{ApiRequest, ApiResponse, ServeError, ServeResult, SessionId, WireError};

use crate::wire;

/// A blocking connection to a [`NetServer`](crate::server::NetServer).
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
    rbuf: Vec<u8>,
    seq: u64,
    /// Transport-level reconnect attempts per request before giving up.
    pub max_reconnects: u32,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7070"`).
    pub fn connect(addr: impl Into<String>) -> DlnResult<Client> {
        let mut c = Client {
            addr: addr.into(),
            stream: None,
            rbuf: Vec::new(),
            seq: 0,
            max_reconnects: 8,
            read_timeout: Duration::from_secs(10),
        };
        c.ensure_stream()?;
        Ok(c)
    }

    fn ensure_stream(&mut self) -> DlnResult<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect(&self.addr)
                .map_err(|e| DlnError::io(format!("net client connect {}", self.addr), e))?;
            s.set_nodelay(true)
                .map_err(|e| DlnError::io("net client nodelay", e))?;
            s.set_read_timeout(Some(self.read_timeout))
                .map_err(|e| DlnError::io("net client read timeout", e))?;
            self.rbuf.clear();
            self.stream = Some(s);
        }
        // The Option was just filled; unwrap_or_else keeps the lint regime
        // (deny(unwrap_used)) honest without an unreachable panic path.
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            None => Err(DlnError::io(
                "net client",
                std::io::Error::new(std::io::ErrorKind::NotConnected, "stream vanished"),
            )),
        }
    }

    /// One request/response exchange at the transport level.
    fn exchange_once(&mut self, framed: &[u8], seq: u64) -> DlnResult<ApiResponse> {
        let max_len = wire::MAX_FRAME_LEN;
        let stream = self.ensure_stream()?;
        stream
            .write_all(framed)
            .map_err(|e| DlnError::io("net client write", e))?;
        // Read until one complete frame (or a transport error).
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((payload, consumed)) =
                wire::try_decode_frame(&self.rbuf, max_len, "net client frame")?
            {
                let (got_seq, resp) = wire::decode_response(payload, "net client response")?;
                self.rbuf.drain(..consumed);
                if got_seq != seq {
                    // An accept-time shed is the one legitimate unpaired
                    // frame (the server answers before reading).
                    if let ApiResponse::Error(WireError::Overloaded { .. }) = resp {
                        return Ok(resp);
                    }
                    return Err(DlnError::corrupt(
                        "net client",
                        format!("response seq {got_seq} does not match request seq {seq}"),
                    ));
                }
                return Ok(resp);
            }
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                None => {
                    return Err(DlnError::io(
                        "net client",
                        std::io::Error::new(std::io::ErrorKind::NotConnected, "stream vanished"),
                    ))
                }
            };
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(DlnError::io(
                        "net client read",
                        std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed mid-response",
                        ),
                    ))
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(DlnError::io("net client read", e)),
            }
        }
    }

    /// Send one request; reconnect + resend (same seq) on transport
    /// failure; rehydrate typed refusals into [`ServeError`].
    fn request(&mut self, req: &ApiRequest) -> ServeResult<ApiResponse> {
        self.seq += 1;
        let seq = self.seq;
        let payload = wire::encode_request(seq, req);
        let mut framed = Vec::new();
        wire::encode_frame(&payload, &mut framed);

        let mut last_err: Option<DlnError> = None;
        for attempt in 0..=self.max_reconnects {
            if attempt > 0 {
                // Fresh socket, same envelope: the server's exactly-once
                // cache makes the resend a replay, never a double-apply.
                self.stream = None;
                self.rbuf.clear();
                std::thread::sleep(Duration::from_millis(2u64 << attempt.min(6)));
            }
            match self.exchange_once(&framed, seq) {
                Ok(ApiResponse::Error(wire_err)) => return Err(ServeError::from(wire_err)),
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Transport-plane failure: the stream state is unknown
                    // (half-written request, half-read response) — only a
                    // reconnect restores framing.
                    self.stream = None;
                    self.rbuf.clear();
                    last_err = Some(e);
                }
            }
        }
        Err(ServeError::Nav(last_err.unwrap_or_else(|| {
            DlnError::io("net client", std::io::Error::other("request failed"))
        })))
    }

    fn unexpected(resp: ApiResponse, wanted: &str) -> ServeError {
        ServeError::Nav(DlnError::corrupt(
            "net client",
            format!("expected {wanted}, got {resp:?}"),
        ))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ServeResult<()> {
        match self.request(&ApiRequest::Ping)? {
            ApiResponse::Pong => Ok(()),
            other => Err(Self::unexpected(other, "Pong")),
        }
    }

    /// Open a session (fault key 0); see [`open_keyed`](Client::open_keyed).
    pub fn open(&mut self) -> ServeResult<SessionId> {
        self.open_keyed(0)
    }

    /// Open a session with a deterministic fault key, mirroring
    /// [`NavService::open_session_keyed`](dln_serve::NavService::open_session_keyed).
    pub fn open_keyed(&mut self, fault_key: u64) -> ServeResult<SessionId> {
        match self.request(&ApiRequest::Open { fault_key })? {
            ApiResponse::Opened { session } => Ok(session),
            other => Err(Self::unexpected(other, "Opened")),
        }
    }

    /// One navigation step, exactly-once even across reconnects.
    pub fn step(&mut self, session: SessionId, req: &StepRequest) -> ServeResult<StepResponse> {
        let resp = self.request(&ApiRequest::Step {
            session,
            req: req.clone(),
        })?;
        match resp {
            ApiResponse::Step(view) => Ok(view),
            other => Err(Self::unexpected(other, "Step")),
        }
    }

    /// The session's root-anchored path.
    pub fn path(&mut self, session: SessionId) -> ServeResult<Vec<StateId>> {
        match self.request(&ApiRequest::Path { session })? {
            ApiResponse::Path { path, .. } => Ok(path),
            other => Err(Self::unexpected(other, "Path")),
        }
    }

    /// Close a session, merging its walk into the service log.
    pub fn close(&mut self, session: SessionId) -> ServeResult<()> {
        match self.request(&ApiRequest::Close { session })? {
            ApiResponse::Closed { .. } => Ok(()),
            other => Err(Self::unexpected(other, "Closed")),
        }
    }
}
