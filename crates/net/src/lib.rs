//! Network front-end for `dln-serve`: thousands of mostly-idle
//! navigation sessions on a handful of threads.
//!
//! The paper's organizations are built to be navigated *interactively* —
//! a human sits at the other end of every step, so a real deployment is
//! dominated by connections that are idle between operations. A
//! thread-per-connection front-end would burn a stack per idle user;
//! this crate instead multiplexes every connection over one OS readiness
//! queue:
//!
//! * [`poller`] — epoll (Linux) / kqueue (BSD) via direct FFI, std-only,
//!   same vendoring posture as `dln-rand`/`dln-rayon`; level-triggered,
//!   with a self-pipe [`Waker`](poller::Waker) for cross-thread wakeups.
//! * [`wire`] — the length-prefixed binary protocol: versioned magic,
//!   u32 length cap, FNV-1a frame checksum, and a bit-exact payload
//!   codec for the typed [`ApiRequest`](dln_serve::ApiRequest) /
//!   [`ApiResponse`](dln_serve::ApiResponse) enums (floats travel as
//!   IEEE-754 bits, so remote responses are `to_bits`-identical to local
//!   ones).
//! * [`conn`] — the per-connection state machine (idle → reading →
//!   dispatching → writing), with buffer caps so a hostile peer can cost
//!   at most one frame of memory.
//! * [`server`] — [`NetServer`]: the reactor thread, a fixed worker pool
//!   running [`NavService::dispatch`](dln_serve::NavService::dispatch),
//!   accept-time shedding that composes with the admission gate, an
//!   idle-TTL sweep on the injected clock, a per-session exactly-once
//!   response cache, and graceful shutdown that finalizes sessions into
//!   the navigation log.
//! * [`client`] — the blocking [`Client`] mirror of the service surface,
//!   with reconnect-and-resend recovery and
//!   [`RetryPolicy`](dln_serve::RetryPolicy) compatibility.
//!
//! Chaos coverage lives behind four failpoints — `net.accept_fail`,
//! `net.read_torn`, `net.write_partial`, `net.conn_drop` — exercised by
//! the `net_chaos` test binary and the CI matrix.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod conn;
pub mod poller;
pub mod server;
pub mod wire;

pub use client::Client;
pub use server::{NetConfig, NetServer, NetStats};
