//! OS readiness polling via direct FFI: epoll on Linux, kqueue on the
//! BSDs/macOS. No external crates — the same vendoring posture as
//! `dln-rand`/`dln-rayon`, and the same FFI discipline as the mmap story
//! in `dln-org::store`: one tiny `extern "C"` block per OS, every unsafe
//! call wrapped in a typed, errno-checked method.
//!
//! The abstraction is deliberately minimal — exactly what the reactor
//! needs and nothing more:
//!
//! * register/modify/deregister a file descriptor with an interest set
//!   ([`Interest::READ`] / [`Interest::WRITE`], level-triggered),
//! * block for readiness with a timeout, yielding `(token, readable,
//!   writable)` events,
//! * a self-pipe [`Waker`] so worker threads (which finish dispatches
//!   off-loop) can interrupt a blocked `wait`.
//!
//! Level-triggered is a deliberate choice over edge-triggered: the
//! conn state machine reads/writes until `WouldBlock` anyway, and
//! level semantics make a missed wakeup structurally impossible — the
//! poller re-reports readiness until the buffer is drained. The ISSUE's
//! "edge-level readiness loop" is exactly this: a readiness *loop* over
//! level-triggered events.

use std::io;
use std::os::unix::io::RawFd;

use dln_fault::{DlnError, DlnResult};

/// Readiness interests for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// No data interest: only hangup/error conditions (used to park a
    /// descriptor while its request is with the worker pool).
    pub const NONE: Interest = Interest(0b00);
    /// Wake when the descriptor is readable (or a peer hung up).
    pub const READ: Interest = Interest(0b01);
    /// Wake when the descriptor is writable.
    pub const WRITE: Interest = Interest(0b10);
    /// Wake on both.
    pub const BOTH: Interest = Interest(0b11);

    fn readable(self) -> bool {
        self.0 & 0b01 != 0
    }
    fn writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable now (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

fn last_os_error(context: &str) -> DlnError {
    DlnError::io(context, io::Error::last_os_error())
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Create the epoll instance.
        pub fn new() -> DlnResult<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // the only failure mode and is checked below.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error("net poller: epoll_create1"));
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest.readable() {
                m |= EPOLLIN;
            }
            if interest.writable() {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> DlnResult<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            // SAFETY: `ev` is a valid, live EpollEvent for the duration of
            // the call; the kernel copies it and keeps no reference.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_os_error("net poller: epoll_ctl"));
            }
            Ok(())
        }

        /// Register `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> DlnResult<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Change the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> DlnResult<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Remove `fd` from the poll set (idempotent enough for teardown:
        /// the caller closes the fd right after, which deregisters too).
        pub fn deregister(&self, fd: RawFd) -> DlnResult<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl`; pre-2.6.9 kernels demanded a non-null
            // event pointer for DEL, so we pass one unconditionally.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(last_os_error("net poller: epoll_ctl(DEL)"));
            }
            Ok(())
        }

        /// Block up to `timeout_ms` (negative = forever) for readiness,
        /// appending decoded events to `out`.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> DlnResult<()> {
            // SAFETY: `buf` is a live, correctly-sized allocation; the
            // kernel writes at most `buf.len()` events into it.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: spurious wake, caller re-loops
                }
                return Err(DlnError::io("net poller: epoll_wait", e));
            }
            for ev in &self.buf[..n as usize] {
                let events = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is a descriptor this struct owns exclusively.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// BSD / macOS: kqueue
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux"),))]
mod sys {
    use super::*;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_ERROR: u16 = 0x4000;
    const EV_EOF: u16 = 0x8000;

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered kqueue instance (kqueue filters are level-triggered
    /// by default, matching the epoll configuration above).
    pub struct Poller {
        kq: i32,
        buf: Vec<Kevent>,
    }

    impl Poller {
        /// Create the kqueue instance.
        pub fn new() -> DlnResult<Poller> {
            // SAFETY: no pointers; negative return checked below.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(last_os_error("net poller: kqueue"));
            }
            Ok(Poller {
                kq,
                buf: vec![
                    Kevent {
                        ident: 0,
                        filter: 0,
                        flags: 0,
                        fflags: 0,
                        data: 0,
                        udata: std::ptr::null_mut(),
                    };
                    1024
                ],
            })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> DlnResult<()> {
            let ch = Kevent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut std::ffi::c_void,
            };
            // SAFETY: `ch` is a valid changelist of length 1; the kernel
            // copies it during the call.
            let rc = unsafe { kevent(self.kq, &ch, 1, std::ptr::null_mut(), 0, std::ptr::null()) };
            if rc < 0 {
                return Err(last_os_error("net poller: kevent(change)"));
            }
            Ok(())
        }

        /// Register `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> DlnResult<()> {
            if interest.readable() {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            }
            if interest.writable() {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            }
            Ok(())
        }

        /// Change the interest set of an already-registered `fd`. kqueue
        /// filters are independent, so this adds the wanted ones and
        /// removes the unwanted ones (deletion of an absent filter is
        /// tolerated).
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> DlnResult<()> {
            if interest.readable() {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_READ, EV_DELETE, token);
            }
            if interest.writable() {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, token);
            }
            Ok(())
        }

        /// Remove `fd` from the poll set.
        pub fn deregister(&self, fd: RawFd) -> DlnResult<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        /// Block up to `timeout_ms` (negative = forever) for readiness,
        /// appending decoded events to `out`.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> DlnResult<()> {
            let ts;
            let ts_ptr = if timeout_ms < 0 {
                std::ptr::null()
            } else {
                ts = Timespec {
                    tv_sec: (timeout_ms / 1000) as i64,
                    tv_nsec: (timeout_ms % 1000) as i64 * 1_000_000,
                };
                &ts as *const Timespec
            };
            // SAFETY: `buf` is a live allocation; the kernel writes at most
            // `buf.len()` events; `ts_ptr` is null or points at a live
            // Timespec for the duration of the call.
            let n = unsafe {
                kevent(
                    self.kq,
                    std::ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    ts_ptr,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(DlnError::io("net poller: kevent(wait)", e));
            }
            for ev in &self.buf[..n as usize] {
                out.push(Event {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ || ev.flags & (EV_EOF | EV_ERROR) != 0,
                    writable: ev.filter == EVFILT_WRITE,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: kq is a descriptor this struct owns exclusively.
            unsafe { close(self.kq) };
        }
    }
}

pub use sys::Poller;

// ---------------------------------------------------------------------------
// Self-pipe waker
// ---------------------------------------------------------------------------

mod pipe_ffi {
    extern "C" {
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
    pub const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x0004;
}

/// The classic self-pipe trick: the reactor registers the read end with
/// its [`Poller`]; any thread writes one byte to the write end to
/// interrupt a blocked `wait`. Both ends are nonblocking, so a full pipe
/// (already-pending wake) is a no-op, never a stall.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: the fds are plain integers; read/write on pipe ends from
// multiple threads is what pipes are for.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create the pipe pair, both ends nonblocking.
    pub fn new() -> DlnResult<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array the kernel fills.
        if unsafe { pipe_ffi::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_os_error("net waker: pipe"));
        }
        for fd in fds {
            // SAFETY: fd is a freshly created pipe end we own.
            if unsafe { pipe_ffi::fcntl(fd, pipe_ffi::F_SETFL, pipe_ffi::O_NONBLOCK) } < 0 {
                let err = last_os_error("net waker: fcntl(O_NONBLOCK)");
                // SAFETY: closing our own fds on the error path.
                unsafe {
                    pipe_ffi::close(fds[0]);
                    pipe_ffi::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd the reactor registers for READ interest.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupt a blocked `wait`. Callable from any thread; a full pipe
    /// means a wake is already pending, which is success.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: write_fd is a live nonblocking pipe end; a short or
        // failed write (EAGAIN) only means a wake is already queued.
        unsafe { pipe_ffi::write(self.write_fd, &byte, 1) };
    }

    /// Drain all pending wake bytes (called by the reactor when the read
    /// end reports readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: buf is a live 64-byte buffer; read_fd is nonblocking,
            // so this returns -1/EAGAIN instead of blocking when drained.
            let n = unsafe { pipe_ffi::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are pipe ends this struct owns exclusively.
        unsafe {
            pipe_ffi::close(self.read_fd);
            pipe_ffi::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_sees_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(server.as_raw_fd(), 7, Interest::BOTH)
            .expect("register");

        // A fresh socket with empty send buffer is writable immediately.
        let mut events = Vec::new();
        poller.wait(1000, &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Not readable until the peer sends.
        assert!(!events.iter().any(|e| e.token == 7 && e.readable));
        client.write_all(b"ping").expect("send");
        let mut events = Vec::new();
        // Level-triggered: readiness persists until drained, so one wait
        // suffices even if the bytes landed before it started.
        poller.wait(1000, &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");

        // Hangup reports as readable (read returns 0 = EOF).
        drop(client);
        let mut events = Vec::new();
        poller.wait(1000, &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(server.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().expect("poller");
        let waker = std::sync::Arc::new(Waker::new().expect("waker"));
        poller
            .register(waker.read_fd(), u64::MAX, Interest::READ)
            .expect("register");

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            w.wake();
            w.wake(); // double-wake coalesces, never blocks
        });
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        while events.is_empty() {
            poller.wait(5000, &mut events).expect("wait");
            assert!(start.elapsed().as_secs() < 5, "waker never fired");
        }
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        waker.drain();
        // Drained: a short wait now times out with no events.
        let mut events = Vec::new();
        poller.wait(10, &mut events).expect("wait");
        assert!(!events.iter().any(|e| e.token == u64::MAX));
        t.join().expect("join");
    }
}
