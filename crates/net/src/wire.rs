//! The length-prefixed binary wire protocol.
//!
//! One frame carries one message:
//!
//! ```text
//! ┌────────────┬────────────┬─────────────────┬──────────────────┐
//! │ magic  u32 │ len    u32 │ payload (len B) │ fnv1a(payload)   │
//! │ "DLN1" LE  │ ≤ cap      │                 │ u64              │
//! └────────────┴────────────┴─────────────────┴──────────────────┘
//! ```
//!
//! The magic doubles as the protocol version (`DLN1`); a future format
//! bump changes the magic, so an old peer refuses a new frame instead of
//! misparsing it. `len` is capped ([`MAX_FRAME_LEN`] by default, smaller
//! caps configurable) and validated *before* any allocation — an
//! adversarial length can cost at most one `Corrupt` error, never memory.
//! The trailing FNV-1a checksum is the same integrity primitive every
//! durable artifact in the workspace uses (`dln-persist`); a torn or
//! bit-flipped frame is a typed [`DlnError::Corrupt`], never a panic.
//!
//! The payload is a request or response *envelope*: a `u64` sequence
//! number followed by the [`ApiRequest`] / [`ApiResponse`] body. The
//! sequence number is what makes retries exactly-once: the server caches
//! the last response per session, and a client resending seq `q` after a
//! torn connection gets the cached bytes instead of a re-applied step.
//!
//! Every float crosses the wire as its IEEE-754 bit pattern (`f32 → u32`,
//! `f64 → u64`), so a decoded response is bit-identical to the encoded
//! one — the property the wire-vs-library test asserts with
//! `f64::to_bits` equality.

use dln_fault::{DlnError, DlnResult};
use dln_lake::TableId;
use dln_org::StateId;
use dln_persist::fnv1a;
use dln_serve::service::{ChildView, StepAction, StepRequest, StepResponse, SwapOutcome};
use dln_serve::{ApiRequest, ApiResponse, SessionId, WireError};

/// Frame magic; doubles as the wire-format version ("DLN1").
pub const MAGIC: u32 = u32::from_le_bytes(*b"DLN1");

/// Default cap on a frame's payload length (16 MiB). A frame header
/// announcing more than the configured cap is rejected as `Corrupt`
/// before any allocation happens.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Frame header length (magic + payload length).
pub const HEADER_LEN: usize = 8;

/// Frame trailer length (FNV-1a checksum).
pub const TRAILER_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Append one finished frame (header + `payload` + checksum) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

/// Try to extract one frame from the front of `buf`.
///
/// * `Ok(None)` — the buffer holds a valid prefix of a frame; read more.
/// * `Ok(Some((payload, consumed)))` — one complete, checksum-verified
///   frame; the caller drains `consumed` bytes.
/// * `Err(Corrupt)` — bad magic, an over-cap length, or a checksum
///   mismatch. The connection is beyond recovery (framing is lost) and
///   must be closed.
pub fn try_decode_frame<'a>(
    buf: &'a [u8],
    max_len: u32,
    context: &str,
) -> DlnResult<Option<(&'a [u8], usize)>> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != MAGIC {
        return Err(DlnError::corrupt(
            context,
            format!("bad frame magic {magic:#010x} (expected {MAGIC:#010x})"),
        ));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > max_len {
        return Err(DlnError::corrupt(
            context,
            format!("frame length {len} exceeds the {max_len}-byte cap"),
        ));
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len as usize];
    let stored = u64::from_le_bytes(
        buf[HEADER_LEN + len as usize..total]
            .try_into()
            .unwrap_or([0; 8]),
    );
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(DlnError::corrupt(
            context,
            format!("frame checksum mismatch (stored {stored:#x}, computed {computed:#x})"),
        ));
    }
    Ok(Some((payload, total)))
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            buf: Vec::with_capacity(64),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt<T>(&mut self, v: &Option<T>, mut put: impl FnMut(&mut Enc, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                put(self, x);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], context: &'a str) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            context,
        }
    }
    fn corrupt(&self, detail: impl Into<String>) -> DlnError {
        DlnError::corrupt(self.context, detail)
    }
    fn take(&mut self, n: usize) -> DlnResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "truncated payload at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> DlnResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DlnResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> DlnResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn f32_bits(&mut self) -> DlnResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64_bits(&mut self) -> DlnResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn boolean(&mut self) -> DlnResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.corrupt(format!("bool byte {other} (expected 0 or 1)"))),
        }
    }
    /// A count prefix, sanity-bounded by the bytes remaining: each counted
    /// element occupies at least `min_elem` bytes, so a corrupt count can
    /// never trigger an allocation larger than the payload itself.
    fn count(&mut self, min_elem: usize) -> DlnResult<usize> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem.max(1)) > remaining {
            return Err(self.corrupt(format!(
                "implausible count {n} at byte {} ({remaining} bytes remain)",
                self.pos
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> DlnResult<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt(format!("invalid UTF-8 in string at byte {}", self.pos)))
    }
    fn opt<T>(
        &mut self,
        mut get: impl FnMut(&mut Dec<'a>) -> DlnResult<T>,
    ) -> DlnResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(get(self)?)),
            other => Err(self.corrupt(format!("option byte {other} (expected 0 or 1)"))),
        }
    }
    fn finish(self) -> DlnResult<()> {
        if self.pos != self.buf.len() {
            return Err(DlnError::corrupt(
                self.context,
                format!(
                    "{} trailing bytes after a complete message",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_OPEN: u8 = 1;
const REQ_STEP: u8 = 2;
const REQ_PATH: u8 = 3;
const REQ_CLOSE: u8 = 4;

fn enc_step_request(e: &mut Enc, req: &StepRequest) {
    match req.action {
        StepAction::Descend(StateId(s)) => {
            e.u8(0);
            e.u32(s);
        }
        StepAction::Backtrack => e.u8(1),
        StepAction::Reset => e.u8(2),
        StepAction::Stay => e.u8(3),
    }
    e.opt(&req.query, |e, q| {
        e.u32(q.len() as u32);
        for &v in q {
            e.f32_bits(v);
        }
    });
    e.opt(&req.deadline_ms, |e, &d| e.u64(d));
    e.boolean(req.list_tables);
}

fn dec_step_request(d: &mut Dec<'_>) -> DlnResult<StepRequest> {
    let action = match d.u8()? {
        0 => StepAction::Descend(StateId(d.u32()?)),
        1 => StepAction::Backtrack,
        2 => StepAction::Reset,
        3 => StepAction::Stay,
        other => return Err(d.corrupt(format!("unknown step action tag {other}"))),
    };
    let query = d.opt(|d| {
        let n = d.count(4)?;
        let mut q = Vec::with_capacity(n);
        for _ in 0..n {
            q.push(d.f32_bits()?);
        }
        Ok(q)
    })?;
    let deadline_ms = d.opt(|d| d.u64())?;
    let list_tables = d.boolean()?;
    Ok(StepRequest {
        action,
        query,
        deadline_ms,
        list_tables,
    })
}

/// Encode a `(seq, request)` envelope into a payload buffer.
pub fn encode_request(seq: u64, req: &ApiRequest) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    match req {
        ApiRequest::Ping => e.u8(REQ_PING),
        ApiRequest::Open { fault_key } => {
            e.u8(REQ_OPEN);
            e.u64(*fault_key);
        }
        ApiRequest::Step { session, req } => {
            e.u8(REQ_STEP);
            e.u64(session.0);
            enc_step_request(&mut e, req);
        }
        ApiRequest::Path { session } => {
            e.u8(REQ_PATH);
            e.u64(session.0);
        }
        ApiRequest::Close { session } => {
            e.u8(REQ_CLOSE);
            e.u64(session.0);
        }
    }
    e.buf
}

/// Decode a `(seq, request)` envelope from a frame payload.
pub fn decode_request(payload: &[u8], context: &str) -> DlnResult<(u64, ApiRequest)> {
    let mut d = Dec::new(payload, context);
    let seq = d.u64()?;
    let req = match d.u8()? {
        REQ_PING => ApiRequest::Ping,
        REQ_OPEN => ApiRequest::Open {
            fault_key: d.u64()?,
        },
        REQ_STEP => {
            let session = SessionId(d.u64()?);
            let req = dec_step_request(&mut d)?;
            ApiRequest::Step { session, req }
        }
        REQ_PATH => ApiRequest::Path {
            session: SessionId(d.u64()?),
        },
        REQ_CLOSE => ApiRequest::Close {
            session: SessionId(d.u64()?),
        },
        other => return Err(d.corrupt(format!("unknown request tag {other}"))),
    };
    d.finish()?;
    Ok((seq, req))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const RESP_PONG: u8 = 0;
const RESP_OPENED: u8 = 1;
const RESP_STEP: u8 = 2;
const RESP_PATH: u8 = 3;
const RESP_CLOSED: u8 = 4;
const RESP_ERROR: u8 = 5;

const ERR_OVERLOADED: u8 = 0;
const ERR_SESSION_LIMIT: u8 = 1;
const ERR_SESSION_NOT_FOUND: u8 = 2;
const ERR_SESSION_EXPIRED: u8 = 3;
const ERR_STALE: u8 = 4;
const ERR_NAV: u8 = 5;

fn enc_step_response(e: &mut Enc, r: &StepResponse) {
    e.u64(r.session.0);
    e.u64(r.epoch);
    e.u32(r.state.0);
    e.u64(r.depth as u64);
    e.str(&r.label);
    e.opt(&r.at_tag_state, |e, &t| e.u32(t));
    e.u32(r.children.len() as u32);
    for c in &r.children {
        e.u32(c.state.0);
        e.str(&c.label);
        e.opt(&c.prob, |e, &p| e.f64_bits(p));
    }
    e.u32(r.tables.len() as u32);
    for &(tid, n) in &r.tables {
        e.u32(tid.0);
        e.u64(n as u64);
    }
    e.boolean(r.degraded);
    match r.swap {
        SwapOutcome::Current => e.u8(0),
        SwapOutcome::Pinned { epoch } => {
            e.u8(1);
            e.u64(epoch);
        }
        SwapOutcome::Migrated {
            from_epoch,
            to_epoch,
            lost_depth,
        } => {
            e.u8(2);
            e.u64(from_epoch);
            e.u64(to_epoch);
            e.u64(lost_depth as u64);
        }
    }
}

fn dec_step_response(d: &mut Dec<'_>) -> DlnResult<StepResponse> {
    let session = SessionId(d.u64()?);
    let epoch = d.u64()?;
    let state = StateId(d.u32()?);
    let depth = d.u64()? as usize;
    let label = d.str()?;
    let at_tag_state = d.opt(|d| d.u32())?;
    let n_children = d.count(9)?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        let state = StateId(d.u32()?);
        let label = d.str()?;
        let prob = d.opt(|d| d.f64_bits())?;
        children.push(ChildView { state, label, prob });
    }
    let n_tables = d.count(12)?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let tid = TableId(d.u32()?);
        let n = d.u64()? as usize;
        tables.push((tid, n));
    }
    let degraded = d.boolean()?;
    let swap = match d.u8()? {
        0 => SwapOutcome::Current,
        1 => SwapOutcome::Pinned { epoch: d.u64()? },
        2 => SwapOutcome::Migrated {
            from_epoch: d.u64()?,
            to_epoch: d.u64()?,
            lost_depth: d.u64()? as usize,
        },
        other => return Err(d.corrupt(format!("unknown swap outcome tag {other}"))),
    };
    Ok(StepResponse {
        session,
        epoch,
        state,
        depth,
        label,
        at_tag_state,
        children,
        tables,
        degraded,
        swap,
    })
}

fn enc_wire_error(e: &mut Enc, err: &WireError) {
    match err {
        WireError::Overloaded { retry_after_ms } => {
            e.u8(ERR_OVERLOADED);
            e.u64(*retry_after_ms);
        }
        WireError::SessionLimit { capacity } => {
            e.u8(ERR_SESSION_LIMIT);
            e.u64(*capacity);
        }
        WireError::SessionNotFound { session } => {
            e.u8(ERR_SESSION_NOT_FOUND);
            e.u64(session.0);
        }
        WireError::SessionExpired { session, injected } => {
            e.u8(ERR_SESSION_EXPIRED);
            e.u64(session.0);
            e.boolean(*injected);
        }
        WireError::Stale {
            session_epoch,
            current_epoch,
        } => {
            e.u8(ERR_STALE);
            e.u64(*session_epoch);
            e.u64(*current_epoch);
        }
        WireError::Nav { message } => {
            e.u8(ERR_NAV);
            e.str(message);
        }
    }
}

fn dec_wire_error(d: &mut Dec<'_>) -> DlnResult<WireError> {
    Ok(match d.u8()? {
        ERR_OVERLOADED => WireError::Overloaded {
            retry_after_ms: d.u64()?,
        },
        ERR_SESSION_LIMIT => WireError::SessionLimit { capacity: d.u64()? },
        ERR_SESSION_NOT_FOUND => WireError::SessionNotFound {
            session: SessionId(d.u64()?),
        },
        ERR_SESSION_EXPIRED => WireError::SessionExpired {
            session: SessionId(d.u64()?),
            injected: d.boolean()?,
        },
        ERR_STALE => WireError::Stale {
            session_epoch: d.u64()?,
            current_epoch: d.u64()?,
        },
        ERR_NAV => WireError::Nav { message: d.str()? },
        other => return Err(d.corrupt(format!("unknown error tag {other}"))),
    })
}

/// Encode a `(seq, response)` envelope into a payload buffer.
pub fn encode_response(seq: u64, resp: &ApiResponse) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    match resp {
        ApiResponse::Pong => e.u8(RESP_PONG),
        ApiResponse::Opened { session } => {
            e.u8(RESP_OPENED);
            e.u64(session.0);
        }
        ApiResponse::Step(r) => {
            e.u8(RESP_STEP);
            enc_step_response(&mut e, r);
        }
        ApiResponse::Path { session, path } => {
            e.u8(RESP_PATH);
            e.u64(session.0);
            e.u32(path.len() as u32);
            for &StateId(s) in path {
                e.u32(s);
            }
        }
        ApiResponse::Closed { session } => {
            e.u8(RESP_CLOSED);
            e.u64(session.0);
        }
        ApiResponse::Error(err) => {
            e.u8(RESP_ERROR);
            enc_wire_error(&mut e, err);
        }
    }
    e.buf
}

/// Decode a `(seq, response)` envelope from a frame payload.
pub fn decode_response(payload: &[u8], context: &str) -> DlnResult<(u64, ApiResponse)> {
    let mut d = Dec::new(payload, context);
    let seq = d.u64()?;
    let resp = match d.u8()? {
        RESP_PONG => ApiResponse::Pong,
        RESP_OPENED => ApiResponse::Opened {
            session: SessionId(d.u64()?),
        },
        RESP_STEP => ApiResponse::Step(dec_step_response(&mut d)?),
        RESP_PATH => {
            let session = SessionId(d.u64()?);
            let n = d.count(4)?;
            let mut path = Vec::with_capacity(n);
            for _ in 0..n {
                path.push(StateId(d.u32()?));
            }
            ApiResponse::Path { session, path }
        }
        RESP_CLOSED => ApiResponse::Closed {
            session: SessionId(d.u64()?),
        },
        RESP_ERROR => ApiResponse::Error(dec_wire_error(&mut d)?),
        other => return Err(d.corrupt(format!("unknown response tag {other}"))),
    };
    d.finish()?;
    Ok((seq, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(payload, &mut out);
        out
    }

    #[test]
    fn frame_round_trip_and_partial_reads() {
        let buf = frame_of(b"hello wire");
        // Every strict prefix is Incomplete, never an error.
        for cut in 0..buf.len() {
            let out = try_decode_frame(&buf[..cut], MAX_FRAME_LEN, "t").expect("prefix is clean");
            assert!(out.is_none(), "prefix of {cut} bytes decoded a frame");
        }
        let (payload, consumed) = try_decode_frame(&buf, MAX_FRAME_LEN, "t")
            .expect("full frame")
            .expect("complete");
        assert_eq!(payload, b"hello wire");
        assert_eq!(consumed, buf.len());
        // Two frames back to back: the first decode leaves the second.
        let mut two = buf.clone();
        two.extend_from_slice(&frame_of(b"second"));
        let (p1, c1) = try_decode_frame(&two, MAX_FRAME_LEN, "t").unwrap().unwrap();
        assert_eq!(p1, b"hello wire");
        let (p2, _) = try_decode_frame(&two[c1..], MAX_FRAME_LEN, "t")
            .unwrap()
            .unwrap();
        assert_eq!(p2, b"second");
    }

    #[test]
    fn bad_magic_oversize_and_flips_are_typed_corrupt() {
        let buf = frame_of(b"payload");
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            try_decode_frame(&bad, MAX_FRAME_LEN, "t"),
            Err(DlnError::Corrupt { .. })
        ));
        // Oversized announced length is rejected before allocation.
        let mut big = buf.clone();
        big[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            try_decode_frame(&big, 1024, "t"),
            Err(DlnError::Corrupt { .. })
        ));
        // Every single-bit payload/checksum flip fails the checksum.
        for i in HEADER_LEN..buf.len() {
            let mut flip = buf.clone();
            flip[i] ^= 0x10;
            assert!(
                matches!(
                    try_decode_frame(&flip, MAX_FRAME_LEN, "t"),
                    Err(DlnError::Corrupt { .. })
                ),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn request_round_trip_every_variant() {
        let reqs = [
            ApiRequest::Ping,
            ApiRequest::Open { fault_key: 77 },
            ApiRequest::Step {
                session: SessionId(3),
                req: StepRequest {
                    action: StepAction::Descend(StateId(9)),
                    query: Some(vec![0.25, -1.5, f32::MIN_POSITIVE]),
                    deadline_ms: Some(17),
                    list_tables: true,
                },
            },
            ApiRequest::Step {
                session: SessionId(u64::MAX),
                req: StepRequest {
                    action: StepAction::Reset,
                    query: None,
                    deadline_ms: None,
                    list_tables: false,
                },
            },
            ApiRequest::Path {
                session: SessionId(5),
            },
            ApiRequest::Close {
                session: SessionId(6),
            },
        ];
        for (i, req) in reqs.iter().enumerate() {
            let payload = encode_request(i as u64, req);
            let (seq, back) = decode_request(&payload, "t").expect("round trip");
            assert_eq!(seq, i as u64);
            assert_eq!(format!("{back:?}"), format!("{req:?}"), "variant {i}");
        }
    }

    #[test]
    fn response_round_trip_preserves_float_bits() {
        let resp = ApiResponse::Step(StepResponse {
            session: SessionId(8),
            epoch: 3,
            state: StateId(11),
            depth: 2,
            label: "étiquette".to_string(),
            at_tag_state: Some(4),
            children: vec![
                ChildView {
                    state: StateId(12),
                    label: "a".into(),
                    prob: Some(0.1 + 0.2), // deliberately non-representable
                },
                ChildView {
                    state: StateId(13),
                    label: String::new(),
                    prob: None,
                },
            ],
            tables: vec![(TableId(0), 5), (TableId(9), 1)],
            degraded: true,
            swap: SwapOutcome::Migrated {
                from_epoch: 1,
                to_epoch: 3,
                lost_depth: 1,
            },
        });
        let payload = encode_response(42, &resp);
        let (seq, back) = decode_response(&payload, "t").expect("round trip");
        assert_eq!(seq, 42);
        let (ApiResponse::Step(a), ApiResponse::Step(b)) = (&resp, &back) else {
            panic!("variant changed");
        };
        assert_eq!(a.label, b.label);
        assert_eq!(a.children.len(), b.children.len());
        for (ca, cb) in a.children.iter().zip(&b.children) {
            assert_eq!(
                ca.prob.map(f64::to_bits),
                cb.prob.map(f64::to_bits),
                "probability bits must survive the wire"
            );
        }
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.swap, b.swap);

        // Every error variant survives too.
        let errors = [
            WireError::Overloaded { retry_after_ms: 9 },
            WireError::SessionLimit { capacity: 2 },
            WireError::SessionNotFound {
                session: SessionId(1),
            },
            WireError::SessionExpired {
                session: SessionId(2),
                injected: true,
            },
            WireError::Stale {
                session_epoch: 0,
                current_epoch: 4,
            },
            WireError::Nav {
                message: "not a child".into(),
            },
        ];
        for err in errors {
            let payload = encode_response(1, &ApiResponse::Error(err.clone()));
            let (_, back) = decode_response(&payload, "t").expect("round trip");
            let ApiResponse::Error(back) = back else {
                panic!("variant changed")
            };
            assert_eq!(back, err);
        }
    }

    #[test]
    fn adversarial_payloads_are_corrupt_never_panics_or_overallocation() {
        // Truncations of a valid request payload.
        let payload = encode_request(
            7,
            &ApiRequest::Step {
                session: SessionId(3),
                req: StepRequest {
                    action: StepAction::Stay,
                    query: Some(vec![1.0; 8]),
                    deadline_ms: Some(5),
                    list_tables: true,
                },
            },
        );
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut], "t").is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A huge announced count with a tiny payload must be refused by the
        // plausibility bound, not attempted as an allocation.
        let mut evil = Vec::new();
        evil.extend_from_slice(&0u64.to_le_bytes()); // seq
        evil.push(2); // REQ_STEP
        evil.extend_from_slice(&0u64.to_le_bytes()); // session
        evil.push(3); // Stay
        evil.push(1); // Some(query)
        evil.extend_from_slice(&u32::MAX.to_le_bytes()); // count = 4 billion
        assert!(matches!(
            decode_request(&evil, "t"),
            Err(DlnError::Corrupt { .. })
        ));
        // Unknown tags at every layer.
        for bad_tag in [200u8, 255] {
            let mut p = vec![0; 8];
            p.push(bad_tag);
            assert!(decode_request(&p, "t").is_err());
            assert!(decode_response(&p, "t").is_err());
        }
        // Trailing garbage after a complete message is refused.
        let mut padded = encode_request(1, &ApiRequest::Ping);
        padded.push(0);
        assert!(decode_request(&padded, "t").is_err());
    }

    #[test]
    fn random_bytes_never_panic() {
        // A cheap deterministic fuzz: feed pseudo-random byte soup to the
        // frame and payload decoders; everything must come back as a typed
        // result, nothing may panic.
        let mut x = 0x12345678u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..500 {
            let len = (next() % 96) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = try_decode_frame(&bytes, MAX_FRAME_LEN, "fuzz");
            let _ = decode_request(&bytes, "fuzz");
            let _ = decode_response(&bytes, "fuzz");
            // Also fuzz *inside* a valid frame so the payload decoders see
            // checksummed-but-meaningless bytes.
            let mut framed = Vec::new();
            encode_frame(&bytes, &mut framed);
            let decoded = try_decode_frame(&framed, MAX_FRAME_LEN, "fuzz")
                .expect("well-formed frame")
                .expect("complete");
            assert_eq!(decoded.0, &bytes[..], "round {round}");
        }
    }
}
