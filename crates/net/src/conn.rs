//! Per-connection state machine.
//!
//! Each accepted socket owns one [`Conn`], driven entirely by the reactor
//! thread (workers never touch the socket — they hand finished response
//! bytes back through the completion queue). The machine has four states:
//!
//! ```text
//!          frame complete                dispatch done
//!   Idle ──────────────► Dispatching ─────────────────► Writing
//!    ▲  ◄── Reading ◄──┘    (worker owns the request)      │
//!    │        partial                                       │ wbuf drained
//!    └──────────────────────────────────────────────────────┘
//! ```
//!
//! `Reading` is implicit: a conn with a non-empty read buffer and no
//! complete frame is idle-with-partial-input. Because the blocking client
//! sends one request and waits for the response, the machine admits at
//! most one in-flight dispatch per connection — bytes that arrive while
//! `Dispatching` stay buffered and are parsed only after the response is
//! written, which also bounds per-connection memory to one frame each way.

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use dln_fault::DlnResult;
use dln_serve::SessionId;

use crate::wire;

/// Lifecycle phase of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) a request frame.
    Idle,
    /// A complete request is with the worker pool; the socket is parked.
    Dispatching,
    /// A response is being flushed; more [`write_ready`](Conn::write_ready)
    /// calls drain `wbuf`.
    Writing,
}

/// What a readiness edge did to the connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Nothing actionable yet (partial frame, or `WouldBlock`).
    Incomplete,
    /// One complete, checksum-verified request payload.
    Frame(Vec<u8>),
    /// Peer closed cleanly (EOF with an empty buffer).
    Eof,
    /// Framing is unrecoverable (bad magic / oversize / checksum) or the
    /// socket errored; the conn must be torn down.
    Broken(dln_fault::DlnError),
}

/// One live client connection.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Lifecycle phase.
    pub state: ConnState,
    /// Bytes read but not yet parsed into a frame.
    rbuf: Vec<u8>,
    /// Encoded response being flushed, plus the flush offset.
    wbuf: Vec<u8>,
    woff: usize,
    /// Clock-ms of the last byte in or out (idle-TTL accounting).
    pub last_active_ms: u64,
    /// Sessions opened over this connection and not yet closed; graceful
    /// shutdown finalizes these into the navigation log.
    pub sessions: HashSet<SessionId>,
    /// Deterministic per-connection key for keyed failpoints.
    pub fault_key: u64,
    /// Set when the server decides to close after the current flush.
    pub close_after_write: bool,
}

impl Conn {
    /// Wrap a freshly accepted nonblocking stream.
    pub fn new(stream: TcpStream, now_ms: u64, fault_key: u64) -> Conn {
        Conn {
            stream,
            state: ConnState::Idle,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            last_active_ms: now_ms,
            sessions: HashSet::new(),
            fault_key,
            close_after_write: false,
        }
    }

    /// Drain the socket into `rbuf` and try to parse one frame.
    ///
    /// Call only in [`ConnState::Idle`]: while `Dispatching` or `Writing`
    /// the server leaves read readiness unconsumed (level-triggered
    /// polling re-reports it once the response is out).
    pub fn read_ready(&mut self, max_frame_len: u32, now_ms: u64) -> ReadOutcome {
        debug_assert_eq!(self.state, ConnState::Idle);
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF. Any buffered partial frame is a torn request the
                    // client never finished; drop it silently — the client
                    // treats its own connection loss as "resend after
                    // reconnect", so nothing is lost.
                    return ReadOutcome::Eof;
                }
                Ok(n) => {
                    self.last_active_ms = now_ms;
                    // Cap the read buffer at one max-size frame: a peer
                    // that streams garbage can cost at most the frame cap.
                    if self.rbuf.len() + n
                        > wire::HEADER_LEN + max_frame_len as usize + wire::TRAILER_LEN
                    {
                        return ReadOutcome::Broken(dln_fault::DlnError::corrupt(
                            "net conn",
                            "read buffer overflow without a complete frame",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return ReadOutcome::Broken(dln_fault::DlnError::io("net conn read", e)),
            }
        }
        self.try_frame(max_frame_len)
    }

    /// Attempt to cut one frame off the front of `rbuf`.
    fn try_frame(&mut self, max_frame_len: u32) -> ReadOutcome {
        match wire::try_decode_frame(&self.rbuf, max_frame_len, "net conn frame") {
            Ok(None) => ReadOutcome::Incomplete,
            Ok(Some((payload, consumed))) => {
                let frame = payload.to_vec();
                self.rbuf.drain(..consumed);
                ReadOutcome::Frame(frame)
            }
            Err(e) => ReadOutcome::Broken(e),
        }
    }

    /// Queue an already-framed response and enter [`ConnState::Writing`].
    pub fn queue_response(&mut self, framed: Vec<u8>) {
        debug_assert!(self.wbuf.len() == self.woff, "response queued over a flush");
        self.wbuf = framed;
        self.woff = 0;
        self.state = ConnState::Writing;
    }

    /// Flush as much of `wbuf` as the socket accepts.
    ///
    /// Returns `Ok(true)` when the buffer is fully drained (the conn
    /// returns to `Idle`), `Ok(false)` on a partial write (stay `Writing`,
    /// keep WRITE interest). `max_chunk` exists for the
    /// `net.write_partial` failpoint, which sets it to 1 to force the
    /// resumption path; normal operation passes `usize::MAX`.
    pub fn write_ready(&mut self, now_ms: u64, max_chunk: usize) -> DlnResult<bool> {
        while self.woff < self.wbuf.len() {
            let end = self
                .woff
                .saturating_add(max_chunk.max(1))
                .min(self.wbuf.len());
            match self.stream.write(&self.wbuf[self.woff..end]) {
                Ok(0) => {
                    return Err(dln_fault::DlnError::io(
                        "net conn write",
                        io::Error::new(io::ErrorKind::WriteZero, "peer stopped accepting bytes"),
                    ))
                }
                Ok(n) => {
                    self.woff += n;
                    self.last_active_ms = now_ms;
                    if max_chunk != usize::MAX {
                        // Failpoint mode: one tiny chunk per readiness edge
                        // so partial-write resumption actually exercises.
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(dln_fault::DlnError::io("net conn write", e)),
            }
        }
        if self.woff == self.wbuf.len() {
            self.wbuf.clear();
            self.woff = 0;
            self.state = ConnState::Idle;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// True when a response is queued but not fully flushed.
    pub fn has_pending_write(&self) -> bool {
        self.woff < self.wbuf.len()
    }

    /// Bytes currently buffered (both directions) — the per-conn memory
    /// the benchmark's resident-per-session number accounts.
    pub fn buffered_bytes(&self) -> usize {
        self.rbuf.capacity() + self.wbuf.capacity()
    }

    /// After a flush completes, parse any already-buffered next request
    /// (pipelined bytes that arrived during the dispatch).
    pub fn next_buffered_frame(&mut self, max_frame_len: u32) -> ReadOutcome {
        if self.rbuf.is_empty() {
            ReadOutcome::Incomplete
        } else {
            self.try_frame(max_frame_len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn frames_assemble_across_partial_reads() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 0, 1);
        let mut framed = Vec::new();
        wire::encode_frame(b"abcdefgh", &mut framed);
        // Send the frame one byte at a time; the conn must never error and
        // must produce exactly one frame at the end.
        let mut got = None;
        for (i, b) in framed.iter().enumerate() {
            client.write_all(&[*b]).expect("send byte");
            client.flush().expect("flush");
            // Give the kernel a moment to deliver.
            std::thread::sleep(std::time::Duration::from_millis(1));
            match conn.read_ready(wire::MAX_FRAME_LEN, i as u64) {
                ReadOutcome::Incomplete => {}
                ReadOutcome::Frame(f) => got = Some((i, f)),
                other => panic!("unexpected outcome at byte {i}: {other:?}"),
            }
        }
        let (at, frame) = got.expect("frame never completed");
        assert_eq!(at, framed.len() - 1);
        assert_eq!(frame, b"abcdefgh");
        assert_eq!(conn.state, ConnState::Idle);
    }

    #[test]
    fn partial_writes_resume_until_drained() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, 0, 1);
        let mut framed = Vec::new();
        wire::encode_frame(&vec![7u8; 300], &mut framed);
        let total = framed.len();
        conn.queue_response(framed);
        assert_eq!(conn.state, ConnState::Writing);
        // Failpoint-style 1-byte chunks: each call makes progress; the
        // buffer drains after exactly `total` calls.
        let mut calls = 0;
        while !conn.write_ready(calls, 1).expect("write") {
            calls += 1;
            assert!(calls < total as u64 + 10, "flush never completed");
        }
        assert_eq!(conn.state, ConnState::Idle);
        assert!(!conn.has_pending_write());
        // The peer received the whole frame intact.
        let mut rx = vec![0u8; total];
        let mut c = client;
        c.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .expect("timeout");
        c.read_exact(&mut rx).expect("receive");
        let (payload, _) = wire::try_decode_frame(&rx, wire::MAX_FRAME_LEN, "t")
            .expect("well-formed")
            .expect("complete");
        assert_eq!(payload, &vec![7u8; 300][..]);
    }

    #[test]
    fn garbage_input_breaks_the_conn_with_a_typed_error() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 0, 1);
        client.write_all(&[0xAA; 16]).expect("send garbage");
        client.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(5));
        match conn.read_ready(wire::MAX_FRAME_LEN, 1) {
            ReadOutcome::Broken(e) => {
                assert!(matches!(e, dln_fault::DlnError::Corrupt { .. }), "{e}")
            }
            other => panic!("expected Broken, got {other:?}"),
        }
    }
}
