//! The network server: one reactor thread multiplexing every connection
//! over epoll/kqueue, plus a small fixed worker pool that runs the actual
//! [`NavService::dispatch`] calls so a slow navigation step never blocks
//! the event loop.
//!
//! ## Division of labor
//!
//! The **reactor** owns every socket. It accepts, reads, frames, and
//! writes; it never executes a navigation step. A complete request frame
//! becomes a [`Job`] on the worker channel and the connection parks in
//! `Dispatching` (interest [`Interest::NONE`] — level-triggered polling
//! would otherwise spin on buffered bytes we refuse to parse mid-flight).
//!
//! **Workers** pull jobs, run `dispatch`, encode + frame the response, and
//! push the finished bytes onto the completion queue, then wake the
//! reactor through the self-pipe. Workers never touch a socket, so there
//! is no locking around connection state at all — the reactor is the sole
//! owner.
//!
//! ## Exactly-once steps
//!
//! Every envelope carries a client-chosen sequence number. The workers
//! keep a per-session cache of `(last seq, framed response)` and consult
//! it *before* dispatching: a resent `Step` (same session, same seq —
//! what the client does after a torn connection) returns the cached bytes
//! without re-applying the step. The cache entry is written **before**
//! the response is handed to the reactor, so even `net.conn_drop` (kill
//! the conn after dispatch, before the write) cannot lose a step: the
//! reconnecting client resends, hits the cache, and observes the
//! bit-identical response it would have gotten the first time.
//!
//! ## Backpressure, in layers
//!
//! 1. **Accept time**: past `max_conns`, the fresh socket gets a single
//!    `Overloaded{retry_after_ms}` frame and is closed — shed before any
//!    buffer, session, or gate resource is touched.
//! 2. **Admission gate**: an admitted connection's step still goes
//!    through [`NavService`]'s semaphore; a shed there comes back as the
//!    same first-class `Overloaded` wire frame, which the client's
//!    [`RetryPolicy`] already honors.
//! 3. **Idle TTL**: connections silent past `idle_ttl_ms` (by the
//!    injected [`Clock`], so tests drive it manually) are dropped; their
//!    sessions stay in the registry for the service's own TTL sweep, so a
//!    returning client can reconnect and continue the walk.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] stops accepting, drains in-flight dispatches,
//! flushes pending responses (bounded), then closes every connection's
//! sessions through [`NavService::close_session`] — finalizing their
//! walks into the [`NavigationLog`](dln_org::NavigationLog) so feedback
//! evidence survives the restart.

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dln_fault::{failpoints, DlnError, DlnResult};
use dln_serve::{ApiRequest, ApiResponse, Clock, NavService, SessionId, WireError};

use crate::conn::{Conn, ConnState, ReadOutcome};
use crate::poller::{Event, Interest, Poller, Waker};
use crate::wire;

/// Failpoint: drop a freshly accepted socket before registering it.
pub const FP_ACCEPT_FAIL: &str = "net.accept_fail";
/// Failpoint: discard a readiness worth of input and tear the conn down
/// (the client sees EOF mid-request and must reconnect + resend).
pub const FP_READ_TORN: &str = "net.read_torn";
/// Failpoint: flush responses one byte per readiness edge, forcing the
/// partial-write resumption path.
pub const FP_WRITE_PARTIAL: &str = "net.write_partial";
/// Failpoint: after a step is dispatched *and cached*, drop the conn
/// without writing the response (keyed on session⊕seq, so the retried
/// request — a cache hit — is deterministically allowed through).
pub const FP_CONN_DROP: &str = "net.conn_drop";

/// Tuning knobs for [`NetServer`]. Every field has an environment
/// override so deployments configure the front-end without code.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address (`DLN_LISTEN`, default `127.0.0.1:0` = ephemeral).
    pub addr: String,
    /// Connection cap; accepts past it are shed with an `Overloaded`
    /// frame (`DLN_NET_MAX_CONNS`, default 16384).
    pub max_conns: usize,
    /// Dispatch worker threads (`DLN_NET_WORKERS`, default 2).
    pub workers: usize,
    /// Idle connection TTL in clock-ms; 0 disables the sweep
    /// (`DLN_NET_IDLE_TTL_MS`, default 0).
    pub idle_ttl_ms: u64,
    /// Per-frame payload cap in bytes (default [`wire::MAX_FRAME_LEN`]).
    pub max_frame_len: u32,
    /// The retry hint attached to accept-time `Overloaded` sheds.
    pub shed_retry_after_ms: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 16384,
            workers: 2,
            idle_ttl_ms: 0,
            max_frame_len: wire::MAX_FRAME_LEN,
            shed_retry_after_ms: 50,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl NetConfig {
    /// Build a config from `DLN_LISTEN` / `DLN_NET_MAX_CONNS` /
    /// `DLN_NET_WORKERS` / `DLN_NET_IDLE_TTL_MS`, falling back to the
    /// defaults above for anything unset or unparseable.
    pub fn from_env() -> NetConfig {
        let d = NetConfig::default();
        NetConfig {
            addr: std::env::var("DLN_LISTEN").unwrap_or(d.addr),
            max_conns: env_parse("DLN_NET_MAX_CONNS", d.max_conns),
            workers: env_parse("DLN_NET_WORKERS", d.workers).max(1),
            idle_ttl_ms: env_parse("DLN_NET_IDLE_TTL_MS", d.idle_ttl_ms),
            max_frame_len: d.max_frame_len,
            shed_retry_after_ms: d.shed_retry_after_ms,
        }
    }
}

/// Counters the benchmark and tests read; all monotonic.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted and registered.
    pub accepted: AtomicU64,
    /// Accepts shed at the `max_conns` cap.
    pub shed_accepts: AtomicU64,
    /// Requests dispatched through the worker pool (cache hits included).
    pub requests: AtomicU64,
    /// Step retries answered from the exactly-once cache.
    pub dedup_hits: AtomicU64,
    /// Connections torn down by error, EOF, failpoint, or idle TTL.
    pub closed: AtomicU64,
    /// Connections reaped by the idle-TTL sweep specifically.
    pub idle_reaped: AtomicU64,
}

/// One request in flight from reactor to worker pool.
struct Job {
    token: u64,
    seq: u64,
    req: ApiRequest,
}

/// One finished dispatch on its way back to the reactor.
struct Completion {
    token: u64,
    /// Fully framed response bytes; `None` when `drop_conn` is set.
    framed: Option<Vec<u8>>,
    /// Session to start tracking on this conn (an `Opened` response).
    opened: Option<SessionId>,
    /// Session to stop tracking (a `Close` request, whatever its result).
    closed: Option<SessionId>,
    /// `net.conn_drop` fired: tear the conn down instead of responding.
    drop_conn: bool,
}

type Cache = Mutex<HashMap<u64, (u64, Vec<u8>)>>;

/// The running network front-end. Dropping it without calling
/// [`shutdown`](NetServer::shutdown) aborts the reactor without session
/// finalization — call `shutdown` for the graceful path.
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<NetStats>,
}

impl NetServer {
    /// Bind, spawn the reactor + worker pool, and start serving `svc`.
    pub fn start(
        svc: Arc<NavService>,
        config: NetConfig,
        clock: Arc<dyn Clock>,
    ) -> DlnResult<NetServer> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| DlnError::io(format!("net bind {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DlnError::io("net listener nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DlnError::io("net local_addr", e))?;

        let stop = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new()?);
        let stats = Arc::new(NetStats::default());
        let cache: Arc<Cache> = Arc::new(Mutex::new(HashMap::new()));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let svc = Arc::clone(&svc);
            let rx = Arc::clone(&job_rx);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dln-net-worker-{i}"))
                    .spawn(move || worker_loop(svc, rx, completions, waker, cache, stats))
                    .map_err(|e| DlnError::io("net spawn worker", e))?,
            );
        }

        let reactor = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            let stats = Arc::clone(&stats);
            let cache = Arc::clone(&cache);
            let completions = Arc::clone(&completions);
            let config = config.clone();
            std::thread::Builder::new()
                .name("dln-net-reactor".to_string())
                .spawn(move || {
                    let mut r = Reactor {
                        listener,
                        poller: match Poller::new() {
                            Ok(p) => p,
                            Err(_) => return, // no poller, no server
                        },
                        waker,
                        conns: HashMap::new(),
                        next_token: 2,
                        svc,
                        clock,
                        config,
                        stop,
                        stats,
                        cache,
                        completions,
                        job_tx,
                    };
                    r.run();
                })
                .map_err(|e| DlnError::io("net spawn reactor", e))?
        };

        Ok(NetServer {
            local_addr,
            stop,
            waker,
            reactor: Some(reactor),
            workers,
            stats,
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Serving counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, drain in-flight dispatches,
    /// flush pending responses, finalize every connection's sessions into
    /// the navigation log, then join the reactor and workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // The reactor dropped the job sender on exit; workers drain the
        // channel and stop.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    svc: Arc<NavService>,
    clock: Arc<dyn Clock>,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    cache: Arc<Cache>,
    completions: Arc<Mutex<Vec<Completion>>>,
    job_tx: Sender<Job>,
}

impl Reactor {
    fn run(&mut self) {
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
        if self
            .poller
            .register(self.waker.read_fd(), TOKEN_WAKER, Interest::READ)
            .is_err()
        {
            return;
        }

        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            // 100 ms cap so the idle sweep and stop flag are checked even
            // on a completely quiet socket set.
            if self.poller.wait(100, &mut events).is_err() {
                break;
            }
            let drained: Vec<Event> = std::mem::take(&mut events);
            for ev in drained {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.waker.drain();
                        self.apply_completions();
                    }
                    token => self.conn_ready(token, &ev),
                }
            }
            // Completions can land while we were busy with socket events.
            self.apply_completions();
            self.sweep_idle();
        }
        self.graceful_drain();
    }

    fn now(&self) -> u64 {
        self.clock.now()
    }

    // -- accept path ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if failpoints::should_fail(FP_ACCEPT_FAIL) {
            // Injected accept failure: the socket evaporates before the
            // client's first request; the client reconnects.
            self.stats.closed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.conns.len() >= self.config.max_conns {
            self.shed(stream);
            return;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns
            .insert(token, Conn::new(stream, self.now(), token));
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Over the connection cap: one `Overloaded` frame, then close. The
    /// socket is fresh (empty send buffer), so a best-effort blocking-ish
    /// write of a ~30-byte frame cannot meaningfully stall the reactor.
    fn shed(&mut self, mut stream: TcpStream) {
        self.stats.shed_accepts.fetch_add(1, Ordering::Relaxed);
        let resp = ApiResponse::Error(WireError::Overloaded {
            retry_after_ms: self.config.shed_retry_after_ms,
        });
        let payload = wire::encode_response(0, &resp);
        let mut framed = Vec::new();
        wire::encode_frame(&payload, &mut framed);
        let _ = stream.write_all(&framed);
    }

    // -- conn events ------------------------------------------------------

    fn conn_ready(&mut self, token: u64, ev: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // already torn down this tick
        };
        if ev.writable && conn.state == ConnState::Writing {
            self.flush(token);
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.readable && conn.state == ConnState::Idle {
            self.read(token);
        }
    }

    fn read(&mut self, token: u64) {
        let now = self.now();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if failpoints::should_fail(FP_READ_TORN) {
            // Injected torn read: the bytes are gone and so is the conn.
            // The client's recovery is reconnect + resend (the dedup cache
            // makes the resend exactly-once).
            self.teardown(token, false);
            return;
        }
        match conn.read_ready(self.config.max_frame_len, now) {
            ReadOutcome::Incomplete => {}
            ReadOutcome::Frame(payload) => self.dispatch_frame(token, payload),
            ReadOutcome::Eof => self.teardown(token, false),
            ReadOutcome::Broken(_e) => self.teardown(token, false),
        }
    }

    fn dispatch_frame(&mut self, token: u64, payload: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let (seq, req) = match wire::decode_request(&payload, "net request") {
            Ok(x) => x,
            Err(_) => {
                // Framing held but the payload is garbage: unrecoverable
                // for this conn (we cannot even answer with the right seq).
                self.teardown(token, false);
                return;
            }
        };
        conn.state = ConnState::Dispatching;
        // Park the descriptor: level-triggered READ on bytes we refuse to
        // parse mid-dispatch would spin the loop.
        let fd = conn.stream.as_raw_fd();
        let _ = self.poller.modify(fd, token, Interest::NONE);
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if self.job_tx.send(Job { token, seq, req }).is_err() {
            self.teardown(token, false);
        }
    }

    fn flush(&mut self, token: u64) {
        let now = self.now();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let chunk = if failpoints::should_fail(FP_WRITE_PARTIAL) {
            1
        } else {
            usize::MAX
        };
        match conn.write_ready(now, chunk) {
            Ok(true) => {
                let close = conn.close_after_write;
                let fd = conn.stream.as_raw_fd();
                if close {
                    self.teardown(token, false);
                    return;
                }
                let _ = self.poller.modify(fd, token, Interest::READ);
                // Pipelined bytes may already hold the next request.
                if let Some(conn) = self.conns.get_mut(&token) {
                    match conn.next_buffered_frame(self.config.max_frame_len) {
                        ReadOutcome::Frame(payload) => self.dispatch_frame(token, payload),
                        ReadOutcome::Broken(_) => self.teardown(token, false),
                        _ => {}
                    }
                }
            }
            Ok(false) => {
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.modify(fd, token, Interest::WRITE);
            }
            Err(_) => self.teardown(token, false),
        }
    }

    // -- completions from the worker pool ---------------------------------

    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut q = match self.completions.lock() {
                Ok(q) => q,
                Err(_) => return,
            };
            std::mem::take(&mut *q)
        };
        for c in batch {
            let Some(conn) = self.conns.get_mut(&c.token) else {
                // The conn died while its request was in flight (torn
                // read, idle reap). Session bookkeeping still applies to
                // nothing — the session itself lives in the registry and
                // will be reclaimed by the service TTL sweep.
                continue;
            };
            if let Some(sid) = c.opened {
                conn.sessions.insert(sid);
            }
            if let Some(sid) = c.closed {
                conn.sessions.remove(&sid);
            }
            if c.drop_conn {
                // net.conn_drop: the response exists in the dedup cache
                // but the conn dies before the write.
                self.teardown(c.token, false);
                continue;
            }
            if let Some(framed) = c.framed {
                conn.queue_response(framed);
                self.flush(c.token);
            }
        }
    }

    // -- lifecycle --------------------------------------------------------

    fn sweep_idle(&mut self) {
        if self.config.idle_ttl_ms == 0 {
            return;
        }
        let now = self.now();
        let ttl = self.config.idle_ttl_ms;
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.state == ConnState::Idle && now.saturating_sub(c.last_active_ms) > ttl
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
            self.teardown(token, false);
        }
    }

    /// Remove a connection. With `finalize`, close its sessions into the
    /// navigation log (graceful shutdown); without, sessions stay in the
    /// registry for the service TTL sweep — the contract that lets a
    /// client reconnect after a torn connection and continue its walk.
    fn teardown(&mut self, token: u64, finalize: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if finalize {
            for sid in &conn.sessions {
                let _ = self.svc.close_session(*sid);
                if let Ok(mut cache) = self.cache.lock() {
                    cache.remove(&sid.0);
                }
            }
        }
        self.stats.closed.fetch_add(1, Ordering::Relaxed);
        // Socket closes on drop.
    }

    /// The graceful path: no new accepts (loop already exited), drain
    /// in-flight dispatches, flush what can be flushed, finalize sessions.
    fn graceful_drain(&mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        // Bounded drain: wait for every Dispatching conn's completion.
        let mut spins = 0;
        while self
            .conns
            .values()
            .any(|c| c.state == ConnState::Dispatching)
            && spins < 600
        {
            let mut events = Vec::new();
            let _ = self.poller.wait(10, &mut events);
            self.waker.drain();
            self.apply_completions();
            spins += 1;
        }
        // Best-effort flush of pending responses.
        let now = self.now();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.has_pending_write() {
                    let _ = conn.write_ready(now, usize::MAX);
                }
            }
        }
        // Finalize every surviving connection's sessions.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.teardown(token, true);
        }
        // job_tx drops with self: workers see a closed channel and exit.
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(
    svc: Arc<NavService>,
    rx: Arc<Mutex<Receiver<Job>>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<Waker>,
    cache: Arc<Cache>,
    stats: Arc<NetStats>,
) {
    loop {
        let job = {
            let Ok(guard) = rx.lock() else { break };
            guard.recv()
        };
        let Ok(job) = job else { break };
        let completion = serve_one(&svc, &cache, &stats, job);
        if let Ok(mut q) = completions.lock() {
            q.push(completion);
        }
        waker.wake();
    }
}

fn serve_one(svc: &NavService, cache: &Cache, stats: &NetStats, job: Job) -> Completion {
    let mut completion = Completion {
        token: job.token,
        framed: None,
        opened: None,
        closed: None,
        drop_conn: false,
    };

    // Exactly-once: a resent Step (same session, same seq) replays the
    // cached response instead of re-applying the step.
    let step_session = match &job.req {
        ApiRequest::Step { session, .. } => Some(*session),
        _ => None,
    };
    if let Some(session) = step_session {
        if let Ok(cache) = cache.lock() {
            if let Some((seq, framed)) = cache.get(&session.0) {
                if *seq == job.seq {
                    stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    completion.framed = Some(framed.clone());
                    return completion;
                }
            }
        }
    }

    let resp = svc.dispatch(&job.req);

    // Session bookkeeping for graceful-shutdown finalization.
    match (&job.req, &resp) {
        (_, ApiResponse::Opened { session }) => completion.opened = Some(*session),
        (ApiRequest::Close { session }, _) => completion.closed = Some(*session),
        _ => {}
    }

    let payload = wire::encode_response(job.seq, &resp);
    let mut framed = Vec::new();
    wire::encode_frame(&payload, &mut framed);

    if let Some(session) = step_session {
        let gone = matches!(
            resp,
            ApiResponse::Error(WireError::SessionNotFound { .. })
                | ApiResponse::Error(WireError::SessionExpired { .. })
        );
        if let Ok(mut cache) = cache.lock() {
            if gone {
                cache.remove(&session.0);
            } else {
                // Store BEFORE the write attempt: this ordering is what
                // makes net.conn_drop recoverable without replaying.
                cache.insert(session.0, (job.seq, framed.clone()));
            }
        }
        // Keyed on (session ⊕ rotated seq): deterministic in the request
        // identity, independent of thread interleaving. Fires only on the
        // first application (a retry is a cache hit and returns above),
        // so a dropped conn cannot loop forever.
        if !gone && failpoints::should_fail_keyed(FP_CONN_DROP, session.0 ^ job.seq.rotate_left(32))
        {
            completion.drop_conn = true;
            return completion;
        }
    }
    if let (ApiRequest::Close { session }, ApiResponse::Closed { .. }) = (&job.req, &resp) {
        if let Ok(mut cache) = cache.lock() {
            cache.remove(&session.0);
        }
    }

    completion.framed = Some(framed);
    completion
}
