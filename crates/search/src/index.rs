//! Inverted index over a data lake: one document per table.

use std::collections::HashMap;

use dln_lake::{DataLake, TableId};

use crate::bm25::{idf, term_score, Bm25Params};
use crate::expansion::{ExpansionConfig, Expansions};

/// One search result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchHit {
    /// The matching table.
    pub table: TableId,
    /// BM25 score (query-expansion terms contribute with reduced weight).
    pub score: f32,
}

/// A posting: document and term frequency.
#[derive(Clone, Copy, Debug)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// A BM25 keyword-search engine over the tables of a data lake.
///
/// Indexed content per table: table name, tag labels, attribute names and
/// attribute values (the lake must have been built with stored values for
/// values to be searchable — the user-study lakes are).
pub struct KeywordSearch {
    params: Bm25Params,
    postings: HashMap<String, Vec<Posting>>,
    doc_len: Vec<u32>,
    avg_doc_len: f32,
    expansions: Option<Expansions>,
    /// Retained embedding model, so out-of-index (but embeddable) query
    /// terms can still be expanded — as GloVe allowed in the paper's
    /// engine.
    model: Option<std::sync::Arc<dyn dln_embed::EmbeddingModel>>,
}

impl KeywordSearch {
    /// Index `lake` without query expansion.
    pub fn build(lake: &DataLake) -> KeywordSearch {
        Self::build_inner(lake)
    }

    /// Index `lake` with embedding-based query expansion enabled.
    pub fn build_with_expansion<M: dln_embed::EmbeddingModel + 'static>(
        lake: &DataLake,
        model: M,
        cfg: ExpansionConfig,
    ) -> KeywordSearch {
        let mut engine = Self::build_inner(lake);
        let terms: Vec<&str> = engine.postings.keys().map(|s| s.as_str()).collect();
        engine.expansions = Some(Expansions::precompute(&terms, &model, cfg));
        engine.model = Some(std::sync::Arc::new(model));
        engine
    }

    fn build_inner(lake: &DataLake) -> KeywordSearch {
        let n_docs = lake.n_tables();
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_len = vec![0u32; n_docs];
        let mut freqs: HashMap<String, u32> = HashMap::new();
        for tid in lake.table_ids() {
            freqs.clear();
            let table = lake.table(tid);
            let push_text = |text: &str, freqs: &mut HashMap<String, u32>| {
                for tok in dln_embed::tokenize(text) {
                    *freqs.entry(tok).or_insert(0) += 1;
                }
            };
            push_text(&table.name, &mut freqs);
            for &tg in &table.tags {
                push_text(&lake.tag(tg).label, &mut freqs);
            }
            for &aid in &table.attrs {
                let a = lake.attr(aid);
                push_text(&a.name, &mut freqs);
                for v in &a.values {
                    push_text(v, &mut freqs);
                }
            }
            let mut len = 0u32;
            for (term, tf) in freqs.drain() {
                len += tf;
                postings
                    .entry(term)
                    .or_default()
                    .push(Posting { doc: tid.0, tf });
            }
            doc_len[tid.index()] = len;
        }
        let total: u64 = doc_len.iter().map(|&l| l as u64).sum();
        let avg_doc_len = if n_docs == 0 {
            0.0
        } else {
            total as f32 / n_docs as f32
        };
        KeywordSearch {
            params: Bm25Params::default(),
            postings,
            doc_len,
            avg_doc_len,
            expansions: None,
            model: None,
        }
    }

    /// Number of indexed documents (tables).
    pub fn n_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Number of distinct indexed terms.
    pub fn n_terms(&self) -> usize {
        self.postings.len()
    }

    /// Whether query expansion is available.
    pub fn has_expansion(&self) -> bool {
        self.expansions.is_some()
    }

    /// Set BM25 parameters.
    pub fn set_params(&mut self, params: Bm25Params) {
        self.params = params;
    }

    /// Search with expansion on (if available). See
    /// [`search_with_options`](Self::search_with_options).
    pub fn search(&self, query: &str, top_k: usize) -> Vec<SearchHit> {
        self.search_with_options(query, top_k, true)
    }

    /// BM25 search. Query terms are tokenized like documents; when `expand`
    /// is true and the engine was built with expansion, each embeddable
    /// query term also matches its nearest indexed terms with
    /// similarity-scaled weight ("users can optionally disable query
    /// expansion", §4.4).
    pub fn search_with_options(&self, query: &str, top_k: usize, expand: bool) -> Vec<SearchHit> {
        let mut terms: Vec<(String, f32)> = dln_embed::tokenize(query)
            .into_iter()
            .map(|t| (t, 1.0))
            .collect();
        if expand {
            if let Some(exp) = &self.expansions {
                let original: Vec<String> = terms.iter().map(|(t, _)| t.clone()).collect();
                for t in &original {
                    // Indexed terms expand from their stored vector;
                    // out-of-index terms go through the retained model.
                    let expanded = if self.postings.contains_key(t) {
                        exp.expand(t)
                    } else if let Some(v) = self.model.as_ref().and_then(|m| m.embed(t)) {
                        exp.expand_vector(&dln_embed::normalized(v))
                    } else {
                        Vec::new()
                    };
                    for (term, sim) in expanded {
                        if !terms.iter().any(|(existing, _)| existing == term) {
                            terms.push((term.clone(), sim));
                        }
                    }
                }
            }
        }
        let mut scores: HashMap<u32, f32> = HashMap::new();
        for (term, weight) in &terms {
            let Some(posts) = self.postings.get(term) else {
                continue;
            };
            let w_idf = idf(self.n_docs(), posts.len()) * weight;
            for p in posts {
                let s = w_idf
                    * term_score(
                        self.params,
                        p.tf as f32,
                        self.doc_len[p.doc as usize] as f32,
                        self.avg_doc_len,
                    );
                *scores.entry(p.doc).or_insert(0.0) += s;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit {
                table: TableId(doc),
                score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.table.0.cmp(&b.table.0))
        });
        hits.truncate(top_k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::{EmbeddingModel, SyntheticEmbedding, VocabularyConfig};
    use dln_lake::LakeBuilder;

    fn model() -> SyntheticEmbedding {
        SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 4,
            words_per_topic: 12,
            dim: 16,
            sigma: 0.3,
            seed: 21,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        })
    }

    fn lake_with(model: &SyntheticEmbedding) -> DataLake {
        let v = model.vocab();
        let w = |i: u32| v.word(dln_embed::TokenId(i)).to_string();
        let mut b = LakeBuilder::new(model.dim());
        let t0 = b.begin_table("fish inspections");
        b.add_tag(t0, "food safety");
        b.add_attribute(
            t0,
            "species",
            [w(0).as_str(), w(1).as_str(), w(2).as_str()],
            model,
        );
        let t1 = b.begin_table("city budget");
        b.add_tag(t1, "finance");
        b.add_attribute(t1, "department", [w(12).as_str(), w(13).as_str()], model);
        b.build()
    }

    #[test]
    fn finds_tables_by_value() {
        let m = model();
        let lake = lake_with(&m);
        let engine = KeywordSearch::build(&lake);
        let w0 = m.vocab().word(dln_embed::TokenId(0));
        let hits = engine.search(w0, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].table, TableId(0));
    }

    #[test]
    fn finds_tables_by_metadata() {
        let m = model();
        let lake = lake_with(&m);
        let engine = KeywordSearch::build(&lake);
        assert_eq!(engine.search("finance", 10)[0].table, TableId(1));
        assert_eq!(engine.search("safety", 10)[0].table, TableId(0));
        assert_eq!(engine.search("department", 10)[0].table, TableId(1));
        assert_eq!(engine.search("inspections", 10)[0].table, TableId(0));
    }

    #[test]
    fn unknown_terms_yield_nothing() {
        let m = model();
        let lake = lake_with(&m);
        let engine = KeywordSearch::build(&lake);
        assert!(engine.search("xylophone", 10).is_empty());
        assert!(engine.search("", 10).is_empty());
    }

    #[test]
    fn multi_term_queries_accumulate() {
        let m = model();
        let lake = lake_with(&m);
        let engine = KeywordSearch::build(&lake);
        let w0 = m.vocab().word(dln_embed::TokenId(0));
        let q = format!("{w0} species");
        let hits = engine.search(&q, 10);
        let single = engine.search(w0, 10);
        assert!(
            hits[0].score > single[0].score,
            "two matching terms score higher"
        );
    }

    #[test]
    fn top_k_truncates_in_score_order() {
        let m = model();
        let lake = lake_with(&m);
        let engine = KeywordSearch::build(&lake);
        // "fish" appears in a table name; the word tokens differ per table,
        // so search for a term hitting both docs: attribute names don't
        // overlap — use two terms.
        let hits = engine.search("species department", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn expansion_recalls_similar_value_terms() {
        let m = model();
        let lake = lake_with(&m);
        let engine =
            KeywordSearch::build_with_expansion(&lake, m.clone(), ExpansionConfig::default());
        assert!(engine.has_expansion());
        // Word 3 is in the same topic as indexed words 0..3 but is NOT in
        // the lake; expansion should still retrieve the fish table.
        let w3 = m.vocab().word(dln_embed::TokenId(3));
        assert!(m.embed(w3).is_some());
        let with = engine.search_with_options(w3, 10, true);
        let without = engine.search_with_options(w3, 10, false);
        assert!(without.is_empty(), "term absent from the index");
        assert!(!with.is_empty(), "expansion finds topical neighbours");
        assert_eq!(with[0].table, TableId(0));
    }

    #[test]
    fn expansion_does_not_cross_topics() {
        let m = model();
        let lake = lake_with(&m);
        let engine =
            KeywordSearch::build_with_expansion(&lake, m.clone(), ExpansionConfig::default());
        let w3 = m.vocab().word(dln_embed::TokenId(3));
        let hits = engine.search(w3, 10);
        assert!(
            hits.iter().all(|h| h.table == TableId(0)),
            "expansion of a topic-0 word must not hit the finance table"
        );
    }

    #[test]
    fn empty_lake_is_searchable() {
        let lake = LakeBuilder::new(8).build();
        let engine = KeywordSearch::build(&lake);
        assert_eq!(engine.n_docs(), 0);
        assert!(engine.search("anything", 5).is_empty());
    }
}
