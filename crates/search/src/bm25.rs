//! BM25 ranking (Robertson/Spärck Jones; the function Xapian implements
//! and the paper's engine used for "BM25 document search over metadata and
//! data in tables", §4.4).

/// BM25 free parameters.
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation (conventional default 1.2).
    pub k1: f32,
    /// Length normalization (conventional default 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// The (non-negative, "plus"-floored) BM25 inverse document frequency.
#[inline]
pub fn idf(n_docs: usize, doc_freq: usize) -> f32 {
    let n = n_docs as f32;
    let df = doc_freq as f32;
    ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
}

/// The per-document BM25 term score.
#[inline]
pub fn term_score(params: Bm25Params, tf: f32, doc_len: f32, avg_doc_len: f32) -> f32 {
    let denom = tf + params.k1 * (1.0 - params.b + params.b * doc_len / avg_doc_len.max(1e-9));
    tf * (params.k1 + 1.0) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_decreases_with_document_frequency() {
        assert!(idf(100, 1) > idf(100, 10));
        assert!(idf(100, 10) > idf(100, 90));
        assert!(idf(100, 100) > 0.0, "plus-floored IDF stays positive");
    }

    #[test]
    fn term_score_saturates_in_tf() {
        let p = Bm25Params::default();
        let s1 = term_score(p, 1.0, 100.0, 100.0);
        let s2 = term_score(p, 2.0, 100.0, 100.0);
        let s10 = term_score(p, 10.0, 100.0, 100.0);
        assert!(s2 > s1);
        assert!(s10 - s2 < (s2 - s1) * 9.0, "diminishing returns");
        assert!(s10 < p.k1 + 1.0 + 1e-6, "bounded by k1 + 1");
    }

    #[test]
    fn longer_documents_are_penalized() {
        let p = Bm25Params::default();
        let short = term_score(p, 2.0, 50.0, 100.0);
        let long = term_score(p, 2.0, 400.0, 100.0);
        assert!(short > long);
    }

    #[test]
    fn zero_tf_scores_zero() {
        assert_eq!(term_score(Bm25Params::default(), 0.0, 10.0, 10.0), 0.0);
    }
}
