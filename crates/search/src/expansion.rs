//! Embedding-based query expansion.
//!
//! The paper's engine uses GloVe vectors "to evaluate the similarity of
//! words and identify similar terms" (§4.4). Here, at index-build time the
//! embeddable indexed terms are collected with their vectors; at query time
//! each embeddable query term is expanded with its nearest indexed terms
//! above a similarity floor, weighted by that similarity.

use dln_embed::{dot, normalized, EmbeddingModel};

/// Expansion parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionConfig {
    /// Maximum expansion terms added per query term.
    pub k: usize,
    /// Minimum cosine similarity for an expansion term.
    pub min_sim: f32,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig { k: 5, min_sim: 0.6 }
    }
}

/// Precomputed expansion table: the embeddable indexed vocabulary.
pub struct Expansions {
    cfg: ExpansionConfig,
    terms: Vec<String>,
    /// Flattened unit vectors, parallel to `terms`.
    vectors: Vec<f32>,
    dim: usize,
    index: std::collections::HashMap<String, u32>,
}

impl Expansions {
    /// Collect the embeddable subset of `indexed_terms` with unit vectors.
    pub fn precompute<M: EmbeddingModel>(
        indexed_terms: &[&str],
        model: &M,
        cfg: ExpansionConfig,
    ) -> Expansions {
        let dim = model.dim();
        let mut terms = Vec::new();
        let mut vectors = Vec::new();
        let mut index = std::collections::HashMap::new();
        for &t in indexed_terms {
            if let Some(v) = model.embed(t) {
                index.insert(t.to_string(), terms.len() as u32);
                terms.push(t.to_string());
                vectors.extend(normalized(v));
            }
        }
        Expansions {
            cfg,
            terms,
            vectors,
            dim,
            index,
        }
    }

    /// Number of embeddable indexed terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no indexed term has an embedding.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.dim..(i + 1) * self.dim]
    }

    /// Expansion terms for `query_term`: up to `k` indexed terms with
    /// cosine ≥ `min_sim` (excluding the term itself), as
    /// `(term, similarity)` sorted by descending similarity.
    ///
    /// A query term that is itself indexed expands from its own vector;
    /// otherwise it expands only if some indexed term string-matches it —
    /// out-of-vocabulary terms cannot be embedded here because the model is
    /// not retained. The engine passes embeddable out-of-index query terms
    /// through [`Expansions::expand_vector`].
    pub fn expand(&self, query_term: &str) -> Vec<(&String, f32)> {
        match self.index.get(query_term) {
            Some(&i) => {
                let own = self.vector(i as usize).to_vec();
                self.expand_vector_excluding(&own, Some(query_term))
            }
            None => Vec::new(),
        }
    }

    /// Expansion terms for an arbitrary unit query vector.
    pub fn expand_vector(&self, unit_query: &[f32]) -> Vec<(&String, f32)> {
        self.expand_vector_excluding(unit_query, None)
    }

    fn expand_vector_excluding(
        &self,
        unit_query: &[f32],
        exclude: Option<&str>,
    ) -> Vec<(&String, f32)> {
        assert_eq!(unit_query.len(), self.dim, "query vector dim mismatch");
        let mut scored: Vec<(usize, f32)> = (0..self.terms.len())
            .filter(|&i| exclude != Some(self.terms[i].as_str()))
            .map(|i| (i, dot(self.vector(i), unit_query)))
            .filter(|&(_, s)| s >= self.cfg.min_sim)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.cfg.k);
        scored
            .into_iter()
            .map(|(i, s)| (&self.terms[i], s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::{SyntheticEmbedding, TokenId, VocabularyConfig};

    fn model() -> SyntheticEmbedding {
        SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 3,
            words_per_topic: 8,
            dim: 16,
            sigma: 0.3,
            seed: 31,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        })
    }

    #[test]
    fn expands_within_topic() {
        let m = model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let exp = Expansions::precompute(&refs, &m, ExpansionConfig { k: 4, min_sim: 0.5 });
        assert_eq!(exp.len(), words.len());
        let out = exp.expand(&words[0]);
        assert!(!out.is_empty());
        let t0 = m.vocab().topic_of(TokenId(0));
        for (term, sim) in &out {
            let id = m.vocab().id(term).unwrap();
            assert_eq!(m.vocab().topic_of(id), t0, "expansion crossed topics");
            assert!(*sim >= 0.5);
        }
        // Sorted descending.
        for w in out.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn does_not_expand_to_self() {
        let m = model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let exp = Expansions::precompute(&refs, &m, ExpansionConfig::default());
        let out = exp.expand(&words[3]);
        assert!(out.iter().all(|(t, _)| *t != &words[3]));
    }

    #[test]
    fn unknown_term_expands_to_nothing() {
        let m = model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let exp = Expansions::precompute(&refs, &m, ExpansionConfig::default());
        assert!(exp.expand("nonexistent").is_empty());
    }

    #[test]
    fn respects_k_and_threshold() {
        let m = model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let exp = Expansions::precompute(&refs, &m, ExpansionConfig { k: 2, min_sim: 0.0 });
        assert_eq!(exp.expand(&words[0]).len(), 2);
        let strict = Expansions::precompute(
            &refs,
            &m,
            ExpansionConfig {
                k: 10,
                min_sim: 0.9999,
            },
        );
        assert!(strict.expand(&words[0]).len() <= 10);
    }

    #[test]
    fn non_embeddable_terms_are_skipped() {
        let m = model();
        let exp = Expansions::precompute(&["zzz", "qqq"], &m, ExpansionConfig::default());
        assert!(exp.is_empty());
    }
}
