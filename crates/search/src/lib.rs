//! Keyword-search substrate — the comparator of the paper's user study.
//!
//! §4.4: "we created a semantic search engine that supports keyword search
//! over attribute values and table metadata (including attribute names and
//! table tags). We use pretrained GloVe word vectors to evaluate the
//! similarity of words and identify similar terms. The search engine uses
//! the Xapian library to perform keyword search and supports BM25 document
//! search over metadata and data in tables. Users can optionally disable
//! query expansion."
//!
//! This crate is the from-scratch equivalent: one document per table
//! (name + tags + attribute names + attribute values), a classic inverted
//! index with BM25 ranking, and optional query expansion through an
//! [`dln_embed::EmbeddingModel`] (expansion terms are indexed terms whose
//! embedding is close to a query term's, added with similarity-scaled
//! weight).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bm25;
pub mod expansion;
pub mod index;

pub use bm25::Bm25Params;
pub use expansion::ExpansionConfig;
pub use index::{KeywordSearch, SearchHit};
