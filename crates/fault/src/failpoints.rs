//! Deterministic, env-gated failpoints.
//!
//! A *failpoint* is a named site in production code that can be made to
//! fail artificially. Sites are armed through the `DLN_FAILPOINTS`
//! environment variable:
//!
//! ```text
//! DLN_FAILPOINTS=ingest.read:0.2:7,checkpoint.torn:1.0:0
//! ```
//!
//! Each entry is `name:probability:seed`. On the `n`-th hit of a site, a
//! uniform draw is taken from a SplitMix64 stream indexed by `(seed, n)`
//! and the site fails when the draw is below `probability` — so a given
//! configuration produces the *same* fault schedule in every run, which is
//! what lets the bit-exactness property tests assert that a faulted
//! pipeline still matches the fault-free result.
//!
//! With nothing configured, [`should_fail`] is a single relaxed atomic
//! load — cheap enough to leave in release hot paths.
//!
//! Tests arm failpoints programmatically with [`scoped`], which serializes
//! concurrent scoped users on a global lock and restores the previous
//! configuration (usually the environment's) on drop.
//!
//! Failpoint catalog (see DESIGN.md §5c):
//!
//! | site                 | effect when it fires                                  |
//! |----------------------|-------------------------------------------------------|
//! | `ingest.read`        | a CSV file read is treated as an IO error → quarantine |
//! | `checkpoint.torn`    | a checkpoint write is truncated mid-buffer (torn write)|
//! | `search.spec_panic`  | a speculative draft evaluation panics on its worker    |
//! | `search.kill`        | the search stops at a round boundary (simulated crash) |
//! | `serve.slow`         | a navigation request is charged a deadline-blowing     |
//! |                      | virtual delay → the response degrades to cached labels |
//! | `serve.drop_session` | the serving layer loses a session mid-step (typed      |
//! |                      | `SessionExpired { injected: true }` to the client)     |
//! | `serve.swap_race`    | a step yields mid-request to widen the snapshot        |
//! |                      | hot-swap race window, then re-resolves its epoch       |
//! | `reopt.log_torn`     | an evidence-log WAL append is truncated mid-frame and  |
//! |                      | reported as an error (the drain is not acknowledged)   |
//! | `reopt.crash_mid_cycle` | the optimizer aborts right after durably committing |
//! |                      | a planned cycle, before any search work               |
//! | `reopt.crash_mid_publish` | the optimizer aborts after the shard search and   |
//! |                      | graft complete, before the snapshot is published       |
//! | `reopt.search_kill`  | the optimizer aborts between deadline-bounded search   |
//! |                      | slices (the checkpoint on disk is the restart point)   |
//! | `store.torn`         | an organization-store write is truncated mid-buffer    |
//! | `store.mmap`         | the store's mmap open fails → heap-buffer fallback     |
//! | `churn.log_torn`     | a CDC change-log append is truncated mid-frame and     |
//! |                      | reported as an error (the ingest is not acknowledged)  |
//! | `churn.crash_mid_plan` | the maintainer aborts right after durably committing |
//! |                      | a maintenance plan, before any mutation                |
//! | `churn.crash_mid_apply` | the maintainer aborts after the rebase and donor    |
//! |                      | sheds, before any shard re-search                      |
//! | `churn.search_kill`  | the maintainer aborts between per-shard search slices  |
//! |                      | (the per-shard checkpoint on disk is the restart point)|
//! | `churn.crash_mid_publish` | the maintainer aborts after validating the next   |
//! |                      | organization, before staging the shard-scoped publish  |
//! | `net.accept_fail`    | a freshly accepted connection is dropped before it is  |
//! |                      | registered (the client reconnects)                     |
//! | `net.read_torn`      | a readiness worth of input is discarded and the        |
//! |                      | connection torn down mid-request (client resends)      |
//! | `net.write_partial`  | responses flush one byte per readiness edge, forcing   |
//! |                      | the partial-write resumption path                      |
//! | `net.conn_drop`      | the connection dies after a step is dispatched and     |
//! |                      | cached but before the response writes (exactly-once    |
//! |                      | replay on the client's resend)                         |
//!
//! The consolidated catalog — every site, the phase it guards, and the
//! test binary exercising it — lives in the README's fault-tolerance
//! section.
//!
//! The `serve.*` sites and `net.conn_drop` use [`should_fail_keyed`]: the
//! fire decision is a pure function of `(armed seed, caller key)`,
//! independent of the global hit counter, so concurrent sessions see the
//! same fault schedule no matter how the scheduler interleaves them
//! (`net.conn_drop` keys on the request identity `session ⊕ seq`, which
//! is also what guarantees a client's retried request — a dedup-cache hit
//! that skips the failpoint — terminates the fault loop).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

use crate::error::DlnError;

/// Panic payload prefix used by [`maybe_panic`], so hooks and tests can
/// tell injected panics from real ones.
pub const INJECTED_PANIC_MARKER: &str = "dln-fault injected panic";

#[derive(Clone, Debug)]
struct Site {
    name: String,
    prob: f64,
    seed: u64,
    hits: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();

fn state() -> &'static Mutex<Vec<Site>> {
    static STATE: OnceLock<Mutex<Vec<Site>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(Vec::new()))
}

fn scope_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking failpoint test must not poison the harness for everyone
    // else; the guarded data is always left consistent.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn init_from_env() {
    INIT.call_once(|| {
        let spec = std::env::var("DLN_FAILPOINTS").unwrap_or_default();
        match parse_spec(&spec) {
            Ok(sites) => {
                install(sites);
            }
            Err(e) => eprintln!("warning: ignoring DLN_FAILPOINTS: {e}"),
        }
    });
}

fn install(sites: Vec<Site>) -> Vec<Site> {
    let mut st = lock(state());
    ACTIVE.store(!sites.is_empty(), Ordering::Relaxed);
    std::mem::replace(&mut *st, sites)
}

fn parse_spec(spec: &str) -> Result<Vec<Site>, DlnError> {
    let mut sites = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let mut parts = entry.split(':');
        let (Some(name), Some(prob), Some(seed), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(DlnError::InvalidConfig(format!(
                "failpoint entry `{entry}` is not name:prob:seed"
            )));
        };
        let prob: f64 = prob.parse().map_err(|_| {
            DlnError::InvalidConfig(format!("failpoint `{name}`: bad probability `{prob}`"))
        })?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(DlnError::InvalidConfig(format!(
                "failpoint `{name}`: probability {prob} outside [0, 1]"
            )));
        }
        let seed: u64 = seed.parse().map_err(|_| {
            DlnError::InvalidConfig(format!("failpoint `{name}`: bad seed `{seed}`"))
        })?;
        sites.push(Site {
            name: name.to_string(),
            prob,
            seed,
            hits: 0,
        });
    }
    Ok(sites)
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Should the failpoint `site` fire on this hit?
///
/// Unarmed sites (the normal case) cost one relaxed atomic load. Armed
/// sites draw from their deterministic `(seed, hit-counter)` stream.
pub fn should_fail(site: &str) -> bool {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let mut st = lock(state());
    let Some(s) = st.iter_mut().find(|s| s.name == site) else {
        return false;
    };
    s.hits += 1;
    if s.prob >= 1.0 {
        return true;
    }
    let draw = splitmix64(s.seed ^ s.hits.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < s.prob
}

/// Keyed variant of [`should_fail`]: the decision for `(site, key)` is a
/// pure function of the armed `(probability, seed)` and the caller's `key`
/// — the global hit counter is neither read nor advanced.
///
/// This is the right form for concurrent callers: with [`should_fail`],
/// which hit of a site fires depends on the order threads reach it, so a
/// fault schedule observed under one interleaving is not reproducible
/// under another. A keyed site fires for exactly the same keys in every
/// run and under every interleaving, which is what lets the serving
/// layer's chaos tests demand bit-equal per-session counters from serial
/// and concurrent executions. Callers key by something session-local,
/// e.g. `session_seed ⊕ step_index`.
pub fn should_fail_keyed(site: &str, key: u64) -> bool {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let st = lock(state());
    let Some(s) = st.iter().find(|s| s.name == site) else {
        return false;
    };
    if s.prob >= 1.0 {
        return true;
    }
    let draw = splitmix64(s.seed ^ key.wrapping_mul(0xD134_2543_DE82_EF95));
    ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < s.prob
}

/// Is the failpoint `site` armed at all (at any probability)?
///
/// Lets code skip fault-only bookkeeping entirely in the unarmed case.
pub fn is_armed(site: &str) -> bool {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    lock(state()).iter().any(|s| s.name == site)
}

/// Panic with the injected-panic marker when `site` fires. Used by the
/// speculative-worker failpoint; the search catches the unwind and
/// degrades the round.
pub fn maybe_panic(site: &str) {
    if should_fail(site) {
        silence_injected_panics();
        panic!("{INJECTED_PANIC_MARKER} at {site}");
    }
}

/// Install (once) a panic hook that swallows the default report for
/// *injected* panics — they are expected and caught — while delegating
/// every real panic to the previous hook unchanged.
pub fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC_MARKER));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A scoped failpoint configuration: holds the global scope lock (so
/// concurrent scoped users — e.g. parallel tests — serialize) and restores
/// the previous configuration when dropped.
pub struct ScopedFailpoints {
    _scope: MutexGuard<'static, ()>,
    prev: Option<Vec<Site>>,
}

/// Arm the failpoints in `spec` (same grammar as `DLN_FAILPOINTS`; the
/// empty string disarms everything) for the lifetime of the returned
/// guard. Hit counters start at zero, so scoped schedules are reproducible
/// regardless of what ran before.
pub fn scoped(spec: &str) -> Result<ScopedFailpoints, DlnError> {
    init_from_env();
    let sites = parse_spec(spec)?;
    let guard = lock(scope_lock());
    let prev = install(sites);
    Ok(ScopedFailpoints {
        _scope: guard,
        prev: Some(prev),
    })
}

impl Drop for ScopedFailpoints {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            install(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fail() {
        let _guard = scoped("").expect("empty spec parses");
        for _ in 0..100 {
            assert!(!should_fail("nonexistent.site"));
        }
        assert!(!is_armed("nonexistent.site"));
    }

    #[test]
    fn probability_one_always_fires() {
        let _guard = scoped("a.site:1.0:3").unwrap();
        assert!(is_armed("a.site"));
        for _ in 0..20 {
            assert!(should_fail("a.site"));
        }
        assert!(!should_fail("other.site"));
    }

    #[test]
    fn probability_zero_never_fires() {
        let _guard = scoped("a.site:0.0:3").unwrap();
        assert!(is_armed("a.site"));
        for _ in 0..20 {
            assert!(!should_fail("a.site"));
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_dependent() {
        let schedule = |seed: u64| -> Vec<bool> {
            let _guard = scoped(&format!("s.x:0.5:{seed}")).unwrap();
            (0..64).map(|_| should_fail("s.x")).collect()
        };
        let a = schedule(7);
        let b = schedule(7);
        assert_eq!(a, b, "same seed, same schedule");
        let c = schedule(8);
        assert_ne!(a, c, "different seed, different schedule");
        let fires = a.iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fires), "p=0.5 fires ~half: {fires}");
    }

    #[test]
    fn scoped_restores_previous_configuration() {
        {
            let _outer = scoped("outer.site:1.0:1").unwrap();
            assert!(should_fail("outer.site"));
        }
        // After the guard drops, the site is gone.
        assert!(!is_armed("outer.site"));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(scoped("noprob").is_err());
        assert!(scoped("a:1.5:0").is_err());
        assert!(scoped("a:x:0").is_err());
        assert!(scoped("a:0.5:notanumber").is_err());
        assert!(scoped("a:0.5:1:extra").is_err());
    }

    #[test]
    fn keyed_draws_ignore_hit_order_and_differ_by_key() {
        let _guard = scoped("k.site:0.5:9").unwrap();
        // Same key, same answer, regardless of how many unkeyed hits (or
        // other keys) happened in between.
        let first: Vec<bool> = (0..64).map(|k| should_fail_keyed("k.site", k)).collect();
        for _ in 0..10 {
            should_fail("k.site"); // churn the hit counter
        }
        let second: Vec<bool> = (0..64).map(|k| should_fail_keyed("k.site", k)).collect();
        let reversed: Vec<bool> = (0..64)
            .rev()
            .map(|k| should_fail_keyed("k.site", k))
            .collect();
        assert_eq!(first, second, "keyed draws are hit-counter independent");
        let mut rev = reversed;
        rev.reverse();
        assert_eq!(first, rev, "keyed draws are call-order independent");
        let fires = first.iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fires), "p=0.5 fires ~half: {fires}");
    }

    #[test]
    fn keyed_respects_arming_and_extremes() {
        {
            let _guard = scoped("").unwrap();
            assert!(!should_fail_keyed("k.site", 3));
        }
        let _guard = scoped("a.site:1.0:0,b.site:0.0:0").unwrap();
        assert!(should_fail_keyed("a.site", 7));
        assert!(!should_fail_keyed("b.site", 7));
        assert!(!should_fail_keyed("unarmed.site", 7));
    }

    #[test]
    fn maybe_panic_panics_with_marker() {
        let _guard = scoped("p.site:1.0:0").unwrap();
        let err = std::panic::catch_unwind(|| maybe_panic("p.site")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains(INJECTED_PANIC_MARKER));
    }
}
