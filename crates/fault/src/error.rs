//! The workspace-wide error taxonomy.
//!
//! Hand-rolled (no `thiserror`/`anyhow` — the build environment has no
//! crate registry) and deliberately small: seven categories cover every
//! recoverable failure the pipeline produces. Fatal programming errors
//! (index bugs, violated invariants) stay as panics; `DlnError` is for
//! conditions a caller can meaningfully react to — quarantine an input,
//! fall back to a previous checkpoint, reject a configuration.

/// Convenience alias used across the workspace.
pub type DlnResult<T> = Result<T, DlnError>;

/// Every recoverable error the data-lake navigation pipeline can raise.
#[derive(Debug)]
pub enum DlnError {
    /// An IO operation failed (file read/write, directory listing).
    Io {
        /// What was being done, usually including the path.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An input file or stream is structurally malformed (unbalanced CSV
    /// quotes, a `.vec` file with no parseable rows, a truncated record).
    Malformed {
        /// Which input, usually a path or stream description.
        context: String,
        /// What exactly is wrong with it.
        detail: String,
    },
    /// A user-supplied configuration value is out of its legal domain
    /// (negative Zipf exponent, empty support, bad failpoint spec).
    InvalidConfig(String),
    /// Vector dimensionalities disagree (a `.vec` row against the file's
    /// header, an embedding model against a lake).
    DimMismatch {
        /// Where the mismatch was detected.
        context: String,
        /// The dimensionality required there.
        expected: usize,
        /// The dimensionality actually seen.
        got: usize,
    },
    /// A numeric input that must be finite is NaN or infinite.
    NonFinite {
        /// Where the non-finite value was detected.
        context: String,
    },
    /// A persisted artifact failed its integrity check (bad magic, version,
    /// or checksum on a checkpoint; torn write detected).
    Corrupt {
        /// Which artifact, usually a path.
        context: String,
        /// What the integrity check found.
        detail: String,
    },
    /// A navigation request is not legal from the requester's current
    /// position (descending into a state that is not a child of the
    /// current one, referencing a tombstoned state, …). Recoverable: the
    /// navigator/serving session stays where it was and the caller can
    /// pick another move.
    InvalidNavigation {
        /// What was attempted and why it is illegal.
        context: String,
    },
}

impl DlnError {
    /// Wrap an [`std::io::Error`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> DlnError {
        DlnError::Io {
            context: context.into(),
            source,
        }
    }

    /// A malformed-input error with context and detail.
    pub fn malformed(context: impl Into<String>, detail: impl Into<String>) -> DlnError {
        DlnError::Malformed {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// A corrupt-artifact error with context and detail.
    pub fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> DlnError {
        DlnError::Corrupt {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// An invalid-navigation error with context.
    pub fn invalid_navigation(context: impl Into<String>) -> DlnError {
        DlnError::InvalidNavigation {
            context: context.into(),
        }
    }
}

impl std::fmt::Display for DlnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DlnError::Io { context, source } => write!(f, "io error: {context}: {source}"),
            DlnError::Malformed { context, detail } => {
                write!(f, "malformed input: {context}: {detail}")
            }
            DlnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DlnError::DimMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch: {context}: expected {expected}, got {got}"
            ),
            DlnError::NonFinite { context } => write!(f, "non-finite value: {context}"),
            DlnError::Corrupt { context, detail } => {
                write!(f, "corrupt artifact: {context}: {detail}")
            }
            DlnError::InvalidNavigation { context } => {
                write!(f, "invalid navigation: {context}")
            }
        }
    }
}

impl std::error::Error for DlnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DlnError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<DlnError> for std::io::Error {
    /// Lossy downgrade for callers that still speak `io::Result` (kept for
    /// pre-robustness-layer API compatibility).
    fn from(e: DlnError) -> std::io::Error {
        match e {
            DlnError::Io { source, .. } => source,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(DlnError, &str)> = vec![
            (
                DlnError::io("reading x.csv", std::io::Error::other("boom")),
                "io error",
            ),
            (
                DlnError::malformed("x.csv", "unbalanced quote"),
                "malformed input",
            ),
            (
                DlnError::InvalidConfig("zipf exponent -1".into()),
                "invalid configuration",
            ),
            (
                DlnError::DimMismatch {
                    context: "row 7".into(),
                    expected: 4,
                    got: 3,
                },
                "expected 4, got 3",
            ),
            (
                DlnError::NonFinite {
                    context: "vector for 'foo'".into(),
                },
                "non-finite",
            ),
            (
                DlnError::corrupt("ckpt", "checksum mismatch"),
                "corrupt artifact",
            ),
            (
                DlnError::invalid_navigation("state 7 is not a child of state 3"),
                "invalid navigation",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_variant_exposes_source() {
        use std::error::Error as _;
        let e = DlnError::io("ctx", std::io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(DlnError::InvalidConfig("x".into()).source().is_none());
    }

    #[test]
    fn downgrade_to_io_error_preserves_message() {
        let io: std::io::Error = DlnError::malformed("f", "bad").into();
        assert!(io.to_string().contains("bad"));
        let io2: std::io::Error = DlnError::io("ctx", std::io::Error::other("orig")).into();
        assert!(io2.to_string().contains("orig"));
    }
}
