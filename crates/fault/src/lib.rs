//! Robustness substrate for the data-lake navigation workspace.
//!
//! Two halves, both dependency-free:
//!
//! * [`error`] — the workspace-wide [`DlnError`] taxonomy. Every crate that
//!   can fail recoverably (ingest IO, `.vec` parsing, checkpoint loading,
//!   generator configuration) speaks this one type, so callers get a single
//!   `match` surface instead of a zoo of per-crate error enums.
//! * [`failpoints`] — a deterministic fault-injection harness gated by the
//!   `DLN_FAILPOINTS` environment variable (`name:prob:seed`, comma
//!   separated). Production code asks [`should_fail`] at its injection
//!   sites; with no configuration the check is one relaxed atomic load.
//!   Faults are drawn from a per-site counter-indexed SplitMix64 stream, so
//!   a given `(site, prob, seed)` configuration fails on exactly the same
//!   hits in every run — fault schedules are reproducible by construction.
//!
//! See DESIGN.md §5c for the failpoint catalog and the determinism
//! argument, and the README "Fault tolerance" section for the knobs.

#![warn(missing_docs)]

pub mod error;
pub mod failpoints;

pub use error::{DlnError, DlnResult};
pub use failpoints::{
    is_armed, maybe_panic, scoped, should_fail, should_fail_keyed, ScopedFailpoints,
};
