//! Simulated study participants.
//!
//! Each participant has a private *scenario* — an information need like the
//! paper's "smart city" / "clinical research" overview scenarios — modelled
//! as a topic vector, plus a personal relevance bar with noise. Two agent
//! types drive the two interfaces of §4.4:
//!
//! * [`NavigationAgent`] walks the organization prototype: at every state
//!   it samples a child according to the transition model (Eq 1) — the
//!   same assumption the paper's navigation model makes about users — with
//!   occasional backtracking; at tag states it examines the tables behind
//!   the tag and collects those it deems relevant. Each UI action (step,
//!   backtrack, examine) spends budget, standing in for the study's
//!   20-minute wall clock.
//! * [`SearchAgent`] uses the keyword-search engine: it composes queries
//!   from the vocabulary words closest to its scenario topic (real
//!   participants "used very similar keywords"), examines the top hits,
//!   and collects relevant ones.

use std::collections::BTreeSet;

use dln_embed::{dot, normalized, SyntheticEmbedding, TopicAccumulator};
use dln_lake::{DataLake, TableId, TagId};
use dln_org::builder::BuiltOrganization;
use dln_org::Navigator;
use dln_search::KeywordSearch;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An information-need scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label ("smart city", "clinical research", ...).
    pub label: String,
    /// Unit topic vector of the need.
    pub unit_topic: Vec<f32>,
    /// Ground-truth relevant tables (the paper's collaborator
    /// verification): tables whose best attribute cosine to the scenario
    /// is at least the relevance threshold.
    pub relevant: BTreeSet<TableId>,
    /// The threshold used for the ground truth.
    pub threshold: f32,
}

impl Scenario {
    /// Build a scenario whose topic is the mean of a set of related tags —
    /// an *overview* need spanning several facets, like the paper's
    /// scenarios (smart-city participants variously found traffic, crime,
    /// and energy tables).
    pub fn from_tags(lake: &DataLake, label: &str, tags: &[TagId], threshold: f32) -> Scenario {
        assert!(!tags.is_empty(), "scenario needs at least one tag");
        let mut acc = TopicAccumulator::new(lake.dim());
        for &t in tags {
            let tag = lake.tag(t);
            if !tag.topic.is_empty() {
                acc.add(&tag.unit_topic);
            }
        }
        let unit_topic = normalized(&acc.mean());
        let relevant = Self::ground_truth(lake, &unit_topic, threshold);
        Scenario {
            label: label.to_string(),
            unit_topic,
            relevant,
            threshold,
        }
    }

    /// Tables whose best attribute cosine to `unit` is ≥ `threshold`.
    pub fn ground_truth(lake: &DataLake, unit: &[f32], threshold: f32) -> BTreeSet<TableId> {
        lake.table_ids()
            .filter(|&t| table_sim(lake, t, unit) >= threshold)
            .collect()
    }
}

/// Best attribute cosine of a table against a query vector — the relevance
/// judgement both agent kinds (and the serving-layer driver) apply when
/// "reading" a table.
pub fn table_sim(lake: &DataLake, table: TableId, unit: &[f32]) -> f32 {
    lake.table(table)
        .attrs
        .iter()
        .map(|&a| dot(&lake.attr(a).unit_topic, unit))
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Participant behaviour parameters.
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// UI-action budget (the stand-in for the study's 20 minutes).
    pub budget: usize,
    /// Sampling temperature over the Eq 1 transition distribution
    /// (1.0 = the navigation model exactly; < 1 = more decisive users).
    pub temperature: f64,
    /// Personal relevance bar (cosine); per-participant noise is added.
    pub judge_threshold: f32,
    /// Std-dev of the personal threshold noise.
    pub judge_noise: f32,
    /// Results examined per keyword query.
    pub results_per_query: usize,
    /// Per-participant interpretation spread: the expected L2 norm of the
    /// Gaussian perturbation applied to the scenario topic before a
    /// participant starts working. Every participant reads an overview
    /// scenario ("smart city") differently — one thinks of traffic, one of
    /// crime, one of renewable energy (§4.4 reports exactly this) — and
    /// navigation amplifies those differences into different subtrees,
    /// while the shared search engine keeps pulling searchers back to the
    /// same head results.
    pub interpretation_noise: f32,
    /// Probability that a chosen keyword is a *misformulation* — a word
    /// from an unrelated part of the vocabulary. Real participants did not
    /// know the lake's vocabulary and often guessed wrong ("they were
    /// having a hard time finding keywords", §4.4); without this, a BM25
    /// engine over clean synthetic text is unrealistically precise.
    pub keyword_miss_rate: f64,
    /// Participant RNG seed.
    pub seed: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            budget: 120,
            temperature: 0.5,
            judge_threshold: 0.60,
            judge_noise: 0.03,
            results_per_query: 10,
            interpretation_noise: 0.45,
            keyword_miss_rate: 0.5,
            seed: 1,
        }
    }
}

/// A participant's private reading of the scenario topic.
pub(crate) fn personal_topic(cfg: &AgentConfig, scenario: &Scenario, rng: &mut StdRng) -> Vec<f32> {
    let dim = scenario.unit_topic.len();
    let comp = cfg.interpretation_noise / (dim.max(1) as f32).sqrt();
    let mut v: Vec<f32> = scenario
        .unit_topic
        .iter()
        .map(|x| {
            let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
            let u2: f32 = rng.random();
            let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            x + comp * g
        })
        .collect();
    let n = dln_embed::l2_norm(&v);
    if n > 1e-6 {
        v.iter_mut().for_each(|x| *x /= n);
    }
    v
}

/// A participant's personal relevance bar: the scenario's (calibrated)
/// threshold plus individual noise. `cfg.judge_threshold` is used only
/// when the scenario carries no threshold (< 0).
pub(crate) fn personal_threshold(cfg: &AgentConfig, scenario: &Scenario, rng: &mut StdRng) -> f32 {
    // Small Gaussian perturbation via Box–Muller.
    let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
    let u2: f32 = rng.random();
    let g = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    let base = if scenario.threshold > 0.0 {
        scenario.threshold
    } else {
        cfg.judge_threshold
    };
    base + cfg.judge_noise * g
}

/// A participant using the navigation prototype.
pub struct NavigationAgent;

impl NavigationAgent {
    /// Run one participant session over a (multi-dimensional) organization.
    /// Returns the set of tables the participant collected.
    pub fn run(
        dims: &[BuiltOrganization],
        lake: &DataLake,
        scenario: &Scenario,
        cfg: &AgentConfig,
    ) -> BTreeSet<TableId> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let bar = personal_threshold(cfg, scenario, &mut rng);
        // Walking follows the participant's private interpretation; the
        // final relevance judgement (reading the table) uses the actual
        // scenario.
        let walk_topic = personal_topic(cfg, scenario, &mut rng);
        let mut found = BTreeSet::new();
        if dims.is_empty() {
            return found;
        }
        let mut actions = 0usize;
        // Visit dimensions in order of root-topic similarity to the
        // scenario (a user picks the most promising entry point first).
        let mut dim_order: Vec<usize> = (0..dims.len()).collect();
        dim_order.sort_by(|&a, &b| {
            let sa = dot(
                &dims[a]
                    .organization
                    .state(dims[a].organization.root())
                    .unit_topic,
                &walk_topic,
            );
            let sb = dot(
                &dims[b]
                    .organization
                    .state(dims[b].organization.root())
                    .unit_topic,
                &walk_topic,
            );
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut dim_i = 0usize;
        let mut nav: Navigator<'_> = dims[dim_order[0]].navigator();
        let mut current_dim = dim_order[0];
        // Tables the participant has already looked at: re-encountering one
        // is free (a user recognizes a table they have opened before).
        let mut examined: BTreeSet<TableId> = BTreeSet::new();
        // Tag states already exhausted, per dimension: a user does not
        // descend into a leaf they have already read through. After
        // finishing a tag they explore nearby siblings rather than
        // restarting from the root — local, neighbourhood-first browsing.
        let mut visited: BTreeSet<(usize, dln_org::StateId)> = BTreeSet::new();
        while actions < cfg.budget {
            if let Some(_tag) = nav.at_tag_state() {
                visited.insert((current_dim, nav.current()));
                // Examine the tables behind the tag, most covered first.
                for (table, _) in nav.tables_here() {
                    if actions >= cfg.budget {
                        break;
                    }
                    if !examined.insert(table) {
                        continue;
                    }
                    actions += 1;
                    if table_sim(lake, table, &scenario.unit_topic) >= bar {
                        found.insert(table);
                    }
                }
                actions += 1; // backtracking is a UI action
                nav.backtrack();
                continue;
            }
            // Candidate children: skip exhausted tag states.
            let probs: Vec<(dln_org::StateId, f64)> = nav
                .transition_probs(&walk_topic)
                .into_iter()
                .filter(|(c, _)| !visited.contains(&(current_dim, *c)))
                .collect();
            if probs.is_empty() {
                // Subtree exhausted: back up, or move to the next dimension
                // from the root.
                actions += 1;
                if !nav.backtrack() {
                    dim_i = (dim_i + 1) % dim_order.len();
                    current_dim = dim_order[dim_i];
                    nav = dims[current_dim].navigator();
                }
                continue;
            }
            // Temperature-adjusted sample from the Eq 1 distribution.
            let child = sample_child(&probs, cfg.temperature, &mut rng);
            if nav.descend(child).is_err() {
                // The sampled child came from the navigator's own Eq 1
                // distribution; a refusal means the organization changed
                // under the session — end it rather than loop forever.
                break;
            }
            actions += 1;
        }
        found
    }
}

pub(crate) fn sample_child(
    probs: &[(dln_org::StateId, f64)],
    temperature: f64,
    rng: &mut StdRng,
) -> dln_org::StateId {
    let temp = temperature.max(1e-3);
    let weights: Vec<f64> = probs.iter().map(|(_, p)| p.powf(1.0 / temp)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return probs[rng.random_range(0..probs.len())].0;
    }
    let mut target = rng.random::<f64>() * total;
    for ((sid, _), w) in probs.iter().zip(weights.iter()) {
        if target < *w {
            return *sid;
        }
        target -= *w;
    }
    probs[probs.len() - 1].0
}

/// A participant using keyword search.
pub struct SearchAgent;

impl SearchAgent {
    /// Run one participant session against the search engine. Keywords are
    /// drawn from the vocabulary words nearest the scenario topic, which is
    /// why simulated searchers — like the paper's participants — end up
    /// issuing very similar queries.
    pub fn run(
        engine: &KeywordSearch,
        model: &SyntheticEmbedding,
        lake: &DataLake,
        scenario: &Scenario,
        cfg: &AgentConfig,
    ) -> BTreeSet<TableId> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EA2C4);
        let bar = personal_threshold(cfg, scenario, &mut rng);
        let walk_topic = personal_topic(cfg, scenario, &mut rng);
        let mut found = BTreeSet::new();
        // Candidate keywords: vocabulary words near the scenario topic.
        // The pool is wide and rank-biased: participants do not know the
        // lake's vocabulary, so many of their formulations are off-target
        // ("they were having a hard time finding keywords that best
        // described their interest since they did not know what was
        // available", §4.4).
        let candidates = model.vocab().k_nearest(&walk_topic, 60);
        if candidates.is_empty() {
            return found;
        }
        let mut actions = 0usize;
        let mut examined: BTreeSet<TableId> = BTreeSet::new();
        while actions < cfg.budget {
            // Compose a 1–2 word query biased toward the top candidates.
            let n_words = 1 + usize::from(rng.random::<f64>() < 0.4);
            let mut query = String::new();
            for _ in 0..n_words {
                let tok = if rng.random::<f64>() < cfg.keyword_miss_rate {
                    // Misformulated keyword: anywhere in the vocabulary.
                    dln_embed::TokenId(rng.random_range(0..model.vocab().len() as u32))
                } else {
                    // Rank-biased choice among on-topic candidates.
                    let idx = (rng.random::<f64>() * rng.random::<f64>() * candidates.len() as f64)
                        as usize;
                    candidates[idx.min(candidates.len() - 1)].0
                };
                if !query.is_empty() {
                    query.push(' ');
                }
                query.push_str(model.vocab().word(tok));
            }
            actions += 1; // issuing the query
            let hits = engine.search(&query, cfg.results_per_query);
            for hit in hits {
                if actions >= cfg.budget {
                    break;
                }
                if !examined.insert(hit.table) {
                    continue; // already looked at this result
                }
                actions += 1; // examining a result
                if table_sim(lake, hit.table, &scenario.unit_topic) >= bar {
                    found.insert(hit.table);
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::OrganizerBuilder;
    use dln_synth::SocrataConfig;

    fn setup() -> (dln_lake::DataLake, SyntheticEmbedding) {
        let s = SocrataConfig::small().generate();
        (s.lake, s.model)
    }

    fn scenario(lake: &DataLake) -> Scenario {
        let tags: Vec<TagId> = lake.tag_ids().take(3).collect();
        Scenario::from_tags(lake, "test scenario", &tags, 0.6)
    }

    #[test]
    fn scenario_ground_truth_nonempty() {
        let (lake, _) = setup();
        let sc = scenario(&lake);
        assert!(!sc.relevant.is_empty(), "some tables must be relevant");
        assert!(sc.relevant.len() < lake.n_tables(), "not everything");
        assert!((dln_embed::l2_norm(&sc.unit_topic) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn navigation_agent_finds_mostly_relevant_tables() {
        let (lake, _) = setup();
        let sc = scenario(&lake);
        let built = OrganizerBuilder::new(&lake).max_iters(60).build_optimized();
        let dims = vec![built];
        let cfg = AgentConfig {
            budget: 150,
            seed: 42,
            ..Default::default()
        };
        let found = NavigationAgent::run(&dims, &lake, &sc, &cfg);
        assert!(!found.is_empty(), "agent should find something");
        let relevant = found.iter().filter(|t| sc.relevant.contains(t)).count();
        assert!(
            relevant as f64 / found.len() as f64 > 0.7,
            "mostly relevant ({relevant}/{})",
            found.len()
        );
    }

    #[test]
    fn search_agent_finds_mostly_relevant_tables() {
        let (lake, model) = setup();
        let sc = scenario(&lake);
        let engine = KeywordSearch::build_with_expansion(
            &lake,
            model.clone(),
            dln_search::ExpansionConfig::default(),
        );
        let cfg = AgentConfig {
            budget: 150,
            seed: 43,
            ..Default::default()
        };
        let found = SearchAgent::run(&engine, &model, &lake, &sc, &cfg);
        assert!(!found.is_empty());
        let relevant = found.iter().filter(|t| sc.relevant.contains(t)).count();
        assert!(
            relevant as f64 / found.len() as f64 > 0.7,
            "mostly relevant ({relevant}/{})",
            found.len()
        );
    }

    #[test]
    fn different_seeds_give_different_navigation_paths() {
        let (lake, _) = setup();
        let sc = scenario(&lake);
        let built = OrganizerBuilder::new(&lake).max_iters(60).build_optimized();
        let dims = vec![built];
        let mk = |seed| {
            NavigationAgent::run(
                &dims,
                &lake,
                &sc,
                &AgentConfig {
                    budget: 100,
                    seed,
                    ..Default::default()
                },
            )
        };
        let a = mk(1);
        let b = mk(2);
        // Stochastic walks diverge (H2's mechanism).
        assert!(a != b || a.is_empty(), "two participants rarely coincide");
    }

    #[test]
    fn agents_respect_budget_zero() {
        let (lake, model) = setup();
        let sc = scenario(&lake);
        let built = OrganizerBuilder::new(&lake)
            .max_iters(10)
            .build_clustering();
        let dims = vec![built];
        let cfg = AgentConfig {
            budget: 0,
            ..Default::default()
        };
        assert!(NavigationAgent::run(&dims, &lake, &sc, &cfg).is_empty());
        let engine = KeywordSearch::build(&lake);
        assert!(SearchAgent::run(&engine, &model, &lake, &sc, &cfg).is_empty());
    }

    #[test]
    fn agent_runs_are_deterministic_in_seed() {
        let (lake, _) = setup();
        let sc = scenario(&lake);
        let built = OrganizerBuilder::new(&lake)
            .max_iters(40)
            .build_clustering();
        let dims = vec![built];
        let cfg = AgentConfig {
            budget: 80,
            seed: 9,
            ..Default::default()
        };
        let a = NavigationAgent::run(&dims, &lake, &sc, &cfg);
        let b = NavigationAgent::run(&dims, &lake, &sc, &cfg);
        assert_eq!(a, b);
    }
}
