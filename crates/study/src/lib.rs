//! Simulated user study: navigation vs. keyword search (paper §4.4).
//!
//! The paper ran a 12-participant within-subject study on two tag-disjoint
//! Socrata sub-lakes with a balanced latin-square design, testing:
//!
//! * **H1** — given the same time, participants find a *similar number* of
//!   relevant tables with navigation and with keyword search (the paper
//!   found no statistically significant difference; max 44 via navigation
//!   vs 34 via search);
//! * **H2** — navigation surfaces tables keyword search does not: result
//!   *disjointness* (`1 − |R∩T| / |R∪T|`) across participants was higher
//!   for navigation (Mdn 0.985 vs 0.916, Mann–Whitney U, p = 0.0019), and
//!   only ≈5% of tables were found by both modalities.
//!
//! Humans are not reproducible in a library; what is reproducible is the
//! *measurable* part: stochastic participant agents with private scenario
//! topics and bounded action budgets drive the exact same two interfaces
//! (the organization [`dln_org::Navigator`] and the BM25
//! [`dln_search::KeywordSearch`]), and the same statistics are computed
//! with the same tests. See `DESIGN.md` §1 for the substitution argument.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agents;
pub mod concurrent;
pub mod metrics;
pub mod stats;
pub mod study;
pub mod unified;

pub use agents::{table_sim, AgentConfig, NavigationAgent, Scenario, SearchAgent};
pub use concurrent::{run_concurrent, run_serial, ServedAgent, ServedOutcome};
pub use metrics::{disjointness, mean_pairwise_disjointness, overlap_fraction};
pub use stats::{mann_whitney_u, median, MannWhitney};
pub use study::{
    calibrated_scenario, default_scenario, run_study, scenario_from_seed, ModalityResult,
    StudyConfig, StudyReport,
};
pub use unified::UnifiedSession;
