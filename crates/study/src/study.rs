//! The full study harness (§4.4): within-subject design, balanced
//! latin-square blocking, relevance verification, and hypothesis tests.

use std::collections::BTreeSet;

use dln_embed::{dot, SyntheticEmbedding};
use dln_fault::{DlnError, DlnResult};
use dln_lake::{DataLake, TableId, TagId};
use dln_org::{MultiDimConfig, MultiDimOrganization, SearchConfig};
use dln_search::{ExpansionConfig, KeywordSearch};

use crate::agents::{AgentConfig, NavigationAgent, Scenario, SearchAgent};
use crate::metrics::{mean_pairwise_disjointness, overlap_fraction};
use crate::stats::{mann_whitney_u, median, MannWhitney};

/// Study-wide configuration.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Number of participants (the paper recruited 12).
    pub n_participants: usize,
    /// Behaviour parameters shared by all participants (individual seeds
    /// are derived per participant).
    pub agent: AgentConfig,
    /// Dimensions of the organizations built per study lake.
    pub n_dims: usize,
    /// Local-search configuration for organization construction.
    pub search: SearchConfig,
    /// Number of tags blended into each scenario topic.
    pub scenario_tags: usize,
    /// Ground-truth relevance threshold (collaborator verification), used
    /// by [`default_scenario`]-style fixed-threshold scenarios.
    pub relevance_threshold: f32,
    /// Target ground-truth size for difficulty-matched scenarios.
    pub target_relevant: usize,
    /// How many navigation-click-equivalents one keyword-search action
    /// (formulating a query / reading a ranked result) costs. Navigation
    /// clicks are fast; composing queries and scanning result lists is
    /// slow. The search agent's action budget is `budget / this`.
    pub search_action_cost: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            n_participants: 12,
            agent: AgentConfig::default(),
            n_dims: 2,
            search: SearchConfig {
                max_iters: 200,
                ..Default::default()
            },
            scenario_tags: 3,
            relevance_threshold: 0.6,
            target_relevant: 90,
            search_action_cost: 6.0,
            seed: 0x57AD_517E,
        }
    }
}

/// Aggregated per-modality outcome.
#[derive(Clone, Debug)]
pub struct ModalityResult {
    /// Verified-relevant result set per participant session.
    pub found: Vec<BTreeSet<TableId>>,
    /// Number of relevant tables found per session.
    pub n_found: Vec<f64>,
    /// Pairwise disjointness among sessions of the same scenario.
    pub disjointness: Vec<f64>,
    /// Fraction of collected tables rejected by verification (the paper
    /// reports < 1% for both modalities).
    pub irrelevant_rate: f64,
}

/// The study report: everything §4.4 tabulates.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// Navigation outcomes.
    pub nav: ModalityResult,
    /// Keyword-search outcomes.
    pub search: ModalityResult,
    /// H1 test (number of relevant tables found, navigation vs search).
    pub h1: Option<MannWhitney>,
    /// H2 test (pairwise disjointness, navigation vs search).
    pub h2: Option<MannWhitney>,
    /// Median disjointness for navigation (paper: 0.985).
    pub nav_disjointness_median: f64,
    /// Median disjointness for search (paper: 0.916).
    pub search_disjointness_median: f64,
    /// Fraction of tables found by both modalities (paper: ≈5%).
    pub cross_modality_overlap: f64,
    /// Largest session result (paper: 44 nav / 34 search).
    pub max_nav_found: usize,
    /// Largest search session result.
    pub max_search_found: usize,
}

impl std::fmt::Display for StudyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== simulated user study (paper §4.4) ==")?;
        writeln!(
            f,
            "relevant tables found: nav median {:.1} (max {}), search median {:.1} (max {})",
            median(&self.nav.n_found).unwrap_or(0.0),
            self.max_nav_found,
            median(&self.search.n_found).unwrap_or(0.0),
            self.max_search_found,
        )?;
        match &self.h1 {
            Some(h1) => writeln!(
                f,
                "H1 (similar #found): Mann-Whitney U = {:.1}, p = {:.4} ({})",
                h1.u1,
                h1.p_value,
                if h1.p_value > 0.05 {
                    "no significant difference, as the paper found"
                } else {
                    "significant difference"
                }
            )?,
            None => writeln!(f, "H1: test degenerate")?,
        }
        writeln!(
            f,
            "disjointness: nav median {:.3} vs search median {:.3}",
            self.nav_disjointness_median, self.search_disjointness_median
        )?;
        match &self.h2 {
            Some(h2) => writeln!(
                f,
                "H2 (nav more disjoint): Mann-Whitney U = {:.1}, p = {:.4} ({})",
                h2.u1,
                h2.p_value,
                if h2.p_value < 0.05
                    && self.nav_disjointness_median > self.search_disjointness_median
                {
                    "confirmed, as the paper found"
                } else {
                    "not confirmed"
                }
            )?,
            None => writeln!(f, "H2: test degenerate")?,
        }
        writeln!(
            f,
            "cross-modality overlap: {:.1}% (paper: ~5%)",
            100.0 * self.cross_modality_overlap
        )?;
        write!(
            f,
            "irrelevant before verification: nav {:.1}%, search {:.1}% (paper: <1%)",
            100.0 * self.nav.irrelevant_rate,
            100.0 * self.search.irrelevant_rate
        )
    }
}

/// Choose a coherent scenario for a lake with a *calibrated difficulty*:
/// the paper matched its two scenarios "in difficulty by asking a number
/// of domain experts ... to rate several candidate scenarios". Here the
/// equivalent is a target ground-truth size: the relevance threshold is
/// bisected until roughly `target_relevant` tables qualify, so the two
/// sub-lakes' scenarios are comparable.
pub fn calibrated_scenario(
    lake: &DataLake,
    label: &str,
    n_tags: usize,
    target_relevant: usize,
) -> DlnResult<Scenario> {
    // Candidate seed tags: the most popular ones (a scenario must be about
    // something the lake actually covers). For each, build the scenario at
    // a fixed threshold and keep the one whose ground-truth size is
    // closest to the target.
    let mut candidates: Vec<TagId> = lake.tag_ids().collect();
    candidates.sort_by_key(|&t| std::cmp::Reverse(lake.tag(t).attrs.len()));
    candidates.truncate(50);
    let mut best: Option<(Scenario, usize)> = None;
    for &seed in &candidates {
        let sc = scenario_from_seed(lake, label, seed, n_tags, 0.6);
        let diff = sc.relevant.len().abs_diff(target_relevant);
        if best.as_ref().map(|(_, d)| diff < *d).unwrap_or(true) {
            best = Some((sc, diff));
        }
    }
    match best {
        Some((sc, _)) => Ok(sc),
        None => Err(DlnError::InvalidConfig(format!(
            "calibrated_scenario({label}): lake has no tags to anchor a scenario on"
        ))),
    }
}

/// Scenario anchored at an explicit seed tag: the seed plus its `n − 1`
/// nearest tags by topic cosine.
pub fn scenario_from_seed(
    lake: &DataLake,
    label: &str,
    seed_tag: TagId,
    n_tags: usize,
    threshold: f32,
) -> Scenario {
    let seed_unit = &lake.tag(seed_tag).unit_topic;
    let mut others: Vec<TagId> = lake.tag_ids().filter(|&t| t != seed_tag).collect();
    others.sort_by(|&a, &b| {
        let sa = dot(&lake.tag(a).unit_topic, seed_unit);
        let sb = dot(&lake.tag(b).unit_topic, seed_unit);
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tags = vec![seed_tag];
    tags.extend(others.into_iter().take(n_tags.saturating_sub(1)));
    Scenario::from_tags(lake, label, &tags, threshold)
}

/// Choose a coherent scenario for a lake: the most popular tag plus its
/// `n − 1` nearest tags by topic cosine.
pub fn default_scenario(
    lake: &DataLake,
    label: &str,
    n_tags: usize,
    threshold: f32,
) -> DlnResult<Scenario> {
    let Some(seed_tag) = lake.tag_ids().max_by_key(|&t| lake.tag(t).attrs.len()) else {
        return Err(DlnError::InvalidConfig(format!(
            "default_scenario({label}): lake has no tags to anchor a scenario on"
        )));
    };
    let seed_unit = &lake.tag(seed_tag).unit_topic;
    let mut others: Vec<TagId> = lake.tag_ids().filter(|&t| t != seed_tag).collect();
    others.sort_by(|&a, &b| {
        let sa = dot(&lake.tag(a).unit_topic, seed_unit);
        let sb = dot(&lake.tag(b).unit_topic, seed_unit);
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tags = vec![seed_tag];
    tags.extend(others.into_iter().take(n_tags.saturating_sub(1)));
    Ok(Scenario::from_tags(lake, label, &tags, threshold))
}

/// Run the full study over two tag-disjoint lakes (the paper's Socrata-2 /
/// Socrata-3). Returns the aggregated report.
///
/// The latin-square blocking (4 balanced blocks over lake × technique
/// order) is reproduced so that, exactly as in the paper, every
/// participant performs one navigation session and one search session on
/// *different* lakes.
pub fn run_study(
    lake2: &DataLake,
    lake3: &DataLake,
    model: &SyntheticEmbedding,
    cfg: &StudyConfig,
) -> DlnResult<StudyReport> {
    // Organizations and search engines per lake.
    let md_cfg = MultiDimConfig {
        n_dims: cfg.n_dims,
        search: cfg.search.clone(),
        partition_seed: cfg.seed ^ 0xD1,
        parallel: true,
    };
    let org2 = MultiDimOrganization::build(lake2, &md_cfg);
    let org3 = MultiDimOrganization::build(lake3, &md_cfg);
    let engine2 =
        KeywordSearch::build_with_expansion(lake2, model.clone(), ExpansionConfig::default());
    let engine3 =
        KeywordSearch::build_with_expansion(lake3, model.clone(), ExpansionConfig::default());
    // Difficulty-matched scenarios (the latin-square design assumes the
    // two scenarios are comparable; the paper vetted this with experts).
    let scenario2 =
        calibrated_scenario(lake2, "scenario-2", cfg.scenario_tags, cfg.target_relevant)?;
    let scenario3 =
        calibrated_scenario(lake3, "scenario-3", cfg.scenario_tags, cfg.target_relevant)?;

    // Latin-square blocks: (nav lake, search lake) alternating with order;
    // order is immaterial for agents but the lake assignment is balanced.
    let mut nav_sets_by_scenario: [Vec<BTreeSet<TableId>>; 2] = [Vec::new(), Vec::new()];
    let mut search_sets_by_scenario: [Vec<BTreeSet<TableId>>; 2] = [Vec::new(), Vec::new()];
    let mut nav_raw_total = 0usize;
    let mut search_raw_total = 0usize;
    for p in 0..cfg.n_participants {
        let agent_cfg = AgentConfig {
            seed: cfg.seed ^ (0x9E37_79B9u64.wrapping_mul(p as u64 + 1)),
            ..cfg.agent.clone()
        };
        // Blocks: p % 4 ∈ {0: nav@2, 1: nav@3, 2: nav@2, 3: nav@3} with
        // technique order alternating (order has no effect on agents).
        let nav_on_2 = p % 2 == 0;
        let (nav_lake, nav_org, nav_scenario, nav_idx) = if nav_on_2 {
            (lake2, &org2, &scenario2, 0usize)
        } else {
            (lake3, &org3, &scenario3, 1usize)
        };
        let (s_lake, s_engine, s_scenario, s_idx) = if nav_on_2 {
            (lake3, &engine3, &scenario3, 1usize)
        } else {
            (lake2, &engine2, &scenario2, 0usize)
        };
        let nav_found = NavigationAgent::run(&nav_org.dims, nav_lake, nav_scenario, &agent_cfg);
        let search_cfg = AgentConfig {
            budget: (agent_cfg.budget as f64 / cfg.search_action_cost).round() as usize,
            ..agent_cfg.clone()
        };
        let s_found = SearchAgent::run(s_engine, model, s_lake, s_scenario, &search_cfg);
        // Verification (the paper's collaborators filtering irrelevant
        // results).
        nav_raw_total += nav_found.len();
        let nav_verified: BTreeSet<TableId> = nav_found
            .into_iter()
            .filter(|t| nav_scenario.relevant.contains(t))
            .collect();
        search_raw_total += s_found.len();
        let s_verified: BTreeSet<TableId> = s_found
            .into_iter()
            .filter(|t| s_scenario.relevant.contains(t))
            .collect();
        nav_sets_by_scenario[nav_idx].push(nav_verified);
        search_sets_by_scenario[s_idx].push(s_verified);
    }
    // Rejection counts (collected minus verified).
    let nav_kept_total: usize = nav_sets_by_scenario
        .iter()
        .flatten()
        .map(BTreeSet::len)
        .sum();
    let search_kept_total: usize = search_sets_by_scenario
        .iter()
        .flatten()
        .map(BTreeSet::len)
        .sum();
    let nav_rejected = nav_raw_total - nav_kept_total;
    let search_rejected = search_raw_total - search_kept_total;

    // Per-technique samples.
    let nav_found_all: Vec<BTreeSet<TableId>> =
        nav_sets_by_scenario.iter().flatten().cloned().collect();
    let search_found_all: Vec<BTreeSet<TableId>> =
        search_sets_by_scenario.iter().flatten().cloned().collect();
    let nav_counts: Vec<f64> = nav_found_all.iter().map(|s| s.len() as f64).collect();
    let search_counts: Vec<f64> = search_found_all.iter().map(|s| s.len() as f64).collect();
    // Disjointness per scenario per technique, pooled (the paper computes
    // pairs among participants on the same scenario with the same
    // technique).
    let mut nav_disj = Vec::new();
    let mut search_disj = Vec::new();
    for idx in 0..2 {
        nav_disj.extend(mean_pairwise_disjointness(&nav_sets_by_scenario[idx]));
        search_disj.extend(mean_pairwise_disjointness(&search_sets_by_scenario[idx]));
    }
    // Cross-modality overlap per scenario, averaged.
    let mut overlaps = Vec::new();
    for idx in 0..2 {
        let nav_union: BTreeSet<TableId> = nav_sets_by_scenario[idx]
            .iter()
            .flatten()
            .copied()
            .collect();
        let search_union: BTreeSet<TableId> = search_sets_by_scenario[idx]
            .iter()
            .flatten()
            .copied()
            .collect();
        if !nav_union.is_empty() || !search_union.is_empty() {
            overlaps.push(overlap_fraction(&nav_union, &search_union));
        }
    }
    let cross_modality_overlap = if overlaps.is_empty() {
        0.0
    } else {
        overlaps.iter().sum::<f64>() / overlaps.len() as f64
    };

    let h1 = mann_whitney_u(&nav_counts, &search_counts);
    let h2 = mann_whitney_u(&nav_disj, &search_disj);
    let max_nav_found = nav_found_all.iter().map(BTreeSet::len).max().unwrap_or(0);
    let max_search_found = search_found_all
        .iter()
        .map(BTreeSet::len)
        .max()
        .unwrap_or(0);
    Ok(StudyReport {
        nav: ModalityResult {
            n_found: nav_counts,
            disjointness: nav_disj.clone(),
            irrelevant_rate: rate(nav_rejected, nav_raw_total),
            found: nav_found_all,
        },
        search: ModalityResult {
            n_found: search_counts,
            disjointness: search_disj.clone(),
            irrelevant_rate: rate(search_rejected, search_raw_total),
            found: search_found_all,
        },
        h1,
        h2,
        nav_disjointness_median: median(&nav_disj).unwrap_or(1.0),
        search_disjointness_median: median(&search_disj).unwrap_or(1.0),
        cross_modality_overlap,
        max_nav_found,
        max_search_found,
    })
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_synth::SocrataConfig;

    fn small_study() -> StudyReport {
        let s = SocrataConfig::small().generate();
        let (l2, l3) = s.split_disjoint(7);
        let cfg = StudyConfig {
            n_participants: 8,
            search: SearchConfig {
                max_iters: 60,
                ..Default::default()
            },
            agent: AgentConfig {
                budget: 80,
                ..Default::default()
            },
            ..Default::default()
        };
        run_study(&l2, &l3, &s.model, &cfg).expect("study")
    }

    #[test]
    fn study_produces_complete_report() {
        let r = small_study();
        assert_eq!(r.nav.found.len(), 8);
        assert_eq!(r.search.found.len(), 8);
        assert!(!r.nav.disjointness.is_empty());
        assert!(!r.search.disjointness.is_empty());
        // Verified sets are all relevant by construction.
        assert!(r.nav.irrelevant_rate <= 0.5);
        assert!(r.search.irrelevant_rate <= 0.5);
        let text = format!("{r}");
        assert!(text.contains("H1"));
        assert!(text.contains("H2"));
    }

    #[test]
    fn both_modalities_find_tables() {
        let r = small_study();
        let nav_total: usize = r.nav.found.iter().map(|s| s.len()).sum();
        let search_total: usize = r.search.found.iter().map(|s| s.len()).sum();
        assert!(nav_total > 0, "navigation found nothing");
        assert!(search_total > 0, "search found nothing");
    }

    #[test]
    fn disjointness_values_are_probabilities() {
        let r = small_study();
        for d in r.nav.disjointness.iter().chain(&r.search.disjointness) {
            assert!((0.0..=1.0).contains(d));
        }
        assert!((0.0..=1.0).contains(&r.cross_modality_overlap));
    }

    #[test]
    fn default_scenario_is_well_formed() {
        let s = SocrataConfig::small().generate();
        let sc = default_scenario(&s.lake, "x", 3, 0.6).expect("scenario");
        assert!(!sc.relevant.is_empty());
        assert_eq!(sc.label, "x");
    }

    #[test]
    fn calibrated_scenarios_are_difficulty_matched() {
        // The latin-square design assumes the two lakes' scenarios are
        // comparable; calibration should bring their ground-truth sizes
        // within the same ballpark even though the sub-lakes differ.
        let s = SocrataConfig::small().generate();
        let (l2, l3) = s.split_disjoint(7);
        let target = 30;
        let sc2 = calibrated_scenario(&l2, "a", 3, target).expect("scenario");
        let sc3 = calibrated_scenario(&l3, "b", 3, target).expect("scenario");
        assert!(!sc2.relevant.is_empty());
        assert!(!sc3.relevant.is_empty());
        let (n2, n3) = (sc2.relevant.len() as f64, sc3.relevant.len() as f64);
        let ratio = n2.max(n3) / n2.min(n3);
        assert!(
            ratio < 4.0,
            "scenario sizes should be comparable: {n2} vs {n3}"
        );
    }

    #[test]
    fn scenario_from_seed_anchors_on_the_seed_tag() {
        let s = SocrataConfig::small().generate();
        let seed = s.lake.tag_ids().next().unwrap();
        let sc = scenario_from_seed(&s.lake, "seeded", seed, 2, 0.5);
        // The seed tag's own tables should be heavily represented.
        let seed_tables: std::collections::BTreeSet<_> =
            s.lake.tag(seed).tables.iter().copied().collect();
        let hit = seed_tables
            .iter()
            .filter(|t| sc.relevant.contains(t))
            .count();
        assert!(
            hit * 2 >= seed_tables.len().min(10),
            "seed tag's tables should mostly be relevant ({hit}/{})",
            seed_tables.len()
        );
    }

    #[test]
    fn search_action_cost_shrinks_search_budget() {
        // Indirect but observable: with an enormous cost, searchers can do
        // almost nothing while navigators are unaffected.
        let s = SocrataConfig::small().generate();
        let (l2, l3) = s.split_disjoint(7);
        let mk = |cost: f64| StudyConfig {
            n_participants: 4,
            search: SearchConfig {
                max_iters: 40,
                ..Default::default()
            },
            agent: AgentConfig {
                budget: 120,
                ..Default::default()
            },
            search_action_cost: cost,
            ..Default::default()
        };
        let cheap = run_study(&l2, &l3, &s.model, &mk(1.0)).expect("study");
        let pricey = run_study(&l2, &l3, &s.model, &mk(60.0)).expect("study");
        let total = |r: &StudyReport| r.search.n_found.iter().sum::<f64>();
        assert!(
            total(&cheap) >= total(&pricey),
            "costlier search actions cannot find more: {} vs {}",
            total(&cheap),
            total(&pricey)
        );
    }
}
