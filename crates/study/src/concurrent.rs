//! Study participants driven *through the serving layer*, concurrently.
//!
//! [`NavigationAgent`](crate::NavigationAgent) owns a borrowed `Navigator`
//! — fine for the single-user study, useless for asking what happens when
//! many participants hit one service at once while the organization is
//! republished under them. [`ServedAgent`] is the same behavioural model
//! (private scenario reading, temperature-sampled descents, tag-state
//! table examination, action budget) re-expressed against
//! [`NavService::step`], which means it must also *cope*: it retries shed
//! requests with [`RetryPolicy`] backoff, re-opens sessions lost to TTL or
//! injected drops, refreshes its view after migration invalidates a chosen
//! child, and accepts degraded (label-only) responses by falling back to
//! uniform child choice.
//!
//! Everything an agent does is a deterministic function of its seed and
//! the responses it receives, so when the service itself is deterministic
//! (no deadline pressure from a wall clock, capacity ≥ agents, no mid-run
//! publishes) a fleet of agents produces identical [`ServedOutcome`]s
//! whether run on one thread or many — the property the serve chaos suite
//! pins down.

use std::collections::BTreeSet;

use dln_lake::{DataLake, TableId};
use dln_serve::{
    NavService, RetryPolicy, ServeError, SessionId, StepAction, StepRequest, StepResponse,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::agents::{personal_threshold, personal_topic, sample_child, table_sim};
use crate::{AgentConfig, Scenario};

/// What one served participant experienced and achieved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServedOutcome {
    /// Tables the participant judged relevant and collected.
    pub found: BTreeSet<TableId>,
    /// Successful navigation steps (admitted, non-error responses).
    pub steps: u64,
    /// Responses that arrived deadline-degraded.
    pub degraded: u64,
    /// Requests shed even after the retry policy's attempts.
    pub overload_exhausted: u64,
    /// Sessions lost mid-run (TTL eviction or injected drop).
    pub lost_sessions: u64,
    /// Of those, losses injected by the `serve.drop_session` failpoint.
    pub injected_losses: u64,
    /// Fresh sessions opened after a loss (or stale rejection).
    pub reopens: u64,
    /// Descents refused because a hot-swap invalidated the chosen child
    /// between steps.
    pub nav_rejects: u64,
}

/// A study participant speaking the serving protocol.
pub struct ServedAgent;

enum Next {
    /// Refresh the view (first request, or after reopen/migration).
    Look,
    /// Descend into a child chosen from the previous view.
    Down(dln_org::StateId),
    /// Backtrack out of an exhausted subtree / examined tag state.
    Up,
}

impl ServedAgent {
    /// Run one participant against `svc` until the action budget is spent.
    ///
    /// `sleep` services retry backoff (tests inject a no-op or a capped
    /// sleeper so chaos runs stay fast).
    pub fn run(
        svc: &NavService,
        lake: &DataLake,
        scenario: &Scenario,
        cfg: &AgentConfig,
        retry: &RetryPolicy,
        mut sleep: impl FnMut(u64),
    ) -> ServedOutcome {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let bar = personal_threshold(cfg, scenario, &mut rng);
        let walk_topic = personal_topic(cfg, scenario, &mut rng);
        let mut out = ServedOutcome::default();

        // Fault keys are derived from the agent seed, not from the racy
        // order sessions get opened in; each reopen shifts the key so the
        // fresh session does not replay the dead one's fault schedule.
        let session_key = |reopens: u64| cfg.seed ^ reopens.wrapping_mul(0x9E37_79B9_97F4_A7C1);
        let Ok(mut session) = svc.open_session_keyed(session_key(0)) else {
            return out; // registry full: this participant never got in
        };

        // Tag states already read through, identified by (epoch, state) —
        // state ids are only meaningful within one snapshot epoch.
        let mut visited: BTreeSet<(u64, dln_org::StateId)> = BTreeSet::new();
        let mut examined: BTreeSet<TableId> = BTreeSet::new();
        let mut actions = 0usize;
        let mut next = Next::Look;

        while actions < cfg.budget {
            let action = match next {
                Next::Look => StepAction::Stay,
                Next::Down(c) => StepAction::Descend(c),
                Next::Up => StepAction::Backtrack,
            };
            let req = StepRequest {
                action,
                query: Some(walk_topic.clone()),
                deadline_ms: None,
                list_tables: true,
            };
            let resp = retry.run(&mut sleep, || svc.step(session, &req));
            // Every iteration spends at least one budget unit, error or
            // not, so a hostile fault schedule cannot trap the agent.
            actions += 1;
            let resp = match resp {
                Ok(r) => r,
                Err(ServeError::Overloaded { .. }) => {
                    out.overload_exhausted += 1;
                    continue; // keep the same intent, try again next round
                }
                Err(ServeError::SessionExpired { injected, .. }) => {
                    out.lost_sessions += 1;
                    if injected {
                        out.injected_losses += 1;
                    }
                    match self::reopen(svc, session_key(out.reopens + 1)) {
                        Some(s) => {
                            out.reopens += 1;
                            session = s;
                            next = Next::Look;
                            continue;
                        }
                        None => break,
                    }
                }
                Err(ServeError::SessionNotFound { .. } | ServeError::Stale { .. }) => {
                    match self::reopen(svc, session_key(out.reopens + 1)) {
                        Some(s) => {
                            out.reopens += 1;
                            session = s;
                            next = Next::Look;
                            continue;
                        }
                        None => break,
                    }
                }
                Err(ServeError::Nav(_)) => {
                    // The chosen child stopped existing (migration landed
                    // between steps). Re-look and re-choose.
                    out.nav_rejects += 1;
                    next = Next::Look;
                    continue;
                }
                Err(ServeError::SessionLimit { .. }) => break,
            };

            out.steps += 1;
            if resp.degraded {
                out.degraded += 1;
            }
            next = Self::digest(
                &resp,
                lake,
                scenario,
                bar,
                cfg,
                &mut rng,
                &mut visited,
                &mut examined,
                &mut actions,
                &mut out.found,
            );
        }
        // Orderly exit merges the session's walk log into the service log.
        let _ = svc.close_session(session);
        out
    }

    /// Turn a response into the next intent, examining tables at tag
    /// states exactly like the borrowed-navigator agent does.
    #[allow(clippy::too_many_arguments)]
    fn digest(
        resp: &StepResponse,
        lake: &DataLake,
        scenario: &Scenario,
        bar: f32,
        cfg: &AgentConfig,
        rng: &mut StdRng,
        visited: &mut BTreeSet<(u64, dln_org::StateId)>,
        examined: &mut BTreeSet<TableId>,
        actions: &mut usize,
        found: &mut BTreeSet<TableId>,
    ) -> Next {
        if resp.at_tag_state.is_some() {
            visited.insert((resp.epoch, resp.state));
            // Degraded responses shed the table listing; the participant
            // backs out and keeps browsing rather than erroring out.
            for (table, _) in &resp.tables {
                if *actions >= cfg.budget {
                    break;
                }
                if !examined.insert(*table) {
                    continue;
                }
                *actions += 1;
                if table_sim(lake, *table, &scenario.unit_topic) >= bar {
                    found.insert(*table);
                }
            }
            return Next::Up;
        }
        let candidates: Vec<&dln_serve::ChildView> = resp
            .children
            .iter()
            .filter(|c| !visited.contains(&(resp.epoch, c.state)))
            .collect();
        if candidates.is_empty() {
            return Next::Up; // exhausted subtree (no-op at the root)
        }
        let ranked: Vec<(dln_org::StateId, f64)> = candidates
            .iter()
            .filter_map(|c| c.prob.map(|p| (c.state, p)))
            .collect();
        if ranked.is_empty() {
            // Degraded view: labels only. Pick uniformly rather than stall.
            let i = rng.random_range(0..candidates.len());
            return Next::Down(candidates[i].state);
        }
        Next::Down(sample_child(&ranked, cfg.temperature, rng))
    }
}

fn reopen(svc: &NavService, key: u64) -> Option<SessionId> {
    svc.open_session_keyed(key).ok()
}

/// Run `agents` against `svc`, one OS thread per participant, and return
/// their outcomes in participant order (thread scheduling cannot reorder
/// or lose results).
pub fn run_concurrent(
    svc: &NavService,
    lake: &DataLake,
    scenario: &Scenario,
    agents: &[AgentConfig],
    retry: &RetryPolicy,
) -> Vec<ServedOutcome> {
    let mut out: Vec<Option<ServedOutcome>> = Vec::new();
    out.resize_with(agents.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(agents.len());
        for cfg in agents {
            let retry = RetryPolicy {
                jitter_seed: retry.jitter_seed ^ cfg.seed,
                ..*retry
            };
            handles.push(scope.spawn(move || {
                // Bounded real sleep keeps backoff honest without letting a
                // chaotic schedule slow the suite down.
                let sleeper =
                    |ms: u64| std::thread::sleep(std::time::Duration::from_millis(ms.min(2)));
                ServedAgent::run(svc, lake, scenario, cfg, &retry, sleeper)
            }));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().unwrap_or_default());
        }
    });
    out.into_iter().flatten().collect()
}

/// The same fleet, one participant after another on the calling thread —
/// the reference ordering the chaos suite compares concurrent runs
/// against.
pub fn run_serial(
    svc: &NavService,
    lake: &DataLake,
    scenario: &Scenario,
    agents: &[AgentConfig],
    retry: &RetryPolicy,
) -> Vec<ServedOutcome> {
    agents
        .iter()
        .map(|cfg| {
            let retry = RetryPolicy {
                jitter_seed: retry.jitter_seed ^ cfg.seed,
                ..*retry
            };
            ServedAgent::run(svc, lake, scenario, cfg, &retry, |_| {})
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::eval::NavConfig;
    use dln_org::{clustering_org, OrgContext};
    use dln_serve::ServeConfig;
    use dln_synth::SocrataConfig;

    fn setup() -> (DataLake, Scenario) {
        let s = SocrataConfig::small().generate();
        let tags: Vec<dln_lake::TagId> = s.lake.tag_ids().take(3).collect();
        let sc = Scenario::from_tags(&s.lake, "served", &tags, 0.6);
        (s.lake, sc)
    }

    fn fleet(n: u64, budget: usize) -> Vec<AgentConfig> {
        (0..n)
            .map(|i| AgentConfig {
                budget,
                seed: 100 + 17 * i,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn served_agent_matches_serial_rerun_and_finds_tables() {
        let (lake, sc) = setup();
        let ctx = OrgContext::full(&lake);
        let org = clustering_org(&ctx);
        let svc = NavService::new(ctx, org, NavConfig::default(), ServeConfig::default());
        let agents = fleet(4, 120);
        let retry = RetryPolicy::default();
        let a = run_serial(&svc, &lake, &sc, &agents, &retry);
        let b = run_serial(&svc, &lake, &sc, &agents, &retry);
        assert_eq!(a, b, "served walks are deterministic in the seed");
        assert!(
            a.iter().any(|o| !o.found.is_empty()),
            "some participant collects something"
        );
        assert!(a.iter().all(|o| o.steps > 0));
        assert_eq!(
            svc.stats()
                .closed
                .load(std::sync::atomic::Ordering::Relaxed),
            8,
            "every run closes its session"
        );
    }

    #[test]
    fn concurrent_fleet_agrees_with_serial_on_deterministic_outcomes() {
        let (lake, sc) = setup();
        let ctx = OrgContext::full(&lake);
        let org = clustering_org(&ctx);
        // A gate wide enough that no request can be shed: `overloaded`
        // depends on real arrival timing and would spoil exact equality.
        let wide = ServeConfig {
            max_concurrency: 8,
            queue_depth: 16,
            ..ServeConfig::default()
        };
        let svc = NavService::new(ctx.clone(), org.clone(), NavConfig::default(), wide);
        let agents = fleet(6, 80);
        let retry = RetryPolicy::default();
        let serial = run_serial(&svc, &lake, &sc, &agents, &retry);
        // Fresh service so session ids and logs start clean.
        let svc2 = NavService::new(ctx, org, NavConfig::default(), wide);
        let conc = run_concurrent(&svc2, &lake, &sc, &agents, &retry);
        assert_eq!(serial, conc, "interleaving must not change any outcome");
    }
}
