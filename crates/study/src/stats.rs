//! Statistical machinery for the user study.
//!
//! The paper: "Because of our small sample size, we used the
//! non-parametric Mann-Whitney test to determine the significance of the
//! results and tested our two-tailed hypotheses." This module implements
//! the two-sided Mann–Whitney U test with the normal approximation and tie
//! correction (the standard large-sample form; exact for our sample sizes
//! it is conservative enough for reporting).

/// Result of a Mann–Whitney U test.
#[derive(Clone, Copy, Debug)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u1: f64,
    /// The U statistic of the second sample (`u1 + u2 = n1·n2`).
    pub u2: f64,
    /// Two-sided p-value from the tie-corrected normal approximation.
    pub p_value: f64,
    /// The z statistic.
    pub z: f64,
}

/// Two-sided Mann–Whitney U test of samples `a` vs `b`.
///
/// Returns `None` when either sample is empty or all values are tied
/// (zero variance).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    let (n1, n2) = (a.len(), b.len());
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0usize;
    while i < n {
        let mut j = i + 1;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let rank = (i + j + 1) as f64 / 2.0; // average of ranks i+1..=j
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = rank;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }
    let r1: f64 = pooled
        .iter()
        .zip(ranks.iter())
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
    let u2 = n1f * n2f - u1;
    // Normal approximation with tie correction.
    let mean = n1f * n2f / 2.0;
    let nf = n as f64;
    let var = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var <= 0.0 {
        return None;
    }
    // Continuity correction.
    let diff = u1 - mean;
    let z = if diff.abs() < 0.5 {
        0.0
    } else {
        (diff - 0.5 * diff.signum()) / var.sqrt()
    };
    let p_value = (2.0 * normal_sf(z.abs())).min(1.0);
    Some(MannWhitney { u1, u2, p_value, z })
}

/// Survival function of the standard normal (1 − Φ(x)) via the
/// Abramowitz–Stegun 7.1.26 erf approximation (|error| < 1.5e-7).
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Lower median of a sample (`None` for empty input).
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 100.0 + i as f64).collect();
        let mw = mann_whitney_u(&a, &b).unwrap();
        assert!(mw.p_value < 0.001, "p = {}", mw.p_value);
        assert_eq!(mw.u1, 0.0, "no a-value beats any b-value");
        assert_eq!(mw.u2, 225.0);
    }

    #[test]
    fn identical_distributions_are_not_significant() {
        let a: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| ((i + 5) % 10) as f64).collect();
        let mw = mann_whitney_u(&a, &b).unwrap();
        assert!(mw.p_value > 0.5, "p = {}", mw.p_value);
    }

    #[test]
    fn u_statistics_are_complementary() {
        let a = [1.0, 5.0, 9.0, 11.0];
        let b = [2.0, 3.0, 7.0];
        let mw = mann_whitney_u(&a, &b).unwrap();
        assert!((mw.u1 + mw.u2 - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn handles_ties_with_midranks() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 2.0, 4.0, 5.0];
        let mw = mann_whitney_u(&a, &b).unwrap();
        assert!(mw.p_value > 0.0 && mw.p_value <= 1.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(
            mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]).is_none(),
            "all tied"
        );
    }

    #[test]
    fn matches_known_example() {
        // Worked example: a = {7,3,6,2,4,3,5,5}, b = {3,5,6,4,6,5,7,5}.
        // Midranks: 2→1; 3,3,3→3; 4,4→5.5; 5×5→9; 6×3→13; 7×2→15.5.
        // R1 = 15.5+3+13+1+5.5+3+9+9 = 59, U1 = 59 − 8·9/2 = 23.
        let a = [7.0, 3.0, 6.0, 2.0, 4.0, 3.0, 5.0, 5.0];
        let b = [3.0, 5.0, 6.0, 4.0, 6.0, 5.0, 7.0, 5.0];
        let mw = mann_whitney_u(&a, &b).unwrap();
        assert!((mw.u1 - 23.0).abs() < 1e-9, "u1 = {}", mw.u1);
        assert!((mw.u2 - 41.0).abs() < 1e-9);
        assert!(mw.p_value > 0.05, "not significant: p = {}", mw.p_value);
    }

    #[test]
    fn normal_sf_reference_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-3);
        assert!((normal_sf(3.0) - 0.00135).abs() < 1e-4);
        assert!((normal_sf(-1.0) - 0.8413).abs() < 1e-3);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }
}
