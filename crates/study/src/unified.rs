//! Unified discovery: keyword search and navigation as interchangeable
//! modalities — the paper's concluding future-work item ("to integrate
//! keyword search and navigation as two interchangeable modalities in a
//! unified framework").
//!
//! A [`UnifiedSession`] holds both interfaces over the same lake and lets
//! a user pivot between them:
//!
//! * `search(query)` — ranked tables from the BM25(+expansion) engine;
//! * `pivot_to_table(table)` — jump the navigator *into* the organization
//!   at the best tag state containing that table ("show me where this
//!   search result lives, so I can browse its neighbourhood");
//! * `pivot_to_query(query)` — jump to the deepest state whose topic best
//!   matches a free-text query ("navigate from here");
//! * `search_here(query)` — keyword search restricted to the tables under
//!   the navigator's current state ("search within this shelf").
//!
//! The §4.4 observation that the two modalities surface largely disjoint
//! tables is exactly why the pivots matter: each modality escapes the
//! other's blind spot.

use dln_embed::{dot, EmbeddingModel, TopicAccumulator};
use dln_lake::{DataLake, TableId};
use dln_org::builder::BuiltOrganization;
use dln_org::{Navigator, StateId};
use dln_search::{KeywordSearch, SearchHit};

/// A discovery session combining an organization and a search engine.
pub struct UnifiedSession<'a> {
    lake: &'a DataLake,
    engine: &'a KeywordSearch,
    dims: &'a [BuiltOrganization],
    /// Current navigator position: (dimension index, navigator).
    cursor: Option<(usize, Navigator<'a>)>,
}

impl<'a> UnifiedSession<'a> {
    /// Open a session over a lake, its search engine, and a
    /// (multi-dimensional) organization.
    pub fn new(
        lake: &'a DataLake,
        engine: &'a KeywordSearch,
        dims: &'a [BuiltOrganization],
    ) -> UnifiedSession<'a> {
        UnifiedSession {
            lake,
            engine,
            dims,
            cursor: None,
        }
    }

    /// Keyword search over the whole lake.
    pub fn search(&self, query: &str, top_k: usize) -> Vec<SearchHit> {
        self.engine.search(query, top_k)
    }

    /// The navigator's current position, if any pivot has happened.
    pub fn position(&self) -> Option<(usize, StateId)> {
        self.cursor.as_ref().map(|(d, nav)| (*d, nav.current()))
    }

    /// Label of the current navigation state.
    pub fn position_label(&self) -> Option<String> {
        self.cursor
            .as_ref()
            .map(|(_, nav)| nav.label(nav.current()))
    }

    /// Mutable access to the navigator for ordinary browsing after a
    /// pivot (descend / backtrack / transition probabilities).
    pub fn navigator(&mut self) -> Option<&mut Navigator<'a>> {
        self.cursor.as_mut().map(|(_, nav)| nav)
    }

    /// Pivot from a search result into the organization: position the
    /// navigator at the tag state of `table` whose tag population best
    /// covers the table (ties: the most specific tag). Returns the
    /// reached state, or `None` when no dimension contains the table.
    pub fn pivot_to_table(&mut self, table: TableId) -> Option<StateId> {
        let mut best: Option<(usize, u32, usize, usize)> = None; // (dim, tag, coverage, -pop)
        for (di, dim) in self.dims.iter().enumerate() {
            let ctx = &dim.ctx;
            // Local attrs of this table in this dimension.
            let Some(local_table) = ctx.tables().iter().position(|t| t.global == table) else {
                continue;
            };
            let attrs = &ctx.tables()[local_table].attrs;
            // Candidate tags: tags of those attrs; coverage = how many of
            // the table's attrs the tag holds.
            for &a in attrs {
                for &t in &ctx.attr(a).tags {
                    let coverage = ctx
                        .tag(t)
                        .attrs
                        .iter()
                        .filter(|x| attrs.contains(x))
                        .count();
                    let pop = ctx.tag(t).attrs.len();
                    let cand = (di, t, coverage, pop);
                    let better = match &best {
                        None => true,
                        Some((_, _, bc, bp)) => coverage > *bc || (coverage == *bc && pop < *bp),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
        }
        let (di, tag, _, _) = best?;
        let dim = &self.dims[di];
        let target = dim.organization.tag_state(tag);
        let mut nav = dim.navigator();
        Self::walk_to(&mut nav, &dim.organization, target)?;
        self.cursor = Some((di, nav));
        Some(target)
    }

    /// Pivot from free text into the organization: embed the query with
    /// `model`, then greedily descend the best-matching dimension until
    /// the similarity stops improving. Returns the reached state, or
    /// `None` when the query has no embeddable token or there are no
    /// dimensions.
    pub fn pivot_to_query<M: EmbeddingModel>(&mut self, query: &str, model: &M) -> Option<StateId> {
        let mut acc = TopicAccumulator::new(model.dim());
        for tok in dln_embed::tokenize(query) {
            if let Some(v) = model.embed(&tok) {
                acc.add(v);
            }
        }
        if acc.is_empty() {
            return None;
        }
        let unit = acc.unit_mean();
        // Best dimension by root similarity.
        let di = (0..self.dims.len()).max_by(|&a, &b| {
            let sa = dot(
                &self.dims[a]
                    .organization
                    .state(self.dims[a].organization.root())
                    .unit_topic,
                &unit,
            );
            let sb = dot(
                &self.dims[b]
                    .organization
                    .state(self.dims[b].organization.root())
                    .unit_topic,
                &unit,
            );
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })?;
        let dim = &self.dims[di];
        let mut nav = dim.navigator();
        loop {
            let here = dot(&dim.organization.state(nav.current()).unit_topic, &unit);
            let Some((best, _)) = nav
                .transition_probs(&unit)
                .into_iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            else {
                break;
            };
            let next_sim = dot(&dim.organization.state(best).unit_topic, &unit);
            if next_sim <= here && nav.depth() > 0 {
                break; // similarity peaked — stop at the most specific match
            }
            nav.descend(best).ok()?;
        }
        let at = nav.current();
        self.cursor = Some((di, nav));
        Some(at)
    }

    /// Keyword search restricted to the tables under the current
    /// navigation state (empty when no pivot happened yet).
    pub fn search_here(&self, query: &str, top_k: usize) -> Vec<SearchHit> {
        let Some((di, nav)) = self.cursor.as_ref().map(|(d, n)| (*d, n)) else {
            return Vec::new();
        };
        let allowed: std::collections::BTreeSet<TableId> = {
            let dim = &self.dims[di];
            let state = dim.organization.state(nav.current());
            dim.ctx
                .tables()
                .iter()
                .filter(|t| t.attrs.iter().any(|&a| state.attrs.contains(a)))
                .map(|t| t.global)
                .collect()
        };
        self.engine
            .search(query, top_k + allowed.len())
            .into_iter()
            .filter(|h| allowed.contains(&h.table))
            .take(top_k)
            .collect()
    }

    /// Tables under the current navigation state (most covered first).
    pub fn tables_here(&self) -> Vec<(TableId, usize)> {
        self.cursor
            .as_ref()
            .map(|(_, nav)| nav.tables_here())
            .unwrap_or_default()
    }

    /// The lake under discovery.
    pub fn lake(&self) -> &DataLake {
        self.lake
    }

    fn walk_to(
        nav: &mut Navigator<'a>,
        org: &dln_org::Organization,
        target: StateId,
    ) -> Option<()> {
        // BFS for a root→target path, then descend it.
        let mut prev: Vec<Option<StateId>> = vec![None; org.n_slots()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(org.root());
        let mut found = org.root() == target;
        while let Some(s) = queue.pop_front() {
            if s == target {
                found = true;
                break;
            }
            for &c in &org.state(s).children {
                if prev[c.index()].is_none() && c != org.root() {
                    prev[c.index()] = Some(s);
                    queue.push_back(c);
                }
            }
        }
        if !found {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], org.root());
        for step in &path[1..] {
            nav.descend(*step).ok()?;
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_org::{MultiDimConfig, MultiDimOrganization, SearchConfig};
    use dln_search::ExpansionConfig;
    use dln_synth::SocrataConfig;

    struct Fixture {
        lake: DataLake,
        model: dln_embed::SyntheticEmbedding,
        engine: KeywordSearch,
        md: MultiDimOrganization,
    }

    fn fixture() -> Fixture {
        let s = SocrataConfig::small().generate();
        let engine = KeywordSearch::build_with_expansion(
            &s.lake,
            s.model.clone(),
            ExpansionConfig::default(),
        );
        let md = MultiDimOrganization::build(
            &s.lake,
            &MultiDimConfig {
                n_dims: 2,
                search: SearchConfig {
                    max_iters: 80,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        Fixture {
            lake: s.lake,
            model: s.model,
            engine,
            md,
        }
    }

    #[test]
    fn search_then_pivot_to_table() {
        let f = fixture();
        let mut session = UnifiedSession::new(&f.lake, &f.engine, &f.md.dims);
        assert!(session.position().is_none());
        // Find some table by one of its values.
        let word = f
            .lake
            .attrs()
            .iter()
            .find_map(|a| a.values.first())
            .expect("stored values")
            .clone();
        let hits = session.search(&word, 5);
        assert!(!hits.is_empty());
        let table = hits[0].table;
        let state = session.pivot_to_table(table).expect("table is organized");
        assert_eq!(session.position().map(|(_, s)| s), Some(state));
        // The pivot landed at a tag state whose shelf contains the table.
        let shelf = session.tables_here();
        assert!(
            shelf.iter().any(|(t, _)| *t == table),
            "pivot target must expose the searched table"
        );
    }

    #[test]
    fn pivot_to_query_descends_toward_topic() {
        let f = fixture();
        let mut session = UnifiedSession::new(&f.lake, &f.engine, &f.md.dims);
        // Pick a stored value the model can embed: `pivot_to_query` is
        // documented to return `None` for queries with no embeddable token,
        // and whether the *first* stored value is a numeric (unembeddable)
        // string depends on the generator's RNG stream.
        let word = f
            .lake
            .attrs()
            .iter()
            .flat_map(|a| a.values.iter())
            .find(|v| {
                dln_embed::tokenize(v)
                    .iter()
                    .any(|t| f.model.embed(t).is_some())
            })
            .expect("some stored value embeds")
            .clone();
        let state = session
            .pivot_to_query(&word, &f.model)
            .expect("embeddable query");
        let (di, _) = session.position().unwrap();
        assert!(di < f.md.dims.len());
        // Deepest-match semantics: the state is below the root.
        let dim = &f.md.dims[di];
        assert_ne!(state, dim.organization.root());
        // And browsing can continue from there.
        let nav = session.navigator().unwrap();
        assert!(nav.depth() > 0);
    }

    #[test]
    fn pivot_to_query_rejects_unembeddable_text() {
        let f = fixture();
        let mut session = UnifiedSession::new(&f.lake, &f.engine, &f.md.dims);
        assert!(session.pivot_to_query("zzz qqq 123", &f.model).is_none());
    }

    #[test]
    fn search_here_is_scoped_to_the_shelf() {
        let f = fixture();
        let mut session = UnifiedSession::new(&f.lake, &f.engine, &f.md.dims);
        // Without a pivot, scoped search returns nothing.
        assert!(session.search_here("anything", 5).is_empty());
        let word = f
            .lake
            .attrs()
            .iter()
            .find_map(|a| a.values.first())
            .unwrap()
            .clone();
        let table = session.search(&word, 1)[0].table;
        session.pivot_to_table(table).unwrap();
        let allowed: std::collections::BTreeSet<TableId> =
            session.tables_here().into_iter().map(|(t, _)| t).collect();
        let scoped = session.search_here(&word, 10);
        for hit in &scoped {
            assert!(allowed.contains(&hit.table), "scoped hit escaped the shelf");
        }
    }

    #[test]
    fn pivot_roundtrip_search_navigate_search() {
        // The full future-work loop: search → pivot → browse → scoped search.
        let f = fixture();
        let mut session = UnifiedSession::new(&f.lake, &f.engine, &f.md.dims);
        let word = f
            .lake
            .attrs()
            .iter()
            .find_map(|a| a.values.first())
            .unwrap()
            .clone();
        let table = session.search(&word, 1)[0].table;
        session.pivot_to_table(table).unwrap();
        // Browse up one level to widen the shelf, then search within it.
        let nav = session.navigator().unwrap();
        nav.backtrack();
        let wide = session.tables_here();
        assert!(!wide.is_empty());
        let scoped = session.search_here(&word, 10);
        assert!(scoped
            .iter()
            .all(|h| wide.iter().any(|(t, _)| *t == h.table)));
    }
}
