//! Result-set metrics of the user study.

use std::collections::BTreeSet;

use dln_lake::TableId;

/// Disjointness of two result sets (§4.4): `1 − |R∩T| / |R∪T|`.
/// Two empty sets are fully disjoint by convention (nothing shared).
pub fn disjointness(r: &BTreeSet<TableId>, t: &BTreeSet<TableId>) -> f64 {
    let union = r.union(t).count();
    if union == 0 {
        return 1.0;
    }
    let inter = r.intersection(t).count();
    1.0 - inter as f64 / union as f64
}

/// Pairwise disjointness over the result sets of participants who worked on
/// the same scenario with the same technique — the sample the paper's
/// Mann–Whitney test is run on.
pub fn mean_pairwise_disjointness(sets: &[BTreeSet<TableId>]) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            out.push(disjointness(&sets[i], &sets[j]));
        }
    }
    out
}

/// Fraction of tables found by *both* modalities relative to all tables
/// found by either (the paper observes ≈5% intersection between navigation
/// and keyword-search results).
pub fn overlap_fraction(nav: &BTreeSet<TableId>, search: &BTreeSet<TableId>) -> f64 {
    let union = nav.union(search).count();
    if union == 0 {
        return 0.0;
    }
    nav.intersection(search).count() as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<TableId> {
        ids.iter().map(|&i| TableId(i)).collect()
    }

    #[test]
    fn disjointness_extremes() {
        assert_eq!(disjointness(&set(&[1, 2]), &set(&[3, 4])), 1.0);
        assert_eq!(disjointness(&set(&[1, 2]), &set(&[1, 2])), 0.0);
        assert_eq!(disjointness(&set(&[]), &set(&[])), 1.0);
    }

    #[test]
    fn disjointness_partial() {
        // R={1,2,3}, T={3,4}: inter=1, union=4 → 0.75.
        assert!((disjointness(&set(&[1, 2, 3]), &set(&[3, 4])) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disjointness_is_symmetric() {
        let (a, b) = (set(&[1, 5, 9]), set(&[5, 7]));
        assert_eq!(disjointness(&a, &b), disjointness(&b, &a));
    }

    #[test]
    fn pairwise_count() {
        let sets = vec![set(&[1]), set(&[2]), set(&[3]), set(&[1, 2])];
        let d = mean_pairwise_disjointness(&sets);
        assert_eq!(d.len(), 6); // C(4,2)
    }

    #[test]
    fn overlap_fraction_values() {
        assert_eq!(overlap_fraction(&set(&[]), &set(&[])), 0.0);
        assert_eq!(overlap_fraction(&set(&[1]), &set(&[2])), 0.0);
        assert!((overlap_fraction(&set(&[1, 2]), &set(&[2, 3])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_fraction(&set(&[1]), &set(&[1])), 1.0);
    }
}
