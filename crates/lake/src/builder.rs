//! Construction of [`DataLake`]s.
//!
//! The builder enforces the lake invariants at `build()` time: dense ids,
//! tag–attribute association closure (attributes inherit their table's
//! tags, §3.2 of the paper), and topic-vector consistency (a tag's topic
//! accumulator is the merge of its attributes' accumulators, Definition 5).

use std::collections::HashMap;

use dln_embed::{tokenize, EmbeddingModel, TopicAccumulator};
use dln_fault::{DlnError, DlnResult};

use crate::model::{AttrId, Attribute, DataLake, Table, TableId, Tag, TagId};

/// Incremental builder for a [`DataLake`].
pub struct LakeBuilder {
    dim: usize,
    store_values: bool,
    tables: Vec<Table>,
    attrs: Vec<Attribute>,
    tag_labels: Vec<String>,
    tag_index: HashMap<String, TagId>,
    /// Table-level tags; every attribute of the table inherits them (§3.2).
    table_level_tags: Vec<Vec<TagId>>,
    /// Attribute-level tag associations (TagCloud-style metadata where each
    /// attribute carries its own tag, §4.1), in addition to the table-level
    /// tags that all of a table's attributes inherit (§3.2).
    attr_extra_tags: Vec<(AttrId, TagId)>,
}

impl LakeBuilder {
    /// A builder for a lake whose topic vectors have dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LakeBuilder {
            dim,
            store_values: true,
            tables: Vec::new(),
            attrs: Vec::new(),
            tag_labels: Vec::new(),
            tag_index: HashMap::new(),
            table_level_tags: Vec::new(),
            attr_extra_tags: Vec::new(),
        }
    }

    /// Whether raw values are retained on attributes (default: true).
    /// Disable for very large generated lakes where only topic vectors are
    /// needed (organization construction never reads raw values).
    pub fn set_store_values(&mut self, store: bool) -> &mut Self {
        self.store_values = store;
        self
    }

    /// Start a new table; returns its id.
    pub fn begin_table(&mut self, name: &str) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            name: name.to_string(),
            attrs: Vec::new(),
            tags: Vec::new(),
        });
        self.table_level_tags.push(Vec::new());
        id
    }

    fn intern_tag(&mut self, label: &str) -> TagId {
        let next = TagId(self.tag_labels.len() as u32);
        *self.tag_index.entry(label.to_string()).or_insert_with(|| {
            self.tag_labels.push(label.to_string());
            next
        })
    }

    /// Attach a metadata tag to a table (idempotent per table). At build
    /// time every attribute of the table inherits it (§3.2).
    pub fn add_tag(&mut self, table: TableId, label: &str) -> TagId {
        let id = self.intern_tag(label);
        let tags = &mut self.table_level_tags[table.index()];
        if !tags.contains(&id) {
            tags.push(id);
        }
        id
    }

    /// Associate a tag directly with a single attribute (rather than with
    /// its whole table). The tag also appears in the owning table's tag
    /// list, but only this attribute joins the tag's `data(t)` population.
    /// This is the metadata shape of the TagCloud benchmark (§4.1), where
    /// each attribute carries exactly one ground-truth tag.
    pub fn add_attr_tag(&mut self, attr: AttrId, label: &str) -> TagId {
        let id = self.intern_tag(label);
        if !self.attr_extra_tags.contains(&(attr, id)) {
            self.attr_extra_tags.push((attr, id));
        }
        id
    }

    /// Add a text attribute by embedding its raw values with `model`.
    /// Values are tokenized; each embeddable token contributes one vector to
    /// the topic accumulator (the paper's per-value word-embedding mean).
    ///
    /// Panics on a model/lake dimension mismatch; use
    /// [`try_add_attribute`](Self::try_add_attribute) for a recoverable
    /// error instead.
    pub fn add_attribute<'a, I, M>(
        &mut self,
        table: TableId,
        name: &str,
        values: I,
        model: &M,
    ) -> AttrId
    where
        I: IntoIterator<Item = &'a str>,
        M: EmbeddingModel,
    {
        match self.try_add_attribute(table, name, values, model) {
            Ok(id) => id,
            Err(_) => panic!("model dim must match lake dim"),
        }
    }

    /// Fallible form of [`add_attribute`](Self::add_attribute): a
    /// model/lake dimension mismatch is reported as
    /// [`DlnError::DimMismatch`] instead of panicking, so ingest can
    /// quarantine the offending table and continue.
    pub fn try_add_attribute<'a, I, M>(
        &mut self,
        table: TableId,
        name: &str,
        values: I,
        model: &M,
    ) -> DlnResult<AttrId>
    where
        I: IntoIterator<Item = &'a str>,
        M: EmbeddingModel,
    {
        if model.dim() != self.dim {
            return Err(DlnError::DimMismatch {
                context: format!("attribute `{name}`: embedding model vs lake"),
                expected: self.dim,
                got: model.dim(),
            });
        }
        let mut topic = TopicAccumulator::new(self.dim);
        let mut stored = Vec::new();
        let mut n_values = 0u32;
        for v in values {
            n_values += 1;
            for tok in tokenize(v) {
                if let Some(vec) = model.embed(&tok) {
                    topic.add(vec);
                }
            }
            if self.store_values {
                stored.push(v.to_string());
            }
        }
        self.try_add_attribute_raw(table, name, topic, n_values, stored)
    }

    /// Add an attribute whose topic accumulator was computed elsewhere
    /// (generators precompute topic vectors; CSV ingestion uses
    /// [`add_attribute`](Self::add_attribute)).
    ///
    /// Panics on a topic/lake dimension mismatch; use
    /// [`try_add_attribute_raw`](Self::try_add_attribute_raw) for a
    /// recoverable error instead.
    pub fn add_attribute_raw(
        &mut self,
        table: TableId,
        name: &str,
        topic: TopicAccumulator,
        n_values: u32,
        values: Vec<String>,
    ) -> AttrId {
        match self.try_add_attribute_raw(table, name, topic, n_values, values) {
            Ok(id) => id,
            Err(_) => panic!("topic dim must match lake dim"),
        }
    }

    /// Fallible form of [`add_attribute_raw`](Self::add_attribute_raw).
    pub fn try_add_attribute_raw(
        &mut self,
        table: TableId,
        name: &str,
        topic: TopicAccumulator,
        n_values: u32,
        values: Vec<String>,
    ) -> DlnResult<AttrId> {
        if topic.dim() != self.dim {
            return Err(DlnError::DimMismatch {
                context: format!("attribute `{name}`: topic accumulator vs lake"),
                expected: self.dim,
                got: topic.dim(),
            });
        }
        let id = AttrId(self.attrs.len() as u32);
        let unit_topic = topic.unit_mean();
        self.attrs.push(Attribute {
            name: name.to_string(),
            table,
            topic,
            unit_topic,
            n_values,
            values: if self.store_values {
                values
            } else {
                Vec::new()
            },
        });
        self.tables[table.index()].attrs.push(id);
        Ok(id)
    }

    /// Number of tables added so far.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of attributes added so far.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Finalize the lake: sorts tag lists, computes attribute–tag
    /// associations (table-level tags spread to every attribute of the
    /// table; attribute-level tags stay on their attribute), tag
    /// populations and tag topic vectors.
    pub fn build(mut self) -> DataLake {
        let n_tags = self.tag_labels.len();
        let mut attr_tags: Vec<Vec<TagId>> = vec![Vec::new(); self.attrs.len()];
        for (ti, table) in self.tables.iter().enumerate() {
            for &tg in &self.table_level_tags[ti] {
                for &a in &table.attrs {
                    attr_tags[a.index()].push(tg);
                }
            }
        }
        for &(a, tg) in &self.attr_extra_tags {
            attr_tags[a.index()].push(tg);
        }
        for v in &mut attr_tags {
            v.sort_unstable();
            v.dedup();
        }
        // A table's tags are its declared table-level tags plus every tag
        // carried by one of its attributes.
        for (ti, table) in self.tables.iter_mut().enumerate() {
            let mut tags = std::mem::take(&mut self.table_level_tags[ti]);
            for &a in &table.attrs {
                tags.extend_from_slice(&attr_tags[a.index()]);
            }
            tags.sort_unstable();
            tags.dedup();
            table.tags = tags;
        }
        let mut tag_attrs: Vec<Vec<AttrId>> = vec![Vec::new(); n_tags];
        let mut tag_tables: Vec<Vec<TableId>> = vec![Vec::new(); n_tags];
        for (ai, tags) in attr_tags.iter().enumerate() {
            for &tg in tags {
                tag_attrs[tg.index()].push(AttrId(ai as u32));
            }
        }
        for (ti, table) in self.tables.iter().enumerate() {
            for &tg in &table.tags {
                tag_tables[tg.index()].push(TableId(ti as u32));
            }
        }
        let tags: Vec<Tag> = self
            .tag_labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let mut attrs = std::mem::take(&mut tag_attrs[i]);
                attrs.sort_unstable();
                attrs.dedup();
                let mut topic = TopicAccumulator::new(self.dim);
                for &a in &attrs {
                    topic.merge(&self.attrs[a.index()].topic);
                }
                let unit_topic = topic.unit_mean();
                Tag {
                    label: label.clone(),
                    attrs,
                    tables: std::mem::take(&mut tag_tables[i]),
                    topic,
                    unit_topic,
                }
            })
            .collect();
        DataLake {
            dim: self.dim,
            tables: self.tables,
            attrs: self.attrs,
            tags,
            attr_tags,
            tag_index: self.tag_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::{SyntheticEmbedding, VocabularyConfig};

    fn model() -> SyntheticEmbedding {
        SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 3,
            words_per_topic: 5,
            dim: 8,
            sigma: 0.3,
            seed: 1,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        })
    }

    #[test]
    fn empty_lake_builds() {
        let lake = LakeBuilder::new(8).build();
        assert_eq!(lake.n_tables(), 0);
        assert_eq!(lake.n_attrs(), 0);
        assert_eq!(lake.n_tags(), 0);
    }

    #[test]
    fn duplicate_tag_labels_share_an_id() {
        let mut b = LakeBuilder::new(8);
        let t0 = b.begin_table("a");
        let t1 = b.begin_table("b");
        let g0 = b.add_tag(t0, "health");
        let g1 = b.add_tag(t1, "health");
        assert_eq!(g0, g1);
        let lake = b.build();
        assert_eq!(lake.n_tags(), 1);
        assert_eq!(lake.tag(g0).tables.len(), 2);
    }

    #[test]
    fn repeated_tag_on_same_table_is_idempotent() {
        let mut b = LakeBuilder::new(8);
        let t0 = b.begin_table("a");
        b.add_tag(t0, "x");
        b.add_tag(t0, "x");
        let lake = b.build();
        assert_eq!(lake.table(t0).tags.len(), 1);
    }

    #[test]
    fn attribute_tokenizes_and_embeds_values() {
        let m = model();
        let word = m.vocab().word(dln_embed::TokenId(0)).to_string();
        let mut b = LakeBuilder::new(m.dim());
        let t = b.begin_table("t");
        let phrase = format!("{word} and 42 unknowns");
        b.add_attribute(t, "col", [phrase.as_str()], &m);
        let lake = b.build();
        let a = lake.attr(AttrId(0));
        assert_eq!(a.n_values, 1);
        // Only `word` embeds ("and"/"unknowns" are not vocabulary words,
        // "42" is numeric and dropped by tokenize).
        assert_eq!(a.topic.count(), 1);
        assert!(a.has_topic());
    }

    #[test]
    fn store_values_flag() {
        let m = model();
        let w = m.vocab().word(dln_embed::TokenId(1)).to_string();
        let mut b = LakeBuilder::new(m.dim());
        b.set_store_values(false);
        let t = b.begin_table("t");
        b.add_attribute(t, "col", [w.as_str()], &m);
        let lake = b.build();
        assert!(lake.attr(AttrId(0)).values.is_empty());
        assert_eq!(lake.attr(AttrId(0)).n_values, 1);
    }

    #[test]
    #[should_panic(expected = "model dim must match lake dim")]
    fn dim_mismatch_panics() {
        let m = model();
        let mut b = LakeBuilder::new(99);
        let t = b.begin_table("t");
        b.add_attribute(t, "col", ["x"], &m);
    }

    #[test]
    fn try_add_attribute_reports_dim_mismatch() {
        let m = model();
        let mut b = LakeBuilder::new(99);
        let t = b.begin_table("t");
        let err = b.try_add_attribute(t, "col", ["x"], &m).unwrap_err();
        match err {
            DlnError::DimMismatch { expected, got, .. } => {
                assert_eq!(expected, 99);
                assert_eq!(got, m.dim());
            }
            other => panic!("expected DimMismatch, got {other}"),
        }
        assert_eq!(b.n_attrs(), 0, "failed add leaves the builder unchanged");
    }

    #[test]
    fn tag_attrs_deduplicated_and_sorted() {
        let m = model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let mut b = LakeBuilder::new(m.dim());
        let t = b.begin_table("t");
        b.add_tag(t, "g");
        b.add_attribute(t, "a1", [words[0].as_str()], &m);
        b.add_attribute(t, "a0", [words[1].as_str()], &m);
        let lake = b.build();
        let g = lake.tag_by_label("g").unwrap();
        assert_eq!(lake.tag(g).attrs, vec![AttrId(0), AttrId(1)]);
    }
}
