//! Core lake types: ids, tables, attributes, tags, and the [`DataLake`].

use dln_embed::TopicAccumulator;
use std::collections::HashMap;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usable index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Dense identifier of a table in a [`DataLake`].
    TableId
);
id_type!(
    /// Dense identifier of an attribute in a [`DataLake`].
    AttrId
);
id_type!(
    /// Dense identifier of a metadata tag in a [`DataLake`].
    TagId
);

/// A table: a named set of attributes plus its metadata tags.
#[derive(Clone, Debug)]
pub struct Table {
    /// Human-readable table name (e.g. the source file name).
    pub name: String,
    /// The table's text attributes, in declaration order.
    pub attrs: Vec<AttrId>,
    /// Metadata tags attached to the table (deduplicated, sorted).
    pub tags: Vec<TagId>,
}

/// A text attribute of a table, with its domain summarized as a topic
/// vector (Definition 4: the sample mean of the value embedding vectors).
#[derive(Clone, Debug)]
pub struct Attribute {
    /// Column name.
    pub name: String,
    /// Owning table.
    pub table: TableId,
    /// Topic accumulator: sum + count of embedded value vectors.
    pub topic: TopicAccumulator,
    /// Unit-normalized topic vector, cached for cosine-as-dot evaluation.
    pub unit_topic: Vec<f32>,
    /// Total number of domain values (embedded or not).
    pub n_values: u32,
    /// Raw domain values, retained when the builder is configured to store
    /// them (needed by keyword search and the user study; organization
    /// construction itself only needs the topic vector).
    pub values: Vec<String>,
}

impl Attribute {
    /// Fraction of values with embedding vectors (the paper reports ~70%
    /// fastText coverage on its lakes).
    pub fn embedding_coverage(&self) -> f64 {
        if self.n_values == 0 {
            0.0
        } else {
            self.topic.count() as f64 / self.n_values as f64
        }
    }

    /// Whether this attribute has a usable (non-zero) topic vector.
    pub fn has_topic(&self) -> bool {
        !self.topic.is_empty()
    }
}

/// A metadata tag: `data(t)` is the set of attributes that inherit it
/// (Definition 5), and its topic vector is the sample mean over the values
/// of all those attributes.
#[derive(Clone, Debug)]
pub struct Tag {
    /// Tag label (keyword / concept from the publisher metadata).
    pub label: String,
    /// `data(t)`: attributes associated with this tag (sorted).
    pub attrs: Vec<AttrId>,
    /// Tables carrying this tag (sorted).
    pub tables: Vec<TableId>,
    /// Topic accumulator over the union of the attribute populations.
    pub topic: TopicAccumulator,
    /// Unit-normalized topic vector.
    pub unit_topic: Vec<f32>,
}

/// An immutable, id-indexed data lake.
///
/// Invariants (checked by the builder, relied on everywhere):
/// * attribute/table/tag ids are dense `0..n`;
/// * `tables[a.table].attrs` contains `a`'s id for every attribute `a`;
/// * `tags[t].attrs` is exactly the union of the attrs of tables tagged `t`;
/// * topic vectors are consistent with the declared populations.
#[derive(Clone, Debug)]
pub struct DataLake {
    pub(crate) dim: usize,
    pub(crate) tables: Vec<Table>,
    pub(crate) attrs: Vec<Attribute>,
    pub(crate) tags: Vec<Tag>,
    /// Tags of each attribute (inherited from its table; sorted).
    pub(crate) attr_tags: Vec<Vec<TagId>>,
    pub(crate) tag_index: HashMap<String, TagId>,
}

impl DataLake {
    /// Embedding dimensionality of all topic vectors in this lake.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All tables.
    #[inline]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All attributes.
    #[inline]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// All tags.
    #[inline]
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Number of tables.
    #[inline]
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tags.
    #[inline]
    pub fn n_tags(&self) -> usize {
        self.tags.len()
    }

    /// A table by id.
    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// An attribute by id.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// A tag by id.
    #[inline]
    pub fn tag(&self, id: TagId) -> &Tag {
        &self.tags[id.index()]
    }

    /// The tags inherited by an attribute (sorted).
    #[inline]
    pub fn attr_tags(&self, id: AttrId) -> &[TagId] {
        &self.attr_tags[id.index()]
    }

    /// Look up a tag id by its label.
    pub fn tag_by_label(&self, label: &str) -> Option<TagId> {
        self.tag_index.get(label).copied()
    }

    /// Iterate over attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Iterate over table ids.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// Iterate over tag ids.
    pub fn tag_ids(&self) -> impl Iterator<Item = TagId> {
        (0..self.tags.len() as u32).map(TagId)
    }

    /// Total number of attribute–tag associations (the paper reports 264,199
    /// for the Socrata crawl).
    pub fn n_attr_tag_assocs(&self) -> usize {
        self.attr_tags.iter().map(Vec::len).sum()
    }

    /// Project the lake onto a subset of tables, re-densifying all ids.
    /// Tags with no remaining attributes are dropped. Used to carve the
    /// user-study sub-lakes (Socrata-2 / Socrata-3 in §4.1) out of a full
    /// lake.
    pub fn project(&self, keep_tables: &[TableId]) -> DataLake {
        let mut b = crate::builder::LakeBuilder::new(self.dim);
        b.set_store_values(true);
        for &tid in keep_tables {
            let table = self.table(tid);
            let nt = b.begin_table(&table.name);
            for &aid in &table.attrs {
                let a = self.attr(aid);
                let na =
                    b.add_attribute_raw(nt, &a.name, a.topic.clone(), a.n_values, a.values.clone());
                // Re-attach tags at the attribute level, which exactly
                // preserves the attribute–tag association structure whether
                // the original tags were table- or attribute-scoped.
                for &tg in self.attr_tags(aid) {
                    b.add_attr_tag(na, &self.tag(tg).label);
                }
            }
        }
        b.build()
    }

    /// Split the lake's tables into groups by tag-cluster assignment:
    /// `tag_group[t]` maps each tag to a group in `0..n_groups`; a table goes
    /// to the group owning the majority of its tags (ties → lowest group).
    /// Tables without tags go to group 0.
    pub fn tables_by_tag_group(&self, tag_group: &[usize], n_groups: usize) -> Vec<Vec<TableId>> {
        assert_eq!(tag_group.len(), self.n_tags());
        let mut groups = vec![Vec::new(); n_groups];
        let mut counts = vec![0usize; n_groups];
        for tid in self.table_ids() {
            counts.iter_mut().for_each(|c| *c = 0);
            for &tg in &self.table(tid).tags {
                counts[tag_group[tg.index()]] += 1;
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(g, _)| g)
                .unwrap_or(0);
            groups[best].push(tid);
        }
        groups
    }

    /// Lake-wide statistics.
    pub fn stats(&self) -> crate::stats::LakeStats {
        crate::stats::LakeStats::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LakeBuilder;
    use dln_embed::{
        EmbeddingModel, SyntheticEmbedding, SyntheticEmbeddingConfig, VocabularyConfig,
    };

    fn tiny_model() -> SyntheticEmbedding {
        SyntheticEmbedding::new(&SyntheticEmbeddingConfig {
            vocab: VocabularyConfig {
                n_topics: 4,
                words_per_topic: 8,
                dim: 16,
                sigma: 0.3,
                seed: 3,
                n_supertopics: 0,
                supertopic_sigma: 0.7,
            },
            coverage: 1.0,
            coverage_seed: 0,
        })
    }

    fn tiny_lake() -> DataLake {
        let m = tiny_model();
        let words: Vec<String> = m.vocab().iter().map(|(_, w)| w.to_string()).collect();
        let mut b = LakeBuilder::new(m.dim());
        let t0 = b.begin_table("fisheries");
        b.add_tag(t0, "fish");
        b.add_tag(t0, "ocean");
        b.add_attribute(t0, "species", words[0..4].iter().map(String::as_str), &m);
        b.add_attribute(t0, "region", words[8..12].iter().map(String::as_str), &m);
        let t1 = b.begin_table("inspections");
        b.add_tag(t1, "fish");
        b.add_attribute(t1, "agency", words[16..20].iter().map(String::as_str), &m);
        b.build()
    }

    #[test]
    fn ids_are_dense_and_crosslinked() {
        let lake = tiny_lake();
        assert_eq!(lake.n_tables(), 2);
        assert_eq!(lake.n_attrs(), 3);
        assert_eq!(lake.n_tags(), 2);
        for aid in lake.attr_ids() {
            let a = lake.attr(aid);
            assert!(lake.table(a.table).attrs.contains(&aid));
        }
    }

    #[test]
    fn tags_collect_attrs_of_tagged_tables() {
        let lake = tiny_lake();
        let fish = lake.tag_by_label("fish").unwrap();
        let ocean = lake.tag_by_label("ocean").unwrap();
        // "fish" tags both tables → all 3 attributes.
        assert_eq!(lake.tag(fish).attrs.len(), 3);
        assert_eq!(lake.tag(fish).tables.len(), 2);
        // "ocean" tags only the first table → its 2 attributes.
        assert_eq!(lake.tag(ocean).attrs.len(), 2);
    }

    #[test]
    fn attrs_inherit_table_tags() {
        let lake = tiny_lake();
        let fish = lake.tag_by_label("fish").unwrap();
        let ocean = lake.tag_by_label("ocean").unwrap();
        let t0 = TableId(0);
        for &aid in &lake.table(t0).attrs {
            assert_eq!(lake.attr_tags(aid), &[fish, ocean]);
        }
        assert_eq!(lake.n_attr_tag_assocs(), 2 * 2 + 1);
    }

    #[test]
    fn tag_topic_is_union_of_attr_topics() {
        let lake = tiny_lake();
        let ocean = lake.tag_by_label("ocean").unwrap();
        let tag = lake.tag(ocean);
        let expected: u64 = tag.attrs.iter().map(|&a| lake.attr(a).topic.count()).sum();
        assert_eq!(tag.topic.count(), expected);
    }

    #[test]
    fn unit_topics_are_normalized() {
        let lake = tiny_lake();
        for a in lake.attrs() {
            let n = dln_embed::l2_norm(&a.unit_topic);
            assert!((n - 1.0).abs() < 1e-5);
        }
        for t in lake.tags() {
            let n = dln_embed::l2_norm(&t.unit_topic);
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn project_keeps_subset_and_remaps() {
        let lake = tiny_lake();
        let sub = lake.project(&[TableId(1)]);
        assert_eq!(sub.n_tables(), 1);
        assert_eq!(sub.n_attrs(), 1);
        assert_eq!(sub.n_tags(), 1, "tag 'ocean' should be dropped");
        assert!(sub.tag_by_label("fish").is_some());
        assert!(sub.tag_by_label("ocean").is_none());
        assert_eq!(sub.attr(AttrId(0)).name, "agency");
        assert_eq!(sub.attr(AttrId(0)).table, TableId(0));
    }

    #[test]
    fn project_preserves_topic_vectors() {
        let lake = tiny_lake();
        let sub = lake.project(&[TableId(0)]);
        let orig = lake.attr(AttrId(0));
        let proj = sub.attr(AttrId(0));
        assert_eq!(orig.topic.count(), proj.topic.count());
        assert_eq!(orig.unit_topic, proj.unit_topic);
    }

    #[test]
    fn tables_by_tag_group_majority() {
        let lake = tiny_lake();
        let fish = lake.tag_by_label("fish").unwrap();
        // Put "fish" in group 1, "ocean" in group 0.
        let mut groups = vec![0usize; lake.n_tags()];
        groups[fish.index()] = 1;
        let split = lake.tables_by_tag_group(&groups, 2);
        // table 0 has one tag in each group → tie → lowest group (0);
        // table 1 has only "fish" → group 1.
        assert_eq!(split[0], vec![TableId(0)]);
        assert_eq!(split[1], vec![TableId(1)]);
    }
}
