//! CDC change stream for dynamic lakes: durable table add / remove /
//! retag events and the pure replay fold that materializes the lake they
//! describe.
//!
//! Production lakes ingest continuously; the organization must follow
//! without a full rebuild (DESIGN.md §5i). The contract here mirrors the
//! feedback evidence log of `org::reopt`:
//!
//! * [`ChangeEvent`] — one ingest-side mutation, identified by *table
//!   name* (names are the stable identity across lake rebuilds; dense
//!   [`TableId`](crate::TableId)s are not). `TableRetagged` replaces the
//!   table's **entire** tag assignment: afterwards every attribute of the
//!   table carries exactly the new labels.
//! * [`ChangeLog`] — a durable, checksummed log: a sealed snapshot at
//!   `<base>` (published via [`dln_persist::atomic_write`], so one
//!   previous generation always survives at `<base>.prev`) plus a WAL at
//!   `<base>.wal` of `[len:u64][body][fnv1a(body):u64]` frames with
//!   `body = [seq:u64][event bytes]`, fsynced per append. Appends are
//!   **ack-after-durable**: the sequence number is returned only once the
//!   frame is on disk, so a torn append (including the injected
//!   `churn.log_torn` tear) is never acknowledged and is discarded by the
//!   next append or open. A torn WAL tail is truncated on open with a
//!   warning; a *gap* in sequence numbers is [`DlnError::Corrupt`] (frames
//!   don't tear in the middle of a file — a gap means lost data). A frame
//!   whose checksum passes but whose event payload doesn't decode is
//!   **quarantined**: skipped with a counter, its sequence number still
//!   advances, and everything after it still applies.
//! * [`replay`] — the pure fold `(seed lake, events) → lake`. Replay is
//!   deterministic and idempotent, which is what lets a crashed maintainer
//!   reconstruct the exact lake any committed plan was made against from
//!   `(seed, events ≤ applied_seq)` alone. Unlike compaction of the
//!   evidence log, [`ChangeLog::compact`] keeps the **full** event history
//!   in the snapshot — the seed lake is the replay anchor, so no event is
//!   ever folded away.
//!
//! Apply-level no-ops (removing an absent table, re-adding an existing
//! name, retagging an absent table) are *not* errors: CDC producers
//! legitimately duplicate on retry. The fold counts them so exact-delivery
//! accounting ("no event lost, none double-applied") stays testable.

use std::collections::HashMap;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use dln_embed::TopicAccumulator;
use dln_fault::{DlnError, DlnResult};
use dln_persist as persist;

use crate::builder::LakeBuilder;
use crate::model::DataLake;

/// Magic prefix of a change-log snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"DLNCDCSN";
/// Change-log snapshot format version.
const SNAP_VERSION: u8 = 1;

/// One attribute of a [`ChangeEvent::TableAdded`] payload.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrChange {
    /// Column name.
    pub name: String,
    /// Precomputed topic accumulator (CDC producers embed upstream).
    pub topic: TopicAccumulator,
    /// Total number of domain values (embedded or not).
    pub n_values: u32,
    /// Attribute-level tag labels (in addition to the table-level tags).
    pub tags: Vec<String>,
}

/// One ingest-side lake mutation, identified by table name.
#[derive(Clone, Debug, PartialEq)]
pub enum ChangeEvent {
    /// A new table arrived with its attributes and tags.
    TableAdded {
        /// Table name (the cross-rebuild identity).
        name: String,
        /// Table-level tag labels; every attribute inherits them.
        tags: Vec<String>,
        /// The table's attributes with precomputed topic accumulators.
        attrs: Vec<AttrChange>,
    },
    /// A table was dropped from the lake.
    TableRemoved {
        /// Name of the removed table.
        name: String,
    },
    /// A table's tag assignment was replaced: afterwards every attribute
    /// of the table carries exactly `tags`.
    TableRetagged {
        /// Name of the retagged table.
        name: String,
        /// The table's new (complete) tag label set.
        tags: Vec<String>,
    },
}

fn put_str(w: &mut persist::Writer, s: &str) {
    w.u32(s.len() as u32);
    w.bytes(s.as_bytes());
}

fn get_str(r: &mut persist::Reader<'_>, context: &str) -> DlnResult<String> {
    let n = r.u32()? as usize;
    if n > r.total_len() {
        return Err(DlnError::corrupt(context, "implausible string length"));
    }
    let bytes = r.take(n)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| DlnError::corrupt(context, "string is not valid UTF-8"))
}

fn put_labels(w: &mut persist::Writer, labels: &[String]) {
    w.u32(labels.len() as u32);
    for l in labels {
        put_str(w, l);
    }
}

fn get_labels(r: &mut persist::Reader<'_>, context: &str) -> DlnResult<Vec<String>> {
    let n = r.u32()? as usize;
    if n > r.total_len() {
        return Err(DlnError::corrupt(context, "implausible label count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_str(r, context)?);
    }
    Ok(out)
}

impl ChangeEvent {
    /// The name of the table this event concerns.
    pub fn table_name(&self) -> &str {
        match self {
            ChangeEvent::TableAdded { name, .. }
            | ChangeEvent::TableRemoved { name }
            | ChangeEvent::TableRetagged { name, .. } => name,
        }
    }

    /// Every tag label this event mentions (table- and attribute-level).
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        match self {
            ChangeEvent::TableAdded { tags, attrs, .. } => {
                out.extend(tags.iter().map(String::as_str));
                for a in attrs {
                    out.extend(a.tags.iter().map(String::as_str));
                }
            }
            ChangeEvent::TableRemoved { .. } => {}
            ChangeEvent::TableRetagged { tags, .. } => {
                out.extend(tags.iter().map(String::as_str));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Serialize to the little-endian record format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = persist::Writer::with_capacity(64);
        match self {
            ChangeEvent::TableAdded { name, tags, attrs } => {
                w.u8(1);
                put_str(&mut w, name);
                put_labels(&mut w, tags);
                w.u32(attrs.len() as u32);
                for a in attrs {
                    put_str(&mut w, &a.name);
                    w.u32(a.n_values);
                    w.u64(a.topic.count());
                    w.u32(a.topic.dim() as u32);
                    for &v in a.topic.sum() {
                        w.u32(v.to_bits());
                    }
                    put_labels(&mut w, &a.tags);
                }
            }
            ChangeEvent::TableRemoved { name } => {
                w.u8(2);
                put_str(&mut w, name);
            }
            ChangeEvent::TableRetagged { name, tags } => {
                w.u8(3);
                put_str(&mut w, name);
                put_labels(&mut w, tags);
            }
        }
        // Unsealed: the WAL frame / snapshot carries the checksum.
        let mut bytes = w.seal();
        bytes.truncate(bytes.len() - 8);
        bytes
    }

    /// Decode one event; a failure here on a checksum-valid frame is the
    /// quarantine path (version skew or a buggy producer, not a torn
    /// write).
    pub fn decode(bytes: &[u8], context: &str) -> DlnResult<ChangeEvent> {
        let mut r = persist::Reader::new(bytes, 0, context);
        let ev = match r.u8()? {
            1 => {
                let name = get_str(&mut r, context)?;
                let tags = get_labels(&mut r, context)?;
                let n_attrs = r.u32()? as usize;
                if n_attrs > bytes.len() {
                    return Err(DlnError::corrupt(context, "implausible attr count"));
                }
                let mut attrs = Vec::with_capacity(n_attrs);
                for _ in 0..n_attrs {
                    let name = get_str(&mut r, context)?;
                    let n_values = r.u32()?;
                    let count = r.u64()?;
                    let dim = r.u32()? as usize;
                    if dim.saturating_mul(4) > bytes.len() {
                        return Err(DlnError::corrupt(context, "implausible topic dim"));
                    }
                    let mut sum = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        sum.push(f32::from_bits(r.u32()?));
                    }
                    let tags = get_labels(&mut r, context)?;
                    attrs.push(AttrChange {
                        name,
                        topic: TopicAccumulator::from_sum(sum, count),
                        n_values,
                        tags,
                    });
                }
                ChangeEvent::TableAdded { name, tags, attrs }
            }
            2 => ChangeEvent::TableRemoved {
                name: get_str(&mut r, context)?,
            },
            3 => ChangeEvent::TableRetagged {
                name: get_str(&mut r, context)?,
                tags: get_labels(&mut r, context)?,
            },
            k => {
                return Err(DlnError::corrupt(
                    context,
                    format!("unknown change-event kind {k}"),
                ))
            }
        };
        if r.pos() != bytes.len() {
            return Err(DlnError::corrupt(context, "trailing bytes after event"));
        }
        Ok(ev)
    }
}

/// The durable CDC change log: full event history as a sealed snapshot
/// plus a WAL tail. See the module docs for the on-disk contract.
#[derive(Debug)]
pub struct ChangeLog {
    snap_path: PathBuf,
    wal_path: PathBuf,
    /// Full decoded history, `(seq, event)`, ascending; quarantined
    /// sequence numbers are absent.
    events: Vec<(u64, ChangeEvent)>,
    /// Last durably appended (or quarantine-skipped) sequence number.
    last_seq: u64,
    /// Last sequence number covered by the on-disk snapshot.
    snap_seq: u64,
    /// Length of the known-valid WAL prefix (bytes).
    clean_len: u64,
    /// Checksum-valid frames whose event payload failed to decode.
    quarantined: u64,
}

impl ChangeLog {
    /// Open (or create) the change log rooted at `base`; torn WAL tails
    /// are truncated, a torn snapshot falls back to `<base>.prev`, a
    /// sequence gap is [`DlnError::Corrupt`].
    pub fn open(base: &Path) -> DlnResult<ChangeLog> {
        let snap_path = base.to_path_buf();
        let mut wal_os = base.as_os_str().to_os_string();
        wal_os.push(".wal");
        let wal_path = PathBuf::from(wal_os);

        let (mut events, snap_seq, mut quarantined) =
            if snap_path.exists() || persist::prev_path(&snap_path).exists() {
                persist::load_with_fallback(&snap_path, "change-log snapshot", Self::load_snapshot)?
            } else {
                (Vec::new(), 0, 0)
            };

        let mut last_seq = snap_seq;
        let mut clean_len = 0u64;
        if wal_path.exists() {
            let bytes = std::fs::read(&wal_path)
                .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
            let context = wal_path.display().to_string();
            let mut pos = 0usize;
            loop {
                if pos + 8 > bytes.len() {
                    break; // clean end or torn length word
                }
                let len = u64::from_le_bytes(
                    bytes[pos..pos + 8]
                        .try_into()
                        .map_err(|_| DlnError::corrupt(&context, "frame length"))?,
                ) as usize;
                let Some(frame_end) = pos
                    .checked_add(8)
                    .and_then(|p| p.checked_add(len))
                    .and_then(|p| p.checked_add(8))
                else {
                    break; // implausible length — torn tail
                };
                if frame_end > bytes.len() {
                    break; // torn tail
                }
                let body = &bytes[pos + 8..pos + 8 + len];
                let stored = u64::from_le_bytes(
                    bytes[pos + 8 + len..frame_end]
                        .try_into()
                        .map_err(|_| DlnError::corrupt(&context, "frame checksum"))?,
                );
                if persist::fnv1a(body) != stored {
                    break; // torn or corrupt frame — truncate here
                }
                let mut r = persist::Reader::new(body, 0, &context);
                let seq = r.u64()?;
                if seq > snap_seq {
                    if seq != last_seq + 1 {
                        return Err(DlnError::corrupt(
                            &context,
                            format!(
                                "change-log sequence gap: expected {}, found {seq}",
                                last_seq + 1
                            ),
                        ));
                    }
                    // A checksum-valid frame with an undecodable payload is
                    // quarantined: the write was not torn (the checksum
                    // covers every payload byte), so skipping it cannot
                    // mask data loss — later frames still apply.
                    match ChangeEvent::decode(&body[r.pos()..], &context) {
                        Ok(ev) => events.push((seq, ev)),
                        Err(e) => {
                            eprintln!("warning: quarantining change-log frame seq {seq} ({e})");
                            quarantined += 1;
                        }
                    }
                    last_seq = seq;
                }
                pos = frame_end;
                clean_len = pos as u64;
            }
            if (clean_len as usize) < bytes.len() {
                eprintln!(
                    "warning: change-log WAL {} has a torn tail ({} of {} bytes valid); truncating",
                    wal_path.display(),
                    clean_len,
                    bytes.len()
                );
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
                f.set_len(clean_len)
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
                f.sync_all()
                    .map_err(|e| DlnError::io(wal_path.display().to_string(), e))?;
            }
        }
        Ok(ChangeLog {
            snap_path,
            wal_path,
            events,
            last_seq,
            snap_seq,
            clean_len,
            quarantined,
        })
    }

    #[allow(clippy::type_complexity)]
    fn load_snapshot(path: &Path) -> DlnResult<(Vec<(u64, ChangeEvent)>, u64, u64)> {
        let bytes = std::fs::read(path).map_err(|e| DlnError::io(path.display().to_string(), e))?;
        let context = path.display().to_string();
        let payload = persist::verify_sealed(&bytes, &context)?;
        let mut r = persist::Reader::new(payload, 0, &context);
        if r.take(8)? != SNAP_MAGIC {
            return Err(DlnError::corrupt(&context, "not a change-log snapshot"));
        }
        let version = r.u8()?;
        if version != SNAP_VERSION {
            return Err(DlnError::corrupt(
                &context,
                format!("unsupported change-log snapshot version {version}"),
            ));
        }
        let seq = r.u64()?;
        let quarantined = r.u64()?;
        let n = r.u64()? as usize;
        if n > payload.len() {
            return Err(DlnError::corrupt(&context, "implausible event count"));
        }
        let mut events = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            let eseq = r.u64()?;
            if eseq <= prev || eseq > seq {
                return Err(DlnError::corrupt(&context, "snapshot sequence disorder"));
            }
            prev = eseq;
            let len = r.len_prefix()?;
            let ev = ChangeEvent::decode(r.take(len)?, &context)?;
            events.push((eseq, ev));
        }
        if r.pos() != payload.len() {
            return Err(DlnError::corrupt(&context, "trailing bytes"));
        }
        Ok((events, seq, quarantined))
    }

    /// Durably append one event, returning its sequence number. The frame
    /// is fsynced before this returns `Ok`; on any error (including the
    /// injected `churn.log_torn` tear) nothing is acknowledged and the
    /// write is discarded by the next append or open.
    pub fn append(&mut self, event: &ChangeEvent) -> DlnResult<u64> {
        let seq = self.last_seq + 1;
        let ev_bytes = event.encode();
        let mut body = Vec::with_capacity(8 + ev_bytes.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&ev_bytes);
        let mut frame = Vec::with_capacity(16 + body.len());
        frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&persist::fnv1a(&body).to_le_bytes());

        let torn = dln_fault::should_fail("churn.log_torn");
        let write_len = if torn {
            frame.len() * 2 / 3
        } else {
            frame.len()
        };
        let io_err = |e| DlnError::io(self.wal_path.display().to_string(), e);
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.wal_path)
            .map_err(io_err)?;
        // Discard any torn tail a previous failed append left behind.
        f.set_len(self.clean_len).map_err(io_err)?;
        f.seek(SeekFrom::Start(self.clean_len)).map_err(io_err)?;
        f.write_all(&frame[..write_len]).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        if torn {
            return Err(DlnError::corrupt(
                self.wal_path.display().to_string(),
                "injected torn change-log append (churn.log_torn)",
            ));
        }
        self.clean_len += frame.len() as u64;
        self.last_seq = seq;
        self.events.push((seq, event.clone()));
        Ok(seq)
    }

    /// Atomically fold the WAL into the snapshot and truncate it. The
    /// snapshot keeps the *full* event history (the seed lake is the
    /// replay anchor); a crash between the two steps is safe because
    /// frames the snapshot already covers are skipped by sequence number
    /// on the next open.
    pub fn compact(&mut self) -> DlnResult<()> {
        let mut w = persist::Writer::with_capacity(64 + 32 * self.events.len());
        w.bytes(SNAP_MAGIC);
        w.u8(SNAP_VERSION);
        w.u64(self.last_seq);
        w.u64(self.quarantined);
        w.u64(self.events.len() as u64);
        for (seq, ev) in &self.events {
            w.u64(*seq);
            let bytes = ev.encode();
            w.u64(bytes.len() as u64);
            w.bytes(&bytes);
        }
        persist::atomic_write(&self.snap_path, &w.seal())?;
        self.snap_seq = self.last_seq;
        let io_err = |e| DlnError::io(self.wal_path.display().to_string(), e);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.wal_path)
            .map_err(io_err)?;
        f.set_len(0).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        self.clean_len = 0;
        Ok(())
    }

    /// The full durable history: `(seq, event)`, ascending. Quarantined
    /// sequence numbers are absent.
    pub fn events(&self) -> &[(u64, ChangeEvent)] {
        &self.events
    }

    /// The events with sequence number ≤ `seq`, in order.
    pub fn events_through(&self, seq: u64) -> impl Iterator<Item = &ChangeEvent> {
        self.events
            .iter()
            .take_while(move |(s, _)| *s <= seq)
            .map(|(_, e)| e)
    }

    /// Sequence number of the last durably appended frame.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Checksum-valid frames whose event payload failed to decode.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }
}

/// What a [`replay`] fold did, beyond the lake itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events applied with effect.
    pub applied: u64,
    /// Apply-level no-ops: remove of an absent table, add of an existing
    /// name, retag of an absent table (CDC retry duplicates).
    pub noops: u64,
}

struct AttrSpec {
    name: String,
    topic: TopicAccumulator,
    n_values: u32,
    values: Vec<String>,
    tags: Vec<String>,
}

struct TableSpec {
    name: String,
    /// Table-level labels (only populated where attribute-level attachment
    /// cannot represent them: attribute-less tables, and retagged or
    /// event-added tables).
    table_tags: Vec<String>,
    attrs: Vec<AttrSpec>,
}

/// Materialize the lake described by `(seed, events)`: a pure,
/// deterministic, idempotent fold. Table identity is the name; events
/// apply in iteration order. Tag ids in the result are assigned by first
/// appearance in (table, attribute) order, which preserves the seed
/// lake's relative tag order for unchanged tables — `replay(seed, [])`
/// reproduces the seed lake's universe exactly (modulo dropped empties).
pub fn replay<'a>(
    seed: &DataLake,
    events: impl IntoIterator<Item = &'a ChangeEvent>,
) -> (DataLake, ReplayStats) {
    // Seed import: re-attach every tag association at the attribute level
    // (exactly what the lake's own `project` does), so `attr_tags` — the
    // only association downstream consumers read — is reproduced verbatim.
    // Tables without attributes keep their tags at table level.
    let mut specs: Vec<Option<TableSpec>> = Vec::with_capacity(seed.n_tables());
    let mut by_name: HashMap<String, usize> = HashMap::with_capacity(seed.n_tables());
    for tid in seed.table_ids() {
        let table = seed.table(tid);
        let table_tags = if table.attrs.is_empty() {
            table
                .tags
                .iter()
                .map(|&tg| seed.tag(tg).label.clone())
                .collect()
        } else {
            Vec::new()
        };
        let attrs = table
            .attrs
            .iter()
            .map(|&aid| {
                let a = seed.attr(aid);
                AttrSpec {
                    name: a.name.clone(),
                    topic: a.topic.clone(),
                    n_values: a.n_values,
                    values: a.values.clone(),
                    tags: seed
                        .attr_tags(aid)
                        .iter()
                        .map(|&tg| seed.tag(tg).label.clone())
                        .collect(),
                }
            })
            .collect();
        by_name.insert(table.name.clone(), specs.len());
        specs.push(Some(TableSpec {
            name: table.name.clone(),
            table_tags,
            attrs,
        }));
    }
    let mut stats = ReplayStats::default();
    for ev in events {
        match ev {
            ChangeEvent::TableAdded { name, tags, attrs } => {
                if by_name.contains_key(name) {
                    stats.noops += 1;
                    continue;
                }
                by_name.insert(name.clone(), specs.len());
                specs.push(Some(TableSpec {
                    name: name.clone(),
                    table_tags: tags.clone(),
                    attrs: attrs
                        .iter()
                        .map(|a| AttrSpec {
                            name: a.name.clone(),
                            topic: a.topic.clone(),
                            n_values: a.n_values,
                            values: Vec::new(),
                            tags: a.tags.clone(),
                        })
                        .collect(),
                }));
                stats.applied += 1;
            }
            ChangeEvent::TableRemoved { name } => {
                let Some(i) = by_name.remove(name) else {
                    stats.noops += 1;
                    continue;
                };
                specs[i] = None;
                stats.applied += 1;
            }
            ChangeEvent::TableRetagged { name, tags } => {
                let Some(&i) = by_name.get(name) else {
                    stats.noops += 1;
                    continue;
                };
                let Some(spec) = specs[i].as_mut() else {
                    stats.noops += 1;
                    continue;
                };
                spec.table_tags = tags.clone();
                for a in &mut spec.attrs {
                    a.tags.clear();
                }
                stats.applied += 1;
            }
        }
    }
    let mut b = LakeBuilder::new(seed.dim());
    for spec in specs.into_iter().flatten() {
        let t = b.begin_table(&spec.name);
        for label in &spec.table_tags {
            b.add_tag(t, label);
        }
        for a in spec.attrs {
            let aid = match b.try_add_attribute_raw(t, &a.name, a.topic, a.n_values, a.values) {
                Ok(aid) => aid,
                // Unreachable by construction (seed and events share the
                // seed's dimension), but replay must never panic.
                Err(e) => {
                    eprintln!(
                        "warning: replay dropped attribute {}.{} ({e})",
                        spec.name, a.name
                    );
                    continue;
                }
            };
            for label in &a.tags {
                b.add_attr_tag(aid, label);
            }
        }
    }
    (b.build(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::TopicAccumulator;

    fn topic(bias: f32) -> TopicAccumulator {
        TopicAccumulator::from_sum(vec![bias, 1.0 - bias, 0.25], 2)
    }

    fn attr(name: &str, bias: f32, tags: &[&str]) -> AttrChange {
        AttrChange {
            name: name.to_string(),
            topic: topic(bias),
            n_values: 3,
            tags: tags.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn added(name: &str, tags: &[&str], attrs: Vec<AttrChange>) -> ChangeEvent {
        ChangeEvent::TableAdded {
            name: name.to_string(),
            tags: tags.iter().map(|s| s.to_string()).collect(),
            attrs,
        }
    }

    fn seed_lake() -> DataLake {
        let mut b = LakeBuilder::new(3);
        let t0 = b.begin_table("alpha");
        let a0 = b.add_attribute_raw(t0, "a", topic(0.9), 3, Vec::new());
        b.add_attr_tag(a0, "health");
        let t1 = b.begin_table("beta");
        let a1 = b.add_attribute_raw(t1, "b", topic(0.1), 3, Vec::new());
        b.add_attr_tag(a1, "transit");
        b.build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dln_cdc_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn event_encode_decode_roundtrip() {
        let events = vec![
            added("t", &["x", "y"], vec![attr("c", 0.5, &["z"])]),
            ChangeEvent::TableRemoved {
                name: "gone".to_string(),
            },
            ChangeEvent::TableRetagged {
                name: "t".to_string(),
                tags: vec!["only".to_string()],
            },
        ];
        for ev in &events {
            let bytes = ev.encode();
            let back = ChangeEvent::decode(&bytes, "test").expect("decode");
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn every_flipped_byte_is_rejected_or_changes_the_event() {
        let ev = added("t", &["x"], vec![attr("c", 0.5, &["z"])]);
        let bytes = ev.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            // A flip either fails to decode (quarantine path) or decodes
            // to a *different* event — never silently to the same one.
            if let Ok(back) = ChangeEvent::decode(&bad, "test") {
                assert_ne!(back, ev, "flip at {i} must not be invisible");
            }
        }
    }

    #[test]
    fn log_roundtrip_compaction_and_full_history() {
        let dir = tmp("log");
        let base = dir.join("cdc");
        let _clean = dln_fault::scoped("").expect("clean scope");
        let mut log = ChangeLog::open(&base).expect("open");
        assert_eq!(log.last_seq(), 0);
        log.append(&added("t1", &["x"], vec![attr("a", 0.2, &[])]))
            .expect("append 1");
        log.append(&ChangeEvent::TableRemoved {
            name: "t1".to_string(),
        })
        .expect("append 2");
        assert_eq!(log.last_seq(), 2);
        // Reopen: WAL replays.
        let log2 = ChangeLog::open(&base).expect("reopen");
        assert_eq!(log2.last_seq(), 2);
        assert_eq!(log2.events().len(), 2);
        // Compact keeps the full history; later appends extend it.
        log.compact().expect("compact");
        log.append(&ChangeEvent::TableRetagged {
            name: "t2".to_string(),
            tags: vec![],
        })
        .expect("append 3");
        let log3 = ChangeLog::open(&base).expect("reopen after compact");
        assert_eq!(log3.last_seq(), 3);
        assert_eq!(log3.events().len(), 3, "compaction folds nothing away");
        assert_eq!(log3.events()[0].0, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_is_not_acked_and_recovers() {
        let dir = tmp("torn");
        let base = dir.join("cdc");
        let mut log;
        {
            let _clean = dln_fault::scoped("").expect("clean scope");
            log = ChangeLog::open(&base).expect("open");
            log.append(&added("t1", &[], vec![])).expect("append 1");
        }
        {
            let _torn = dln_fault::scoped("churn.log_torn:1.0:0").expect("torn scope");
            let err = log.append(&added("t2", &[], vec![])).unwrap_err();
            assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
        }
        assert_eq!(log.last_seq(), 1, "torn append not acked");
        {
            let _clean = dln_fault::scoped("").expect("clean scope");
            // Same handle recovers by rewinding to the clean prefix…
            log.append(&added("t3", &[], vec![]))
                .expect("append after torn");
            assert_eq!(log.last_seq(), 2);
            // …and a fresh open truncates any torn tail left on disk.
            let log2 = ChangeLog::open(&base).expect("reopen");
            assert_eq!(log2.last_seq(), 2);
            assert_eq!(log2.events()[1].1.table_name(), "t3");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn raw_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u64).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&persist::fnv1a(&body).to_le_bytes());
        frame
    }

    #[test]
    fn sequence_gap_is_typed_corrupt() {
        let dir = tmp("gap");
        let base = dir.join("cdc");
        let ev = added("t", &[], vec![]);
        let mut wal = raw_frame(1, &ev.encode());
        wal.extend_from_slice(&raw_frame(3, &ev.encode())); // 2 missing
        let mut wal_path = base.as_os_str().to_os_string();
        wal_path.push(".wal");
        std::fs::write(&wal_path, &wal).expect("write wal");
        let err = ChangeLog::open(&base).unwrap_err();
        assert!(matches!(err, DlnError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("sequence gap"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undecodable_checksummed_frame_is_quarantined_not_fatal() {
        let dir = tmp("quarantine");
        let base = dir.join("cdc");
        let good = added("t", &[], vec![]);
        let mut wal = raw_frame(1, &good.encode());
        wal.extend_from_slice(&raw_frame(2, &[0xFF, 0x00, 0x01])); // junk payload
        wal.extend_from_slice(&raw_frame(3, &good.encode()));
        let mut wal_path = base.as_os_str().to_os_string();
        wal_path.push(".wal");
        std::fs::write(&wal_path, &wal).expect("write wal");
        let log = ChangeLog::open(&base).expect("open quarantines, not fails");
        assert_eq!(log.last_seq(), 3, "sequence still advances");
        assert_eq!(log.quarantined(), 1);
        assert_eq!(
            log.events().iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 3],
            "frames after the quarantined one still apply"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_of_no_events_reproduces_the_seed_universe() {
        let seed = seed_lake();
        let (lake, stats) = replay(&seed, []);
        assert_eq!(stats, ReplayStats::default());
        assert_eq!(lake.n_tables(), seed.n_tables());
        assert_eq!(lake.n_attrs(), seed.n_attrs());
        assert_eq!(lake.n_tags(), seed.n_tags());
        for (a, b) in seed.tags().iter().zip(lake.tags()) {
            assert_eq!(a.label, b.label, "tag order preserved");
            assert_eq!(a.attrs.len(), b.attrs.len());
        }
        // Idempotence: replaying the replayed lake changes nothing.
        let (again, _) = replay(&lake, []);
        assert_eq!(again.n_tags(), lake.n_tags());
        for (a, b) in lake.tags().iter().zip(again.tags()) {
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn replay_fold_semantics_and_noop_accounting() {
        let seed = seed_lake();
        let events = vec![
            added("gamma", &["civic"], vec![attr("g", 0.4, &[])]),
            ChangeEvent::TableRemoved {
                name: "alpha".to_string(),
            },
            ChangeEvent::TableRemoved {
                name: "alpha".to_string(), // duplicate: no-op
            },
            ChangeEvent::TableRetagged {
                name: "beta".to_string(),
                tags: vec!["mobility".to_string()],
            },
            ChangeEvent::TableRetagged {
                name: "nonexistent".to_string(), // no-op
                tags: vec![],
            },
            added("beta", &[], vec![]), // name exists: no-op
        ];
        let (lake, stats) = replay(&seed, &events);
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.noops, 3);
        assert_eq!(lake.n_tables(), 2, "alpha out, gamma in");
        assert!(lake.tag_by_label("health").is_none(), "alpha's tag is gone");
        assert!(lake.tag_by_label("transit").is_none(), "retag replaced it");
        let mobility = lake.tag_by_label("mobility").expect("retag applied");
        assert_eq!(lake.tag(mobility).tables.len(), 1);
        let civic = lake.tag_by_label("civic").expect("added table's tag");
        assert_eq!(lake.tag(civic).attrs.len(), 1);
        // The retagged table's attribute carries exactly the new label.
        let beta = lake
            .table_ids()
            .find(|&t| lake.table(t).name == "beta")
            .expect("beta present");
        let beta_attr = lake.table(beta).attrs[0];
        assert_eq!(lake.attr_tags(beta_attr), &[mobility]);
    }
}
