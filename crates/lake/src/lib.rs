//! The data-lake model.
//!
//! A lake (paper §2.1) is a set of tables `T`; each table has a set of
//! attributes; each attribute has a *domain* of text values; tables carry
//! hand-curated metadata *tags* which their attributes inherit (§3.2). Every
//! attribute and tag is summarized by a *topic vector* — the sample mean of
//! the embedding vectors of its domain values (Definitions 4 and 5).
//!
//! The [`DataLake`] type is the immutable, id-indexed view consumed by every
//! downstream component: organization construction (`dln-org`), keyword
//! search (`dln-search`), and the user-study harness (`dln-study`). It is
//! produced by [`LakeBuilder`] (programmatic / generator use) or by the CSV
//! ingester in [`csv`].

#![warn(missing_docs)]
// Robustness contract (ISSUE 3): ingest must degrade gracefully, never
// abort on a malformed input. Panicking extractors are banned outside
// tests; fallible paths return `DlnError`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod cdc;
pub mod csv;
pub mod model;
pub mod numeric;
pub mod stats;

pub use builder::LakeBuilder;
pub use cdc::{replay, AttrChange, ChangeEvent, ChangeLog, ReplayStats};
pub use csv::{Ingest, IngestReport};
pub use model::{AttrId, Attribute, DataLake, Table, TableId, Tag, TagId};
pub use numeric::{NumericCatalog, NumericColumn, NumericProfile};
pub use stats::LakeStats;
