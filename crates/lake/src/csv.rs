//! CSV ingestion: load a directory of CSV files into a [`DataLake`].
//!
//! This is the path for pointing the system at real open-data dumps. Each
//! `*.csv` file becomes one table; an optional sidecar `<stem>.tags` file
//! (one tag label per line) carries the portal metadata tags. Columns are
//! classified as text or numeric by sampling values (the paper builds
//! organizations over *text* attributes only, §3.1: 26% of Socrata
//! attributes are text but 92% of tables have at least one).
//!
//! The parser is a minimal RFC-4180 subset implemented here to stay within
//! the allowed dependency set: quoted fields, embedded commas, doubled
//! quotes, and both `\n` / `\r\n` row terminators.

use std::io::BufRead;
use std::path::Path;

use dln_embed::{is_numeric_value, EmbeddingModel};
use dln_fault::DlnError;

use crate::builder::LakeBuilder;
use crate::model::DataLake;
use crate::numeric::{NumericCatalog, NumericColumn, NumericProfile};

/// Options for CSV ingestion.
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// A column is treated as text when at least this fraction of its
    /// non-empty values fail numeric parsing.
    pub text_threshold: f64,
    /// Maximum number of rows read per file (0 = unlimited).
    pub max_rows: usize,
    /// Whether the first row is a header of column names.
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            text_threshold: 0.5,
            max_rows: 10_000,
            has_header: true,
        }
    }
}

/// Parse one CSV record from `input` starting at byte `pos`.
/// Returns the fields, the position after the record, and whether the
/// record was terminated by EOF *inside* an open quote (an unbalanced
/// quote — the classic torn/truncated-CSV symptom). `None` at EOF.
fn parse_record(input: &[u8], mut pos: usize) -> Option<(Vec<String>, usize, bool)> {
    if pos >= input.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut field = Vec::new();
    let mut in_quotes = false;
    loop {
        if pos >= input.len() {
            fields.push(String::from_utf8_lossy(&field).into_owned());
            return Some((fields, pos, in_quotes));
        }
        let b = input[pos];
        if in_quotes {
            if b == b'"' {
                if pos + 1 < input.len() && input[pos + 1] == b'"' {
                    field.push(b'"');
                    pos += 2;
                } else {
                    in_quotes = false;
                    pos += 1;
                }
            } else {
                field.push(b);
                pos += 1;
            }
        } else {
            match b {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    pos += 1;
                }
                b',' => {
                    fields.push(String::from_utf8_lossy(&field).into_owned());
                    field.clear();
                    pos += 1;
                }
                b'\r' => {
                    pos += 1;
                    if pos < input.len() && input[pos] == b'\n' {
                        pos += 1;
                    }
                    fields.push(String::from_utf8_lossy(&field).into_owned());
                    return Some((fields, pos, false));
                }
                b'\n' => {
                    pos += 1;
                    fields.push(String::from_utf8_lossy(&field).into_owned());
                    return Some((fields, pos, false));
                }
                _ => {
                    field.push(b);
                    pos += 1;
                }
            }
        }
    }
}

/// Parse an entire CSV byte buffer into rows of fields.
pub fn parse_csv(input: &[u8]) -> Vec<Vec<String>> {
    parse_csv_checked(input).0
}

/// As [`parse_csv`], but also reporting whether the buffer ended inside an
/// open quote (unbalanced quotes / truncated file). The ingest path
/// quarantines such files; [`parse_csv`] keeps the lenient salvage
/// behavior for programmatic callers.
pub fn parse_csv_checked(input: &[u8]) -> (Vec<Vec<String>>, bool) {
    let mut rows = Vec::new();
    let mut pos = 0usize;
    let mut unbalanced = false;
    while let Some((fields, next, eof_in_quotes)) = parse_record(input, pos) {
        unbalanced |= eof_in_quotes;
        // Skip blank lines.
        if !(fields.len() == 1 && fields[0].is_empty()) {
            rows.push(fields);
        }
        pos = next;
    }
    (rows, unbalanced)
}

/// A parsed table before lake insertion.
#[derive(Clone, Debug)]
pub struct ParsedTable {
    /// Table name (file stem).
    pub name: String,
    /// Metadata tags from the sidecar file.
    pub tags: Vec<String>,
    /// Text columns: `(column name, values)`.
    pub text_columns: Vec<(String, Vec<String>)>,
    /// Names of columns classified as numeric and skipped.
    pub numeric_columns: Vec<String>,
    /// Raw values of the numeric columns (for profiling).
    pub numeric_values: Vec<(String, Vec<String>)>,
}

/// Classify and extract the text columns of a parsed CSV.
pub fn extract_text_columns(name: &str, rows: &[Vec<String>], opts: &CsvOptions) -> ParsedTable {
    let mut table = ParsedTable {
        name: name.to_string(),
        tags: Vec::new(),
        text_columns: Vec::new(),
        numeric_columns: Vec::new(),
        numeric_values: Vec::new(),
    };
    if rows.is_empty() {
        return table;
    }
    let (header, data_rows): (Vec<String>, &[Vec<String>]) = if opts.has_header {
        (rows[0].clone(), &rows[1..])
    } else {
        (
            (0..rows[0].len()).map(|i| format!("col{i}")).collect(),
            rows,
        )
    };
    let limit = if opts.max_rows == 0 {
        data_rows.len()
    } else {
        data_rows.len().min(opts.max_rows)
    };
    for (ci, col_name) in header.iter().enumerate() {
        let mut values = Vec::new();
        let mut numeric = 0usize;
        for row in &data_rows[..limit] {
            let Some(v) = row.get(ci) else { continue };
            let v = v.trim();
            if v.is_empty() {
                continue;
            }
            if is_numeric_value(v) {
                numeric += 1;
            }
            values.push(v.to_string());
        }
        if values.is_empty() {
            continue;
        }
        let text_fraction = 1.0 - numeric as f64 / values.len() as f64;
        if text_fraction >= opts.text_threshold {
            table.text_columns.push((col_name.clone(), values));
        } else {
            table.numeric_columns.push(col_name.clone());
            table.numeric_values.push((col_name.clone(), values));
        }
    }
    table
}

/// Per-category quarantine counters for one ingest run.
///
/// Real lakes are messy (the paper's Socrata crawl, metadata-system
/// surveys): unreadable files, truncated CSVs, binary junk with a `.csv`
/// extension. The ingest path never aborts on such inputs — it quarantines
/// them, counts them here, and logs a one-line warning per victim, so a
/// 7.5k-table build survives its dirty 1%.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Tables that entered the lake.
    pub tables_loaded: usize,
    /// Parsed fine but had no text column (§3.1: text attributes only).
    pub tables_without_text: usize,
    /// Directory entries `read_dir` could not stat/yield.
    pub unreadable_dir_entries: usize,
    /// CSV files whose bytes could not be read (IO error).
    pub io_errors: usize,
    /// CSV files rejected for invalid UTF-8 content.
    pub invalid_utf8: usize,
    /// CSV files rejected as structurally malformed (unbalanced quotes /
    /// truncated quoted field).
    pub malformed_csv: usize,
    /// Sidecar `.tags` files that existed but could not be read (the table
    /// still loads, tagged with its own name).
    pub tag_sidecar_errors: usize,
    /// Paths quarantined, with a one-line reason each (same order as the
    /// warnings emitted during the run).
    pub quarantined: Vec<(String, String)>,
}

impl IngestReport {
    /// Total inputs quarantined (files skipped entirely).
    pub fn total_quarantined(&self) -> usize {
        self.io_errors + self.invalid_utf8 + self.malformed_csv
    }

    fn quarantine(&mut self, path: &Path, reason: impl Into<String>) {
        let reason = reason.into();
        eprintln!("warning: quarantined {}: {reason}", path.display());
        self.quarantined.push((path.display().to_string(), reason));
    }
}

/// Result of [`ingest_dir`]: the lake, the numeric-column catalog, and the
/// quarantine report.
#[derive(Debug)]
pub struct Ingest {
    /// The text-attribute lake.
    pub lake: DataLake,
    /// Distributional profiles of the numeric columns (§3.1 future work).
    pub numeric: NumericCatalog,
    /// What was loaded, skipped, and quarantined.
    pub report: IngestReport,
}

/// Load every `*.csv` under `dir` (non-recursive) into a lake, embedding
/// values with `model`. Sidecar `<stem>.tags` files supply table tags; a
/// table without a sidecar gets a single tag equal to its name (open-data
/// portals always expose at least the dataset title as a keyword).
///
/// Pre-robustness-layer wrapper over [`ingest_dir`]: malformed inputs are
/// quarantined (not fatal) but the report is dropped. Only a failure to
/// list `dir` itself is an error.
pub fn load_dir<M: EmbeddingModel>(
    dir: &Path,
    model: &M,
    opts: &CsvOptions,
) -> std::io::Result<DataLake> {
    ingest_dir(dir, model, opts)
        .map(|i| i.lake)
        .map_err(std::io::Error::from)
}

/// As [`load_dir`], but additionally profiling the *numeric* columns that
/// organization construction skips (§3.1), so they are not lost: the
/// returned [`NumericCatalog`] carries a distributional profile per
/// numeric column (the substrate for the paper's numerical-attributes
/// future work — see [`crate::numeric`]).
pub fn load_dir_with_numeric<M: EmbeddingModel>(
    dir: &Path,
    model: &M,
    opts: &CsvOptions,
) -> std::io::Result<(DataLake, NumericCatalog)> {
    ingest_dir(dir, model, opts)
        .map(|i| (i.lake, i.numeric))
        .map_err(std::io::Error::from)
}

/// The robust ingest path: load every `*.csv` under `dir` (non-recursive),
/// quarantining unreadable / malformed files into the [`IngestReport`]
/// instead of aborting. Only a failure to list `dir` itself is fatal.
///
/// Fault-injection site `ingest.read` (see `dln-fault`): when armed, a
/// successful file read is turned into a synthetic IO error, exercising the
/// quarantine path deterministically.
pub fn ingest_dir<M: EmbeddingModel>(
    dir: &Path,
    model: &M,
    opts: &CsvOptions,
) -> Result<Ingest, DlnError> {
    let mut report = IngestReport::default();
    let mut catalog = NumericCatalog::default();
    let mut builder = LakeBuilder::new(model.dim());
    let listing = std::fs::read_dir(dir)
        .map_err(|e| DlnError::io(format!("listing {}", dir.display()), e))?;
    let mut entries: Vec<_> = Vec::new();
    for entry in listing {
        match entry {
            Ok(e) => entries.push(e.path()),
            Err(e) => {
                // An entry the OS yielded but could not stat: count it
                // instead of silently dropping it (it used to be a
                // `.filter_map(Result::ok)`).
                report.unreadable_dir_entries += 1;
                eprintln!(
                    "warning: unreadable directory entry under {}: {e}",
                    dir.display()
                );
            }
        }
    }
    entries.retain(|p| p.extension().is_some_and(|e| e == "csv"));
    entries.sort();
    for path in entries {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_string());
        let bytes = match std::fs::read(&path) {
            Ok(b) if dln_fault::should_fail("ingest.read") => {
                let _ = b;
                report.io_errors += 1;
                report.quarantine(&path, "injected IO fault (ingest.read)");
                continue;
            }
            Ok(b) => b,
            Err(e) => {
                report.io_errors += 1;
                report.quarantine(&path, format!("read failed: {e}"));
                continue;
            }
        };
        if std::str::from_utf8(&bytes).is_err() {
            report.invalid_utf8 += 1;
            report.quarantine(&path, "invalid UTF-8 content");
            continue;
        }
        let (rows, unbalanced) = parse_csv_checked(&bytes);
        if unbalanced {
            report.malformed_csv += 1;
            report.quarantine(&path, "unbalanced quote (truncated or corrupt CSV)");
            continue;
        }
        let mut parsed = extract_text_columns(&stem, &rows, opts);
        let tags_path = path.with_extension("tags");
        if tags_path.exists() {
            match read_tag_sidecar(&tags_path) {
                Ok(tags) => parsed.tags.extend(tags),
                Err(e) => {
                    // The table itself is fine; fall back to the stem tag.
                    report.tag_sidecar_errors += 1;
                    eprintln!(
                        "warning: unreadable tag sidecar {}: {e} (using table name)",
                        tags_path.display()
                    );
                }
            }
        }
        if parsed.tags.is_empty() {
            parsed.tags.push(stem.clone());
        }
        // Profile numeric columns before deciding whether the table enters
        // the (text-only) lake.
        for (col, values) in &parsed.numeric_values {
            if let Some(profile) =
                NumericProfile::from_strings(values.iter().map(String::as_str), 2)
            {
                catalog.columns.push(NumericColumn {
                    table_name: parsed.name.clone(),
                    column: col.clone(),
                    profile,
                });
            }
        }
        if parsed.text_columns.is_empty() {
            report.tables_without_text += 1;
            continue; // no organizable content (§3.1: text attributes only)
        }
        let t = builder.begin_table(&parsed.name);
        for tag in &parsed.tags {
            builder.add_tag(t, tag);
        }
        for (col, values) in &parsed.text_columns {
            builder.try_add_attribute(t, col, values.iter().map(String::as_str), model)?;
        }
        report.tables_loaded += 1;
    }
    Ok(Ingest {
        lake: builder.build(),
        numeric: catalog,
        report,
    })
}

fn read_tag_sidecar(path: &Path) -> std::io::Result<Vec<String>> {
    let f = std::fs::File::open(path)?;
    let mut tags = Vec::new();
    for line in std::io::BufReader::new(f).lines() {
        let line = line?;
        let t = line.trim();
        if !t.is_empty() {
            tags.push(t.to_string());
        }
    }
    Ok(tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::{SyntheticEmbedding, VocabularyConfig};

    #[test]
    fn parses_simple_rows() {
        let rows = parse_csv(b"a,b,c\n1,2,3\n");
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parses_quoted_fields_with_commas_and_quotes() {
        let rows = parse_csv(b"name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
        assert_eq!(rows[1], vec!["Smith, John", "said \"hi\""]);
    }

    #[test]
    fn parses_crlf_and_skips_blank_lines() {
        let rows = parse_csv(b"a,b\r\n\r\n1,2\r\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quoted_newline() {
        let rows = parse_csv(b"a\n\"line1\nline2\"\n");
        assert_eq!(rows[1], vec!["line1\nline2"]);
    }

    #[test]
    fn last_record_without_trailing_newline() {
        let rows = parse_csv(b"a,b\n1,2");
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn text_column_detection() {
        let rows = parse_csv(b"city,pop,mixed\nboston,61000,12\nottawa,99000,ok\n");
        let t = extract_text_columns("t", &rows, &CsvOptions::default());
        let names: Vec<&str> = t.text_columns.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["city", "mixed"]);
        assert_eq!(t.numeric_columns, vec!["pop"]);
    }

    #[test]
    fn empty_rows_give_empty_table() {
        let t = extract_text_columns("t", &[], &CsvOptions::default());
        assert!(t.text_columns.is_empty());
    }

    #[test]
    fn numeric_columns_are_profiled() {
        let m = SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 2,
            words_per_topic: 4,
            dim: 8,
            sigma: 0.3,
            seed: 4,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        });
        let w0 = m.vocab().word(dln_embed::TokenId(0)).to_string();
        let dir = std::env::temp_dir().join(format!("dln_csv_num_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("mixed.csv"),
            format!("city,pop,score\n{w0},61000,0.5\n{w0},99000,0.7\n{w0},45000,0.9\n"),
        )
        .unwrap();
        let (lake, catalog) = load_dir_with_numeric(&dir, &m, &CsvOptions::default()).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(lake.n_tables(), 1);
        assert_eq!(catalog.len(), 2, "pop and score profiled");
        let pop = catalog
            .columns
            .iter()
            .find(|c| c.column == "pop")
            .expect("pop profiled");
        assert_eq!(pop.table_name, "mixed");
        assert_eq!(pop.profile.n_values, 3);
        assert_eq!(pop.profile.min, 45000.0);
        assert_eq!(pop.profile.fraction_int, 1.0);
        let score = catalog
            .columns
            .iter()
            .find(|c| c.column == "score")
            .expect("score profiled");
        assert_eq!(score.profile.fraction_int, 0.0);
        // Shape similarity separates counts from scores.
        let sims = catalog.similar_columns(0, 1);
        assert_eq!(sims.len(), 1);
    }

    #[test]
    fn load_dir_with_sidecar_tags() {
        let m = SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 2,
            words_per_topic: 4,
            dim: 8,
            sigma: 0.3,
            seed: 4,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        });
        let w0 = m.vocab().word(dln_embed::TokenId(0)).to_string();
        let w1 = m.vocab().word(dln_embed::TokenId(4)).to_string();
        let dir = std::env::temp_dir().join(format!("dln_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("alpha.csv"), format!("col\n{w0}\n{w0}\n")).unwrap();
        std::fs::write(dir.join("alpha.tags"), "health\nfood safety\n").unwrap();
        std::fs::write(dir.join("beta.csv"), format!("c1,c2\n{w1},7\n{w1},9\n")).unwrap();
        std::fs::write(dir.join("ignore.txt"), "not a csv").unwrap();
        let lake = load_dir(&dir, &m, &CsvOptions::default()).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(lake.n_tables(), 2);
        assert!(lake.tag_by_label("health").is_some());
        assert!(lake.tag_by_label("food safety").is_some());
        // beta has no sidecar → tagged with its own name; numeric c2 skipped.
        assert!(lake.tag_by_label("beta").is_some());
        let beta = lake
            .tables()
            .iter()
            .find(|t| t.name == "beta")
            .expect("beta table present");
        assert_eq!(beta.attrs.len(), 1);
    }

    #[test]
    fn parse_csv_checked_flags_unbalanced_quote() {
        let (rows, unbalanced) = parse_csv_checked(b"a,b\n\"truncated mid-fie");
        assert!(unbalanced, "EOF inside an open quote must be flagged");
        assert_eq!(rows.len(), 2, "partial rows are still returned");
        let (_, balanced) = parse_csv_checked(b"a,b\n\"ok, quoted\",2\n");
        assert!(!balanced);
    }

    #[test]
    fn malformed_inputs_are_quarantined_not_fatal() {
        let m = SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 2,
            words_per_topic: 4,
            dim: 8,
            sigma: 0.3,
            seed: 4,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        });
        let w0 = m.vocab().word(dln_embed::TokenId(0)).to_string();
        let dir = std::env::temp_dir().join(format!("dln_csv_quar_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // One healthy table, one binary-junk file, one truncated quoted file.
        std::fs::write(dir.join("good.csv"), format!("col\n{w0}\n{w0}\n")).unwrap();
        std::fs::write(dir.join("junk.csv"), [0xFFu8, 0xFE, 0x00, 0x41]).unwrap();
        std::fs::write(dir.join("torn.csv"), b"col\n\"cut mid-quo").unwrap();
        let ingest = ingest_dir(&dir, &m, &CsvOptions::default()).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(ingest.lake.n_tables(), 1, "only the healthy table loads");
        assert_eq!(ingest.report.tables_loaded, 1);
        assert_eq!(ingest.report.invalid_utf8, 1);
        assert_eq!(ingest.report.malformed_csv, 1);
        assert_eq!(ingest.report.total_quarantined(), 2);
        assert_eq!(ingest.report.quarantined.len(), 2);
        assert!(ingest
            .report
            .quarantined
            .iter()
            .any(|(p, _)| p.ends_with("junk.csv")));
    }

    #[test]
    fn injected_read_fault_quarantines_deterministically() {
        let m = SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 2,
            words_per_topic: 4,
            dim: 8,
            sigma: 0.3,
            seed: 4,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        });
        let w0 = m.vocab().word(dln_embed::TokenId(0)).to_string();
        let dir = std::env::temp_dir().join(format!("dln_csv_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["a", "b", "c", "d"] {
            std::fs::write(dir.join(format!("{name}.csv")), format!("col\n{w0}\n")).unwrap();
        }
        let run = |spec: &str| {
            let _fp = dln_fault::scoped(spec).unwrap();
            ingest_dir(&dir, &m, &CsvOptions::default()).unwrap()
        };
        let all_fail = run("ingest.read:1.0:0");
        assert_eq!(all_fail.report.io_errors, 4);
        assert_eq!(all_fail.lake.n_tables(), 0);
        let some = run("ingest.read:0.5:9");
        let again = run("ingest.read:0.5:9");
        assert_eq!(
            some.report, again.report,
            "same failpoint seed, same quarantine outcome"
        );
        assert_eq!(some.report.io_errors + some.report.tables_loaded, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
