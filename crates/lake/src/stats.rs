//! Descriptive statistics over a lake.
//!
//! The paper characterizes its Socrata crawl by exactly these quantities
//! (§4.1): table / attribute / tag counts, attribute–tag associations, and
//! the skew of tags-per-table and attributes-per-table. The synthetic
//! Socrata generator is validated against these statistics, and the Table 1
//! experiment prints per-dimension versions of them.

use crate::model::DataLake;

/// Summary statistics of a [`DataLake`].
#[derive(Clone, Debug, PartialEq)]
pub struct LakeStats {
    /// Number of tables.
    pub n_tables: usize,
    /// Number of attributes.
    pub n_attrs: usize,
    /// Number of distinct tags.
    pub n_tags: usize,
    /// Total attribute–tag associations.
    pub n_attr_tag_assocs: usize,
    /// Attributes with a non-empty topic vector.
    pub n_attrs_with_topic: usize,
    /// Tables with at least one attribute that has a topic vector.
    pub n_tables_with_topic: usize,
    /// Mean / median / max tags per table.
    pub tags_per_table: Distribution,
    /// Mean / median / max attributes per table.
    pub attrs_per_table: Distribution,
    /// Mean / median / max attributes per tag.
    pub attrs_per_tag: Distribution,
    /// Mean fraction of values with embeddings, over attributes with values.
    pub mean_embedding_coverage: f64,
}

/// Simple summary of a non-negative integer distribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Distribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: u64,
    /// Maximum.
    pub max: u64,
}

impl Distribution {
    /// Summarize a sample of counts. Empty input yields all zeros.
    pub fn of(mut counts: Vec<u64>) -> Distribution {
        if counts.is_empty() {
            return Distribution::default();
        }
        counts.sort_unstable();
        let n = counts.len();
        Distribution {
            mean: counts.iter().sum::<u64>() as f64 / n as f64,
            median: counts[(n - 1) / 2],
            max: counts[n - 1],
        }
    }
}

impl LakeStats {
    /// Compute statistics over `lake`.
    pub fn compute(lake: &DataLake) -> LakeStats {
        let tags_per_table =
            Distribution::of(lake.tables().iter().map(|t| t.tags.len() as u64).collect());
        let attrs_per_table =
            Distribution::of(lake.tables().iter().map(|t| t.attrs.len() as u64).collect());
        let attrs_per_tag =
            Distribution::of(lake.tags().iter().map(|t| t.attrs.len() as u64).collect());
        let n_attrs_with_topic = lake.attrs().iter().filter(|a| a.has_topic()).count();
        let n_tables_with_topic = lake
            .tables()
            .iter()
            .filter(|t| t.attrs.iter().any(|&a| lake.attr(a).has_topic()))
            .count();
        let covered: Vec<f64> = lake
            .attrs()
            .iter()
            .filter(|a| a.n_values > 0)
            .map(|a| a.embedding_coverage())
            .collect();
        let mean_embedding_coverage = if covered.is_empty() {
            0.0
        } else {
            covered.iter().sum::<f64>() / covered.len() as f64
        };
        LakeStats {
            n_tables: lake.n_tables(),
            n_attrs: lake.n_attrs(),
            n_tags: lake.n_tags(),
            n_attr_tag_assocs: lake.n_attr_tag_assocs(),
            n_attrs_with_topic,
            n_tables_with_topic,
            tags_per_table,
            attrs_per_table,
            attrs_per_tag,
            mean_embedding_coverage,
        }
    }
}

impl std::fmt::Display for LakeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tables={} attrs={} tags={} attr-tag-assocs={}",
            self.n_tables, self.n_attrs, self.n_tags, self.n_attr_tag_assocs
        )?;
        writeln!(
            f,
            "tags/table: mean={:.2} median={} max={}",
            self.tags_per_table.mean, self.tags_per_table.median, self.tags_per_table.max
        )?;
        writeln!(
            f,
            "attrs/table: mean={:.2} median={} max={}",
            self.attrs_per_table.mean, self.attrs_per_table.median, self.attrs_per_table.max
        )?;
        writeln!(
            f,
            "attrs/tag: mean={:.2} median={} max={}",
            self.attrs_per_tag.mean, self.attrs_per_tag.median, self.attrs_per_tag.max
        )?;
        write!(
            f,
            "embedding coverage (mean over attrs): {:.1}%",
            100.0 * self.mean_embedding_coverage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LakeBuilder;
    use dln_embed::{SyntheticEmbedding, VocabularyConfig};

    #[test]
    fn distribution_summary() {
        let d = Distribution::of(vec![5, 1, 3]);
        assert!((d.mean - 3.0).abs() < 1e-9);
        assert_eq!(d.median, 3);
        assert_eq!(d.max, 5);
    }

    #[test]
    fn distribution_even_count_uses_lower_median() {
        let d = Distribution::of(vec![1, 2, 3, 4]);
        assert_eq!(d.median, 2);
    }

    #[test]
    fn distribution_empty() {
        let d = Distribution::of(vec![]);
        assert_eq!(d, Distribution::default());
    }

    #[test]
    fn stats_over_small_lake() {
        let m = SyntheticEmbedding::with_vocab_config(VocabularyConfig {
            n_topics: 2,
            words_per_topic: 4,
            dim: 8,
            sigma: 0.3,
            seed: 9,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        });
        let w: Vec<String> = m.vocab().iter().map(|(_, s)| s.to_string()).collect();
        let mut b = LakeBuilder::new(8);
        let t0 = b.begin_table("t0");
        b.add_tag(t0, "a");
        b.add_tag(t0, "b");
        b.add_attribute(t0, "c0", [w[0].as_str(), w[1].as_str()], &m);
        let t1 = b.begin_table("t1");
        b.add_tag(t1, "a");
        b.add_attribute(t1, "c1", [w[2].as_str()], &m);
        b.add_attribute(t1, "c2", ["zzz-unknown"], &m);
        let lake = b.build();
        let s = lake.stats();
        assert_eq!(s.n_tables, 2);
        assert_eq!(s.n_attrs, 3);
        assert_eq!(s.n_tags, 2);
        // t0 contributes 1 attr × 2 tags; t1 contributes 2 attrs × 1 tag.
        assert_eq!(s.n_attr_tag_assocs, 4);
        assert_eq!(s.n_attrs_with_topic, 2);
        assert_eq!(s.n_tables_with_topic, 2);
        assert_eq!(s.tags_per_table.max, 2);
        assert_eq!(s.attrs_per_table.max, 2);
        // c0: 2/2 covered, c1: 1/1, c2: 0/1 → mean 2/3.
        assert!((s.mean_embedding_coverage - 2.0 / 3.0).abs() < 1e-9);
        let rendered = format!("{s}");
        assert!(rendered.contains("tables=2"));
    }
}
