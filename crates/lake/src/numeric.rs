//! Numerical-attribute profiles — the paper's first future-work item.
//!
//! §3.1: "We have found that similarity between numerical attributes
//! (measured by set overlap or Jaccard) can be very misleading as
//! attributes that are semantically unrelated can be very similar ...
//! Hence, to use numerical attributes one would first need to understand
//! their semantics" (pointing at Sherlock-style semantic typing). The
//! conclusion lists "extending the organization to include numerical ...
//! columns" as future work.
//!
//! This module supplies the substrate that extension needs: a
//! *distributional profile* of a numeric column (not its raw value set)
//! and a similarity between profiles based on distribution shape — scale,
//! spread, integrality, quantile geometry — rather than value overlap.
//! CSV ingestion can retain these profiles alongside the text lake
//! ([`crate::csv::load_dir_with_numeric`]), so a downstream organization
//! over numeric semantics has everything it needs.

/// A distributional summary of a numeric column.
#[derive(Clone, Debug, PartialEq)]
pub struct NumericProfile {
    /// Number of parsed numeric values.
    pub n_values: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Fraction of values that are integral.
    pub fraction_int: f64,
    /// Fraction of values that are non-negative.
    pub fraction_nonneg: f64,
    /// Quantiles at 10/25/50/75/90 %.
    pub quantiles: [f64; 5],
}

impl NumericProfile {
    /// Profile a set of numeric values. Returns `None` for empty input.
    pub fn from_values(values: &[f64]) -> Option<NumericProfile> {
        let vals: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        let n = vals.len();
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let q = |p: f64| sorted[((n - 1) as f64 * p).round() as usize];
        Some(NumericProfile {
            n_values: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std: var.sqrt(),
            fraction_int: vals.iter().filter(|v| v.fract() == 0.0).count() as f64 / n as f64,
            fraction_nonneg: vals.iter().filter(|v| **v >= 0.0).count() as f64 / n as f64,
            quantiles: [q(0.10), q(0.25), q(0.50), q(0.75), q(0.90)],
        })
    }

    /// Profile raw string values, parsing the numeric ones (currency signs
    /// and thousands separators tolerated). Returns `None` when fewer than
    /// `min_numeric` values parse.
    pub fn from_strings<'a, I: IntoIterator<Item = &'a str>>(
        values: I,
        min_numeric: usize,
    ) -> Option<NumericProfile> {
        let parsed: Vec<f64> = values.into_iter().filter_map(parse_numeric).collect();
        if parsed.len() < min_numeric.max(1) {
            return None;
        }
        Self::from_values(&parsed)
    }

    /// A scale-aware shape feature vector for similarity comparison. All
    /// components are dimensionless or log-compressed, so "population of a
    /// city" and "population of a country" look related while "year" and
    /// "latitude" do not — the semantic-typing intuition of the Sherlock
    /// line of work, in miniature.
    pub fn features(&self) -> [f64; 8] {
        let range = (self.max - self.min).max(f64::MIN_POSITIVE);
        let scale = self.max.abs().max(self.min.abs()).max(f64::MIN_POSITIVE);
        let mid = self.quantiles[2];
        let iqr = (self.quantiles[3] - self.quantiles[1]).max(f64::MIN_POSITIVE);
        [
            // Order of magnitude (log10-compressed scale).
            (1.0 + scale).log10(),
            // Coefficient of variation, clamped.
            (self.std / scale).min(10.0),
            // Skew proxy: where the median sits within the range.
            ((mid - self.min) / range).clamp(0.0, 1.0),
            // Tail heaviness: range relative to IQR (log-compressed).
            (1.0 + range / iqr).log10(),
            self.fraction_int,
            self.fraction_nonneg,
            // Negative support indicator.
            if self.min < 0.0 { 1.0 } else { 0.0 },
            // Bounded-looking column ([0,1] / [0,100]-ish)?
            if self.min >= 0.0
                && (self.max <= 1.0 || (self.max <= 100.0 && self.fraction_int > 0.5))
            {
                1.0
            } else {
                0.0
            },
        ]
    }

    /// Shape similarity in `[0, 1]`: 1 − normalized L1 distance between
    /// feature vectors (features are individually normalized to
    /// comparable ranges first).
    pub fn similarity(&self, other: &NumericProfile) -> f64 {
        let a = self.features();
        let b = other.features();
        // Per-feature normalizers (rough dynamic ranges).
        const NORM: [f64; 8] = [10.0, 10.0, 1.0, 3.0, 1.0, 1.0, 1.0, 1.0];
        let mut d = 0.0;
        for i in 0..8 {
            d += ((a[i] - b[i]) / NORM[i]).abs().min(1.0);
        }
        1.0 - d / 8.0
    }
}

/// A catalog of profiled numeric columns from an ingested lake directory
/// (see [`crate::csv::load_dir_with_numeric`]).
#[derive(Clone, Debug, Default)]
pub struct NumericCatalog {
    /// All profiled numeric columns.
    pub columns: Vec<NumericColumn>,
}

/// One profiled numeric column.
#[derive(Clone, Debug)]
pub struct NumericColumn {
    /// Name of the source table.
    pub table_name: String,
    /// Column name.
    pub column: String,
    /// Its distributional profile.
    pub profile: NumericProfile,
}

impl NumericCatalog {
    /// Number of profiled columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when no numeric columns were profiled.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The `k` columns most similar (by profile shape) to column `idx`,
    /// excluding itself, as `(index, similarity)` sorted descending.
    pub fn similar_columns(&self, idx: usize, k: usize) -> Vec<(usize, f64)> {
        let base = &self.columns[idx].profile;
        let mut scored: Vec<(usize, f64)> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(i, c)| (i, base.similarity(&c.profile)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

/// Parse a numeric cell value, tolerating `$ € £`, thousands separators
/// and percent signs.
pub fn parse_numeric(v: &str) -> Option<f64> {
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    if let Ok(x) = v.parse::<f64>() {
        return x.is_finite().then_some(x);
    }
    let cleaned: String = v
        .trim_start_matches(['$', '€', '£'])
        .chars()
        .filter(|c| *c != ',' && *c != '%')
        .collect();
    cleaned.parse::<f64>().ok().filter(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_basic_statistics() {
        let p = NumericProfile::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(p.n_values, 5);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 5.0);
        assert!((p.mean - 3.0).abs() < 1e-12);
        assert!((p.std - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(p.fraction_int, 1.0);
        assert_eq!(p.fraction_nonneg, 1.0);
        assert_eq!(p.quantiles[2], 3.0);
    }

    #[test]
    fn empty_and_nonfinite_inputs() {
        assert!(NumericProfile::from_values(&[]).is_none());
        assert!(NumericProfile::from_values(&[f64::NAN, f64::INFINITY]).is_none());
        let p = NumericProfile::from_values(&[1.0, f64::NAN, 2.0]).unwrap();
        assert_eq!(p.n_values, 2);
    }

    #[test]
    fn parses_messy_strings() {
        assert_eq!(parse_numeric("42"), Some(42.0));
        assert_eq!(parse_numeric("$1,234.50"), Some(1234.5));
        assert_eq!(parse_numeric("87%"), Some(87.0));
        assert_eq!(parse_numeric("-3.5"), Some(-3.5));
        assert_eq!(parse_numeric("salmon"), None);
        assert_eq!(parse_numeric(""), None);
    }

    #[test]
    fn from_strings_threshold() {
        let vals = ["1", "2", "fish"];
        assert!(NumericProfile::from_strings(vals.iter().copied(), 3).is_none());
        assert!(NumericProfile::from_strings(vals.iter().copied(), 2).is_some());
    }

    #[test]
    fn similar_distributions_score_high() {
        // Two "population count" columns at different city sizes.
        let a = NumericProfile::from_values(
            &(0..100)
                .map(|i| 10_000.0 + (i as f64) * 950.0)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let b = NumericProfile::from_values(
            &(0..80)
                .map(|i| 20_000.0 + (i as f64) * 1_200.0)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // A "percentage" column.
        let c = NumericProfile::from_values(
            &(0..50)
                .map(|i| (i as f64) * 97.0 / 49.0)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // A "signed ratio" column.
        let d = NumericProfile::from_values(
            &(0..60)
                .map(|i| -1.0 + (i as f64) * 0.033)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(
            a.similarity(&b) > a.similarity(&c),
            "populations match each other better than percentages: {} vs {}",
            a.similarity(&b),
            a.similarity(&c)
        );
        assert!(a.similarity(&b) > a.similarity(&d));
        // Similarity is symmetric and self-similarity is maximal.
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_blindspot_is_fixed() {
        // The paper's complaint: set overlap calls unrelated numeric
        // columns similar. Two columns with HIGH value overlap but
        // different distribution shapes (uniform ints vs the same ints
        // heavily skewed + fractional tail) should *not* be near-identical
        // under profile similarity, while two disjoint-but-same-shaped
        // columns should.
        let uniform: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let skewed: Vec<f64> = (0..100)
            .map(|i| {
                if i < 90 {
                    (i / 30) as f64
                } else {
                    50.5 + i as f64
                }
            })
            .collect();
        let shifted_uniform: Vec<f64> = (0..100).map(|i| 1000.0 + i as f64).collect();
        let pu = NumericProfile::from_values(&uniform).unwrap();
        let ps = NumericProfile::from_values(&skewed).unwrap();
        let pshift = NumericProfile::from_values(&shifted_uniform).unwrap();
        assert!(
            pu.similarity(&pshift) > pu.similarity(&ps),
            "same shape, disjoint values ({}) must beat overlapping values, different shape ({})",
            pu.similarity(&pshift),
            pu.similarity(&ps)
        );
    }
}
