//! Dense-vector kernels and topic-vector accumulators.
//!
//! Topic vectors (Definition 4 of the paper) are sample means over
//! populations of value vectors. States in an organization are merged and
//! split constantly during local search, so the mean is kept in *accumulator*
//! form — a running sum and a count — which makes merging two states O(dim)
//! instead of O(population).

/// Dot product of two equal-length slices.
///
/// Eight independent accumulator lanes (one 256-bit SIMD register's worth
/// of `f32`) with a *fixed-order* reduction: the lanes are combined as the
/// balanced tree `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))` and the scalar
/// tail (`len % 8` trailing elements) is added last. The unrolled body is
/// what auto-vectorizes into packed FMAs; the pinned reduction order is
/// what makes the result reproducible — [`dot_scalar_ref`] evaluates the
/// same tree with plain strided loops and must agree bit-for-bit.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let n = a.len();
    let chunks = n / 8 * 8;
    let mut i = 0;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        s4 += a[i + 4] * b[i + 4];
        s5 += a[i + 5] * b[i + 5];
        s6 += a[i + 6] * b[i + 6];
        s7 += a[i + 7] * b[i + 7];
        i += 8;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// Scalar (non-unrolled) reference for [`dot`]: the eight lane sums are
/// produced by strided scalar loops and reduced in the identical fixed
/// order, so `dot_scalar_ref(a, b).to_bits() == dot(a, b).to_bits()` for
/// every input — the bit-identity contract the SIMD-widened kernels (and
/// the pairwise-distance kernels built on them) are tested against.
pub fn dot_scalar_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_scalar_ref: dimension mismatch");
    let n = a.len();
    let chunks = n / 8 * 8;
    let mut lanes = [0.0f32; 8];
    for (lane, s) in lanes.iter_mut().enumerate() {
        let mut i = lane;
        while i < chunks {
            *s += a[i] * b[i];
            i += 8;
        }
    }
    let mut tail = 0.0f32;
    for i in chunks..n {
        tail += a[i] * b[i];
    }
    (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
        + tail
}

/// Dot products of every row of a row-major `n_rows × x.len()` matrix
/// against `x`, widened to `f64` and written into `out`.
///
/// Each row runs the same 8-lane unrolled `f32` kernel as [`dot`]
/// (fixed-order lane reduction, scalar tail last), so
/// `out[i] == dot(row_i, x) as f64` bit-for-bit — callers that cache rows
/// contiguously (e.g. the evaluator's child-topic matrices) get results
/// identical to per-row `dot` calls over scattered vectors, but with a
/// single streaming pass over memory.
///
/// # Panics
/// Panics in debug builds if `mat.len() != n_rows * x.len()`.
pub fn batch_dot_wide(mat: &[f32], x: &[f32], n_rows: usize, out: &mut Vec<f64>) {
    let dim = x.len();
    debug_assert_eq!(mat.len(), n_rows * dim, "batch_dot_wide: shape mismatch");
    out.clear();
    out.reserve(n_rows);
    for row in 0..n_rows {
        out.push(dot(&mat[row * dim..(row + 1) * dim], x) as f64);
    }
}

/// Euclidean (L2) norm of a vector.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity between two vectors.
///
/// Returns 0.0 when either vector is (numerically) the zero vector, which is
/// the convention used throughout: a state with no embedded values is
/// maximally dissimilar from every query topic.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize a vector in place to unit L2 norm. Zero vectors are left as-is.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = l2_norm(a);
    if n > f32::EPSILON {
        let inv = 1.0 / n;
        for x in a.iter_mut() {
            *x *= inv;
        }
    }
}

/// Return a unit-normalized copy of `a`.
#[inline]
pub fn normalized(a: &[f32]) -> Vec<f32> {
    let mut v = a.to_vec();
    normalize(&mut v);
    v
}

/// Sample mean of a set of vectors. Returns a zero vector of dimension `dim`
/// when the iterator is empty.
pub fn mean<'a, I>(vectors: I, dim: usize) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = TopicAccumulator::new(dim);
    for v in vectors {
        acc.add(v);
    }
    acc.mean()
}

/// A running (sum, count) accumulator representing the sample mean of a
/// population of embedding vectors — the *topic vector* of an attribute or
/// organization state.
///
/// Supports merging (state union during `ADD_PARENT`) and unmerging (state
/// shrink during rollback) in O(dim). Means are recomputed on demand; the
/// normalized form used by the cosine kernel is produced by
/// [`TopicAccumulator::unit_mean`].
#[derive(Clone, Debug, PartialEq)]
pub struct TopicAccumulator {
    sum: Vec<f32>,
    count: u64,
}

impl TopicAccumulator {
    /// An empty accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        TopicAccumulator {
            sum: vec![0.0; dim],
            count: 0,
        }
    }

    /// Build directly from a precomputed sum and population count.
    pub fn from_sum(sum: Vec<f32>, count: u64) -> Self {
        TopicAccumulator { sum, count }
    }

    /// Dimensionality of the accumulated vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Number of vectors accumulated so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no vectors have been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw component-wise sum.
    #[inline]
    pub fn sum(&self) -> &[f32] {
        &self.sum
    }

    /// Add a single vector to the population.
    #[inline]
    pub fn add(&mut self, v: &[f32]) {
        debug_assert_eq!(v.len(), self.sum.len(), "accumulator dim mismatch");
        for (s, x) in self.sum.iter_mut().zip(v) {
            *s += *x;
        }
        self.count += 1;
    }

    /// Merge another accumulator's population into this one.
    #[inline]
    pub fn merge(&mut self, other: &TopicAccumulator) {
        debug_assert_eq!(other.sum.len(), self.sum.len(), "accumulator dim mismatch");
        for (s, x) in self.sum.iter_mut().zip(&other.sum) {
            *s += *x;
        }
        self.count += other.count;
    }

    /// Remove another accumulator's population from this one (inverse of
    /// [`merge`](Self::merge)). The caller must guarantee `other` was
    /// previously merged; counts saturate at zero defensively.
    #[inline]
    pub fn unmerge(&mut self, other: &TopicAccumulator) {
        debug_assert_eq!(other.sum.len(), self.sum.len(), "accumulator dim mismatch");
        for (s, x) in self.sum.iter_mut().zip(&other.sum) {
            *s -= *x;
        }
        self.count = self.count.saturating_sub(other.count);
    }

    /// Sample mean of the population (zero vector if empty).
    pub fn mean(&self) -> Vec<f32> {
        if self.count == 0 {
            return vec![0.0; self.sum.len()];
        }
        let inv = 1.0 / self.count as f32;
        self.sum.iter().map(|s| s * inv).collect()
    }

    /// Unit-normalized sample mean (zero vector if empty), suitable for
    /// cosine-as-dot-product evaluation.
    pub fn unit_mean(&self) -> Vec<f32> {
        // The mean and the sum point in the same direction, so normalizing
        // the sum avoids the division by count.
        normalized(&self.sum)
    }

    /// Write the unit-normalized mean into `out` without allocating.
    pub fn write_unit_mean(&self, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.sum.len());
        out.copy_from_slice(&self.sum);
        normalize(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn eight_lane_dot_matches_scalar_reference_bitwise() {
        // Every tail length 0..8 plus a few longer vectors: the unrolled
        // kernel and the strided scalar evaluation of the same reduction
        // tree must agree to the bit.
        for n in (0..=17).chain([24, 31, 64, 100, 257]) {
            let a: Vec<f32> = (0..n)
                .map(|i| ((i * 37 + 11) as f32 * 0.217).sin())
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| ((i * 53 + 3) as f32 * 0.113).cos())
                .collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar_ref(&a, &b).to_bits(),
                "lane reduction diverged from scalar reference at n={n}"
            );
        }
    }

    #[test]
    fn batch_dot_wide_matches_per_row_dot_bitwise() {
        let dim = 7;
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..dim).map(|i| ((r * dim + i) as f32).sin()).collect())
            .collect();
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).cos()).collect();
        let mat: Vec<f32> = rows.iter().flatten().copied().collect();
        let mut out = vec![999.0f64; 2]; // stale contents must be discarded
        batch_dot_wide(&mat, &x, rows.len(), &mut out);
        assert_eq!(out.len(), rows.len());
        for (o, row) in out.iter().zip(&rows) {
            assert_eq!(o.to_bits(), (dot(row, &x) as f64).to_bits());
        }
    }

    #[test]
    fn batch_dot_wide_zero_rows() {
        let mut out = vec![1.0f64];
        batch_dot_wide(&[], &[1.0, 2.0], 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cosine_self_is_one() {
        let a = [0.3f32, -1.2, 0.7, 2.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!(cosine(&a, &b).abs() < 1e-7);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let a = [1.0f32, 2.0];
        let b = [-1.0f32, -2.0];
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let a = [0.0f32, 0.0];
        let b = [1.0f32, 1.0];
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&b, &a), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut a = vec![3.0f32, 4.0];
        normalize(&mut a);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-6);
        assert!((a[0] - 0.6).abs() < 1e-6);
        assert!((a[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut a = vec![0.0f32; 4];
        normalize(&mut a);
        assert_eq!(a, vec![0.0f32; 4]);
    }

    #[test]
    fn mean_of_vectors() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 2.0]];
        let m = mean(vs.iter().map(|v| v.as_slice()), 2);
        assert!((m[0] - 1.0).abs() < 1e-6);
        assert!((m[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_is_zero() {
        let m = mean(std::iter::empty(), 3);
        assert_eq!(m, vec![0.0; 3]);
    }

    #[test]
    fn accumulator_add_and_mean() {
        let mut acc = TopicAccumulator::new(2);
        assert!(acc.is_empty());
        acc.add(&[2.0, 0.0]);
        acc.add(&[0.0, 2.0]);
        assert_eq!(acc.count(), 2);
        let m = acc.mean();
        assert!((m[0] - 1.0).abs() < 1e-6 && (m[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_merge_unmerge_roundtrip() {
        let mut a = TopicAccumulator::new(3);
        a.add(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        let mut b = TopicAccumulator::new(3);
        b.add(&[4.0, 5.0, 6.0]);
        b.add(&[-1.0, 0.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        a.unmerge(&b);
        assert_eq!(a.count(), before.count());
        for (x, y) in a.sum().iter().zip(before.sum()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn unit_mean_matches_normalized_mean() {
        let mut acc = TopicAccumulator::new(2);
        acc.add(&[3.0, 0.0]);
        acc.add(&[0.0, 3.0]);
        let um = acc.unit_mean();
        let nm = normalized(&acc.mean());
        for (a, b) in um.iter().zip(&nm) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((l2_norm(&um) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unit_mean_of_empty_is_zero() {
        let acc = TopicAccumulator::new(4);
        assert_eq!(acc.unit_mean(), vec![0.0; 4]);
    }

    #[test]
    fn write_unit_mean_no_alloc_path() {
        let mut acc = TopicAccumulator::new(2);
        acc.add(&[0.0, 5.0]);
        let mut out = [9.0f32; 2];
        acc.write_unit_mean(&mut out);
        assert!((out[0]).abs() < 1e-6);
        assert!((out[1] - 1.0).abs() < 1e-6);
    }
}
