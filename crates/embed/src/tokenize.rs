//! Value tokenization.
//!
//! Data-lake cell values are free text ("Canadian Food Inspection Agency",
//! "salmon, atlantic — farmed"). The paper embeds values word-by-word and
//! averages; this module performs the corresponding splitting and
//! normalization: lowercase, split on non-alphanumeric boundaries, drop
//! pure-numeric tokens (the paper builds organizations over *text*
//! attributes only, §3.1).

/// Tokenize a raw cell value into lowercase word tokens.
///
/// Rules (matching common IR practice and the paper's text-attribute focus):
/// * split on any non-alphanumeric character,
/// * lowercase ASCII,
/// * drop tokens that are entirely numeric,
/// * drop empty tokens.
pub fn tokenize(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in value.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    if !tok.chars().all(|c| c.is_ascii_digit()) {
        out.push(tok);
    }
}

/// Whether a raw value looks numeric (used for text-attribute detection in
/// CSV ingestion: a column whose values are mostly numeric is excluded from
/// organization construction per §3.1).
pub fn is_numeric_value(value: &str) -> bool {
    let v = value.trim();
    if v.is_empty() {
        return false;
    }
    v.parse::<f64>().is_ok()
        || v.trim_start_matches(['$', '€', '£'])
            .replace([',', '%'], "")
            .parse::<f64>()
            .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Canadian Food-Inspection AGENCY"),
            vec!["canadian", "food", "inspection", "agency"]
        );
    }

    #[test]
    fn drops_numeric_tokens() {
        assert_eq!(tokenize("route 66 highway"), vec!["route", "highway"]);
    }

    #[test]
    fn keeps_alphanumeric_mixed_tokens() {
        assert_eq!(tokenize("h1n1 virus"), vec!["h1n1", "virus"]);
    }

    #[test]
    fn empty_and_symbol_only_values() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! 123").is_empty());
    }

    #[test]
    fn numeric_detection() {
        assert!(is_numeric_value("42"));
        assert!(is_numeric_value("-3.75"));
        assert!(is_numeric_value("$1,234.50"));
        assert!(is_numeric_value("12%"));
        assert!(!is_numeric_value("salmon"));
        assert!(!is_numeric_value(""));
        assert!(!is_numeric_value("h1n1"));
    }
}
