//! Tiled gram (pairwise dot-product) kernels.
//!
//! The construction front-end evaluates *blocks* of inner products — every
//! tag against every tag for the pairwise-distance store, every point
//! against every medoid for k-medoids assignment. Evaluating them one
//! [`dot`] at a time re-loads both operand vectors from memory per pair;
//! at lake scale (50k attributes) the operands no longer fit in cache and
//! the kernel becomes memory-bound.
//!
//! [`gram_into`] instead walks the output in `GRAM_TILE_ROWS ×
//! GRAM_TILE_COLS` micro-tiles: one pass over the shared dimension per
//! tile, with each of the tile's row chunks loaded once and reused against
//! every column chunk (and vice versa), cutting operand traffic by
//! `~2·R·C/(R+C)` versus the one-pair-at-a-time loop.
//!
//! **Bit-identity contract.** Every output element is produced by exactly
//! the [`dot`] reduction: eight independent accumulator lanes filled in
//! ascending chunk order, the fixed balanced-tree lane reduction
//! `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`, and the scalar tail added
//! last. Tiling only interleaves *independent* per-element accumulators —
//! it never reassociates a single element's sum — so
//! `gram_into(rows, cols, out)` satisfies
//! `out[r·C + c].to_bits() == dot(rows[r], cols[c]).to_bits()` for every
//! shape, including ragged edges where the row/column counts or the
//! dimension are not multiples of the tile size. Property-tested against
//! [`dot_scalar_ref`].
//!
//! **SIMD widening.** On `x86_64` hosts with AVX2 the micro-tile's eight
//! accumulator lanes are held in one `__m256` register per output element
//! (runtime-detected; `DLN_SIMD=0` forces the scalar path). The vector
//! body performs *exactly* the scalar recurrence — `_mm256_mul_ps`
//! followed by `_mm256_add_ps` per chunk, then the same balanced-tree
//! lane reduction in scalar code — so the bit-identity contract holds on
//! both paths and the property tests serve as the gating oracle. True
//! fused multiply-add (`vfmadd*`) is deliberately **not** used: FMA skips
//! the intermediate rounding of the product, which changes low-order bits
//! and would silently fork the scalar and vector results.
//!
//! [`dot`]: crate::vector::dot
//! [`dot_scalar_ref`]: crate::vector::dot_scalar_ref

use crate::vector::dot;

/// Rows per micro-tile of [`gram_into`].
pub const GRAM_TILE_ROWS: usize = 4;
/// Columns per micro-tile of [`gram_into`].
pub const GRAM_TILE_COLS: usize = 4;

/// One full `R × C` micro-tile: a single pass over the shared dimension,
/// maintaining an independent 8-lane accumulator group per output element
/// so each element reproduces the [`dot`] reduction bit-for-bit.
#[inline]
fn gram_tile<const R: usize, const C: usize>(
    rows: &[&[f32]],
    cols: &[&[f32]],
    out: &mut [f32],
    out_stride: usize,
) {
    let d = rows[0].len();
    let chunks = d / 8 * 8;
    let mut acc = [[[0.0f32; 8]; C]; R];
    let mut i = 0;
    while i < chunks {
        for (r, row) in rows.iter().enumerate().take(R) {
            let a = &row[i..i + 8];
            for (c, col) in cols.iter().enumerate().take(C) {
                let b = &col[i..i + 8];
                let lanes = &mut acc[r][c];
                for k in 0..8 {
                    lanes[k] += a[k] * b[k];
                }
            }
        }
        i += 8;
    }
    for (r, row) in rows.iter().enumerate().take(R) {
        for (c, col) in cols.iter().enumerate().take(C) {
            let mut tail = 0.0f32;
            for j in chunks..d {
                tail += row[j] * col[j];
            }
            let l = &acc[r][c];
            out[r * out_stride + c] =
                (((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))) + tail;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 micro-tile: one 8-lane register per output element, same
    //! recurrence and reduction as the scalar tile (see the module docs
    //! for why FMA is excluded).
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// # Safety
    /// Caller must have verified AVX2 support at runtime, and every row /
    /// column slice must hold at least `rows[0].len()` elements.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gram_tile<const R: usize, const C: usize>(
        rows: &[&[f32]],
        cols: &[&[f32]],
        out: &mut [f32],
        out_stride: usize,
    ) {
        let d = rows[0].len();
        let chunks = d / 8 * 8;
        let mut acc = [[_mm256_setzero_ps(); C]; R];
        let mut i = 0;
        while i < chunks {
            let mut av: [__m256; R] = [_mm256_setzero_ps(); R];
            for (r, row) in rows.iter().enumerate().take(R) {
                av[r] = _mm256_loadu_ps(row.as_ptr().add(i));
            }
            for (c, col) in cols.iter().enumerate().take(C) {
                let bv = _mm256_loadu_ps(col.as_ptr().add(i));
                for (r, &a) in av.iter().enumerate().take(R) {
                    // mul then add — NOT vfmadd: fusing would skip the
                    // product rounding and break bit-identity with `dot`.
                    acc[r][c] = _mm256_add_ps(acc[r][c], _mm256_mul_ps(a, bv));
                }
            }
            i += 8;
        }
        for (r, row) in rows.iter().enumerate().take(R) {
            for (c, col) in cols.iter().enumerate().take(C) {
                let mut l = [0.0f32; 8];
                _mm256_storeu_ps(l.as_mut_ptr(), acc[r][c]);
                let mut tail = 0.0f32;
                for j in chunks..d {
                    tail += row[j] * col[j];
                }
                out[r * out_stride + c] =
                    (((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))) + tail;
            }
        }
    }
}

/// Is the AVX2 tile usable on this host? Runtime-detected once;
/// `DLN_SIMD=0` forces the scalar path (useful for A/B-ing the oracle).
#[cfg(target_arch = "x86_64")]
fn use_avx2() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        !std::env::var("DLN_SIMD").is_ok_and(|v| v.trim() == "0")
            && std::arch::is_x86_feature_detected!("avx2")
    })
}

/// Run one micro-tile on the widest bit-identical kernel available.
#[inline]
fn gram_tile_dispatch<const R: usize, const C: usize>(
    rows: &[&[f32]],
    cols: &[&[f32]],
    out: &mut [f32],
    out_stride: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence checked above; slice lengths validated by
        // the gram_into debug asserts and the tile loop bounds.
        unsafe { avx2::gram_tile::<R, C>(rows, cols, out, out_stride) };
        return;
    }
    gram_tile::<R, C>(rows, cols, out, out_stride)
}

/// Write the `rows.len() × cols.len()` gram block
/// `out[r * cols.len() + c] = dot(rows[r], cols[c])` (row-major), walking
/// full [`GRAM_TILE_ROWS`]`×`[`GRAM_TILE_COLS`] micro-tiles and finishing
/// ragged edges with plain [`dot`] calls — every element is bit-identical
/// to `dot(rows[r], cols[c])` either way.
///
/// # Panics
/// Panics in debug builds when `out.len() != rows.len() * cols.len()` or
/// the vectors disagree on dimensionality.
pub fn gram_into(rows: &[&[f32]], cols: &[&[f32]], out: &mut [f32]) {
    let (nr, nc) = (rows.len(), cols.len());
    debug_assert_eq!(out.len(), nr * nc, "gram_into: output shape mismatch");
    if nr == 0 || nc == 0 {
        return;
    }
    #[cfg(debug_assertions)]
    {
        let d = rows[0].len();
        debug_assert!(rows.iter().chain(cols).all(|v| v.len() == d));
    }
    let full_r = nr / GRAM_TILE_ROWS * GRAM_TILE_ROWS;
    let full_c = nc / GRAM_TILE_COLS * GRAM_TILE_COLS;
    let mut r = 0;
    while r < full_r {
        let rb = &rows[r..r + GRAM_TILE_ROWS];
        let mut c = 0;
        while c < full_c {
            gram_tile_dispatch::<GRAM_TILE_ROWS, GRAM_TILE_COLS>(
                rb,
                &cols[c..c + GRAM_TILE_COLS],
                &mut out[r * nc + c..],
                nc,
            );
            c += GRAM_TILE_COLS;
        }
        // Ragged column edge of this row band.
        for rr in r..r + GRAM_TILE_ROWS {
            for cc in full_c..nc {
                out[rr * nc + cc] = dot(rows[rr], cols[cc]);
            }
        }
        r += GRAM_TILE_ROWS;
    }
    // Ragged row edge (all columns).
    for rr in full_r..nr {
        for cc in 0..nc {
            out[rr * nc + cc] = dot(rows[rr], cols[cc]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot_scalar_ref;

    fn vecs(n: usize, d: usize, salt: u64) -> Vec<Vec<f32>> {
        let mut state = salt | 1;
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn gram_matches_scalar_reference_bitwise_on_ragged_shapes() {
        // Satellite contract: tiled gram kernel bit-identity vs
        // dot_scalar_ref on ragged tile edges — every (n_rows, n_cols, d)
        // where neither the tile size (4) nor the lane width (8) divides
        // the shape.
        for &(nr, nc) in &[(1usize, 1usize), (3, 5), (4, 4), (5, 9), (8, 3), (9, 13)] {
            for &d in &[0usize, 1, 7, 8, 9, 16, 23, 50, 64, 100] {
                let rs = vecs(nr, d, 0xA11CE ^ (nr as u64) << 8 ^ d as u64);
                let cs = vecs(nc, d, 0xB0B ^ (nc as u64) << 8 ^ d as u64);
                let rrefs: Vec<&[f32]> = rs.iter().map(|v| v.as_slice()).collect();
                let crefs: Vec<&[f32]> = cs.iter().map(|v| v.as_slice()).collect();
                let mut out = vec![f32::NAN; nr * nc];
                gram_into(&rrefs, &crefs, &mut out);
                for r in 0..nr {
                    for c in 0..nc {
                        assert_eq!(
                            out[r * nc + c].to_bits(),
                            dot_scalar_ref(&rs[r], &cs[c]).to_bits(),
                            "tile kernel diverged at ({r}, {c}) of {nr}x{nc}, d={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_tile_is_bit_identical_to_scalar_tile() {
        // The gating oracle for the SIMD path, run directly against the
        // scalar tile (not through dispatch) so it checks the vector
        // kernel even if this binary's dispatch decided otherwise.
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // scalar fallback host: nothing to gate
        }
        for &d in &[0usize, 7, 8, 9, 31, 32, 64, 100, 129] {
            let rs = vecs(GRAM_TILE_ROWS, d, 0xDEAD ^ d as u64);
            let cs = vecs(GRAM_TILE_COLS, d, 0xBEEF ^ d as u64);
            let rrefs: Vec<&[f32]> = rs.iter().map(|v| v.as_slice()).collect();
            let crefs: Vec<&[f32]> = cs.iter().map(|v| v.as_slice()).collect();
            let mut scalar = vec![f32::NAN; GRAM_TILE_ROWS * GRAM_TILE_COLS];
            let mut simd = vec![f32::NAN; GRAM_TILE_ROWS * GRAM_TILE_COLS];
            gram_tile::<GRAM_TILE_ROWS, GRAM_TILE_COLS>(
                &rrefs,
                &crefs,
                &mut scalar,
                GRAM_TILE_COLS,
            );
            unsafe {
                avx2::gram_tile::<GRAM_TILE_ROWS, GRAM_TILE_COLS>(
                    &rrefs,
                    &crefs,
                    &mut simd,
                    GRAM_TILE_COLS,
                )
            };
            for (i, (s, v)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    v.to_bits(),
                    "AVX2 tile diverged at element {i}, d={d}"
                );
            }
        }
    }

    #[test]
    fn gram_empty_sides_are_noops() {
        let a = [1.0f32, 2.0];
        let mut out: Vec<f32> = Vec::new();
        gram_into(&[], &[&a], &mut out);
        gram_into(&[&a], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn gram_matches_unrolled_dot_bitwise() {
        let rs = vecs(7, 33, 0x5EED);
        let cs = vecs(6, 33, 0xFACE);
        let rrefs: Vec<&[f32]> = rs.iter().map(|v| v.as_slice()).collect();
        let crefs: Vec<&[f32]> = cs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0.0f32; 42];
        gram_into(&rrefs, &crefs, &mut out);
        for r in 0..7 {
            for c in 0..6 {
                assert_eq!(out[r * 6 + c].to_bits(), dot(&rs[r], &cs[c]).to_bits());
            }
        }
    }
}
