//! Synthetic topic-structured vocabulary.
//!
//! The TagCloud benchmark (paper §4.1) is built by sampling words from the
//! fastText vocabulary: tags are words that are "not very close" in cosine
//! space, and each attribute's domain is the `k` most similar words to its
//! tag. To reproduce that without the proprietary fastText binary, this
//! module generates a vocabulary with the same geometry: `n_topics` topic
//! centres drawn uniformly at random on the unit sphere, and
//! `words_per_topic` words per topic sampled as
//! `normalize(centre + sigma * gaussian_noise)`.
//!
//! In a 50+ dimensional space, random unit vectors are near-orthogonal with
//! overwhelming probability, so distinct topics are well separated while
//! same-topic words have cosine ≈ 1/(1+sigma²) to their centre — exactly the
//! structure the paper's generator induces by taking nearest neighbours of a
//! word.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Identifier of a word in a [`Vocabulary`] (dense, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration for synthetic vocabulary generation.
#[derive(Clone, Debug)]
pub struct VocabularyConfig {
    /// Number of topic centres.
    pub n_topics: usize,
    /// Number of words generated around each topic centre.
    pub words_per_topic: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Intra-topic spread: the expected L2 norm of the Gaussian noise added
    /// to the unit centre before renormalization (per-component std is
    /// `sigma / sqrt(dim)`, so the geometry is dimension-independent).
    /// Cosine between two same-topic words is ≈ `1 / (1 + sigma²)`; around
    /// 0.3–0.6 gives realistic word clouds.
    pub sigma: f32,
    /// Hierarchical correlation: when > 0, topic centres are themselves
    /// clustered around this many *supertopic* centres instead of being
    /// drawn independently on the sphere. Real word-embedding spaces are
    /// strongly correlated (fastText words about fisheries, food
    /// inspection and agriculture all live in one region), which is what
    /// makes navigation genuinely hard; independent topics are
    /// near-orthogonal in high dimension and would make every hierarchy
    /// trivially easy to walk. `0` disables the hierarchy.
    pub n_supertopics: usize,
    /// Expected L2 distance of a topic centre from its supertopic centre
    /// (same normalization as `sigma`). Larger = weaker correlation.
    pub supertopic_sigma: f32,
    /// RNG seed; the whole vocabulary is a pure function of the config.
    pub seed: u64,
}

impl Default for VocabularyConfig {
    fn default() -> Self {
        VocabularyConfig {
            n_topics: 64,
            words_per_topic: 32,
            dim: 50,
            sigma: 0.35,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
            seed: 0xDA7A_1A4E,
        }
    }
}

/// A synthetic word vocabulary with unit-norm embedding vectors arranged in
/// topic clusters.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    dim: usize,
    /// Flattened `len × dim` matrix of unit vectors.
    vectors: Vec<f32>,
    words: Vec<String>,
    /// topic index of each word.
    topics: Vec<u32>,
    /// Flattened `n_topics × dim` matrix of topic centres (unit vectors).
    centres: Vec<f32>,
    index: std::collections::HashMap<String, TokenId>,
}

/// Draw a standard-normal sample via Box–Muller (we avoid a dependency on
/// `rand_distr`, which is outside the allowed crate set).
pub(crate) fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.random();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
}

/// Fill `out` with a uniformly random unit vector.
pub(crate) fn random_unit_vector(rng: &mut impl Rng, out: &mut [f32]) {
    loop {
        for x in out.iter_mut() {
            *x = gaussian(rng);
        }
        let n = crate::vector::l2_norm(out);
        if n > 1e-3 {
            for x in out.iter_mut() {
                *x /= n;
            }
            return;
        }
    }
}

impl Vocabulary {
    /// Generate a vocabulary from `config`. Deterministic in the config.
    pub fn generate(config: &VocabularyConfig) -> Self {
        assert!(config.n_topics > 0, "vocabulary needs at least one topic");
        assert!(config.words_per_topic > 0, "topics need at least one word");
        assert!(config.dim > 0, "embedding dimension must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_words = config.n_topics * config.words_per_topic;
        let mut vectors = vec![0.0f32; n_words * config.dim];
        let mut centres = vec![0.0f32; config.n_topics * config.dim];
        let mut words = Vec::with_capacity(n_words);
        let mut topics = Vec::with_capacity(n_words);
        let mut centre = vec![0.0f32; config.dim];
        let component_sigma = config.sigma / (config.dim as f32).sqrt();
        // Optional supertopic layer: correlated topic centres.
        let mut super_centres: Vec<f32> = Vec::new();
        if config.n_supertopics > 0 {
            let mut sc = vec![0.0f32; config.dim];
            for _ in 0..config.n_supertopics {
                random_unit_vector(&mut rng, &mut sc);
                super_centres.extend_from_slice(&sc);
            }
        }
        let super_component_sigma = config.supertopic_sigma / (config.dim as f32).sqrt();
        for t in 0..config.n_topics {
            if config.n_supertopics > 0 {
                let s = t % config.n_supertopics;
                let base = &super_centres[s * config.dim..(s + 1) * config.dim];
                for (c, b) in centre.iter_mut().zip(base) {
                    *c = *b + super_component_sigma * gaussian(&mut rng);
                }
                crate::vector::normalize(&mut centre);
            } else {
                random_unit_vector(&mut rng, &mut centre);
            }
            centres[t * config.dim..(t + 1) * config.dim].copy_from_slice(&centre);
            for w in 0..config.words_per_topic {
                let wid = t * config.words_per_topic + w;
                let slot = &mut vectors[wid * config.dim..(wid + 1) * config.dim];
                for (s, c) in slot.iter_mut().zip(&centre) {
                    *s = *c + component_sigma * gaussian(&mut rng);
                }
                crate::vector::normalize(slot);
                words.push(format!("t{t:03}w{w:04}"));
                topics.push(t as u32);
            }
        }
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), TokenId(i as u32)))
            .collect();
        Vocabulary {
            dim: config.dim,
            vectors,
            words,
            topics,
            centres,
            index,
        }
    }

    /// Number of words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of topic clusters.
    #[inline]
    pub fn n_topics(&self) -> usize {
        self.centres.len() / self.dim
    }

    /// The word string for an id.
    #[inline]
    pub fn word(&self, id: TokenId) -> &str {
        &self.words[id.index()]
    }

    /// Look up a word's id.
    #[inline]
    pub fn id(&self, word: &str) -> Option<TokenId> {
        self.index.get(word).copied()
    }

    /// The unit embedding vector of a word.
    #[inline]
    pub fn vector(&self, id: TokenId) -> &[f32] {
        let i = id.index() * self.dim;
        &self.vectors[i..i + self.dim]
    }

    /// The topic cluster a word was generated from.
    #[inline]
    pub fn topic_of(&self, id: TokenId) -> u32 {
        self.topics[id.index()]
    }

    /// The unit centre vector of topic `t`.
    #[inline]
    pub fn centre(&self, t: usize) -> &[f32] {
        &self.centres[t * self.dim..(t + 1) * self.dim]
    }

    /// Iterate over all `(id, word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (TokenId(i as u32), w.as_str()))
    }

    /// The `k` words most similar to `query` by cosine (descending). Since
    /// all word vectors are unit-norm, cosine is a plain dot product.
    ///
    /// This is the primitive the TagCloud generator uses: "we selected the k
    /// most similar words, based on Cosine similarity, to the tag" (§4.1).
    pub fn k_nearest(&self, query: &[f32], k: usize) -> Vec<(TokenId, f32)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let q = crate::vector::normalized(query);
        let mut scored: Vec<(TokenId, f32)> = (0..self.len())
            .map(|i| {
                let id = TokenId(i as u32);
                (id, crate::vector::dot(self.vector(id), &q))
            })
            .collect();
        let k = k.min(scored.len());
        scored.select_nth_unstable_by(k.saturating_sub(1), |a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
        });
        scored.truncate(k);
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
    }

    /// Sample `n` words whose pairwise cosine similarity does not exceed
    /// `max_pairwise_cos` — the paper's procedure for choosing tag words
    /// ("a sample of 365 words from the fastText database that are not very
    /// close according to Cosine similarity", §4.1).
    ///
    /// Greedy rejection sampling; panics if the vocabulary cannot supply `n`
    /// such words within `100 * n` proposals.
    pub fn sample_distant_words(
        &self,
        n: usize,
        max_pairwise_cos: f32,
        rng: &mut impl Rng,
    ) -> Vec<TokenId> {
        assert!(n <= self.len(), "cannot sample more words than exist");
        let mut chosen: Vec<TokenId> = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let budget = 100 * n.max(1);
        while chosen.len() < n {
            attempts += 1;
            assert!(
                attempts <= budget,
                "vocabulary too dense to sample {n} words with pairwise cosine <= {max_pairwise_cos}"
            );
            let cand = TokenId(rng.random_range(0..self.len() as u32));
            if chosen.contains(&cand) {
                continue;
            }
            let cv = self.vector(cand);
            let ok = chosen
                .iter()
                .all(|&c| crate::vector::dot(self.vector(c), cv) <= max_pairwise_cos);
            if ok {
                chosen.push(cand);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, l2_norm};

    fn small() -> Vocabulary {
        Vocabulary::generate(&VocabularyConfig {
            n_topics: 8,
            words_per_topic: 10,
            dim: 32,
            sigma: 0.3,
            seed: 7,
            n_supertopics: 0,
            supertopic_sigma: 0.7,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let id = TokenId(i as u32);
            assert_eq!(a.word(id), b.word(id));
            assert_eq!(a.vector(id), b.vector(id));
        }
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = small();
        for i in 0..v.len() {
            let n = l2_norm(v.vector(TokenId(i as u32)));
            assert!((n - 1.0).abs() < 1e-5, "word {i} has norm {n}");
        }
    }

    #[test]
    fn same_topic_words_are_closer_than_cross_topic() {
        let v = small();
        // average intra-topic vs inter-topic cosine
        let mut intra = (0.0f64, 0u64);
        let mut inter = (0.0f64, 0u64);
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                let (a, b) = (TokenId(i as u32), TokenId(j as u32));
                let c = dot(v.vector(a), v.vector(b)) as f64;
                if v.topic_of(a) == v.topic_of(b) {
                    intra.0 += c;
                    intra.1 += 1;
                } else {
                    inter.0 += c;
                    inter.1 += 1;
                }
            }
        }
        let intra_avg = intra.0 / intra.1 as f64;
        let inter_avg = inter.0 / inter.1 as f64;
        assert!(
            intra_avg > inter_avg + 0.3,
            "intra {intra_avg} should dominate inter {inter_avg}"
        );
    }

    #[test]
    fn word_lookup_roundtrip() {
        let v = small();
        for (id, w) in v.iter() {
            assert_eq!(v.id(w), Some(id));
        }
        assert_eq!(v.id("no-such-word"), None);
    }

    #[test]
    fn k_nearest_returns_sorted_and_self_first() {
        let v = small();
        let id = TokenId(3);
        let nn = v.k_nearest(v.vector(id), 5);
        assert_eq!(nn.len(), 5);
        assert_eq!(nn[0].0, id, "a word is its own nearest neighbour");
        for w in nn.windows(2) {
            assert!(w[0].1 >= w[1].1, "scores must be descending");
        }
    }

    #[test]
    fn k_nearest_prefers_same_topic() {
        let v = small();
        let id = TokenId(0);
        let nn = v.k_nearest(v.vector(id), 6);
        let same_topic = nn
            .iter()
            .filter(|(w, _)| v.topic_of(*w) == v.topic_of(id))
            .count();
        assert!(same_topic >= 4, "expected mostly same-topic neighbours");
    }

    #[test]
    fn k_nearest_k_larger_than_vocab_is_clamped() {
        let v = small();
        let nn = v.k_nearest(v.vector(TokenId(0)), 10_000);
        assert_eq!(nn.len(), v.len());
    }

    #[test]
    fn sample_distant_words_respects_threshold() {
        let v = small();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let picked = v.sample_distant_words(6, 0.5, &mut rng);
        assert_eq!(picked.len(), 6);
        for i in 0..picked.len() {
            for j in (i + 1)..picked.len() {
                let c = dot(v.vector(picked[i]), v.vector(picked[j]));
                assert!(c <= 0.5 + 1e-6, "pairwise cosine {c} exceeds threshold");
            }
        }
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
