//! The [`EmbeddingModel`] trait and its two implementations.
//!
//! Everything downstream (topic vectors, organization construction, query
//! expansion) is generic over this trait, so the synthetic model used in the
//! reproduction and real fastText vectors are interchangeable.

use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

use dln_fault::DlnError;

use crate::vector::TopicAccumulator;
use crate::vocab::{TokenId, Vocabulary, VocabularyConfig};

/// A word-embedding model: maps word tokens to dense vectors.
pub trait EmbeddingModel: Send + Sync {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// The vector for `word`, or `None` when the word is out of vocabulary
    /// (fastText covered ~70% of the values in the paper's datasets; the
    /// rest contribute nothing to topic vectors).
    fn embed(&self, word: &str) -> Option<&[f32]>;

    /// Accumulate the vectors of every embeddable token of `tokens` into a
    /// topic accumulator. Returns the number of tokens that had embeddings.
    fn accumulate<'a, I>(&self, tokens: I, acc: &mut TopicAccumulator) -> usize
    where
        I: IntoIterator<Item = &'a str>,
        Self: Sized,
    {
        let mut covered = 0;
        for t in tokens {
            if let Some(v) = self.embed(t) {
                acc.add(v);
                covered += 1;
            }
        }
        covered
    }

    /// Topic vector (sample-mean accumulator) of a token sequence.
    fn topic_of<'a, I>(&self, tokens: I) -> TopicAccumulator
    where
        I: IntoIterator<Item = &'a str>,
        Self: Sized,
    {
        let mut acc = TopicAccumulator::new(self.dim());
        self.accumulate(tokens, &mut acc);
        acc
    }
}

/// Configuration for the synthetic embedding model.
#[derive(Clone, Debug)]
pub struct SyntheticEmbeddingConfig {
    /// The underlying vocabulary geometry.
    pub vocab: VocabularyConfig,
    /// Fraction of vocabulary words that *have* embeddings. The paper
    /// observed fastText covering ~70% of text-attribute values; setting
    /// this below 1.0 reproduces that partial coverage.
    pub coverage: f64,
    /// Seed for the coverage mask (independent of the vocabulary seed).
    pub coverage_seed: u64,
}

impl Default for SyntheticEmbeddingConfig {
    fn default() -> Self {
        SyntheticEmbeddingConfig {
            vocab: VocabularyConfig::default(),
            coverage: 1.0,
            coverage_seed: 0xC0FE,
        }
    }
}

/// Deterministic synthetic embedding model over a topic-structured
/// [`Vocabulary`].
///
/// Substitutes for fastText in this reproduction; see `DESIGN.md` §1.
#[derive(Clone)]
pub struct SyntheticEmbedding {
    vocab: Vocabulary,
    /// `covered[i] == false` simulates an out-of-vocabulary word.
    covered: Vec<bool>,
}

/// A small splitmix64 for deterministic per-word coverage decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SyntheticEmbedding {
    /// Build the model from a config. Fully deterministic.
    pub fn new(config: &SyntheticEmbeddingConfig) -> Self {
        let vocab = Vocabulary::generate(&config.vocab);
        let covered = (0..vocab.len())
            .map(|i| {
                let h = splitmix64(config.coverage_seed ^ (i as u64).wrapping_mul(0x9E3779B1));
                (h as f64 / u64::MAX as f64) < config.coverage
            })
            .collect();
        SyntheticEmbedding { vocab, covered }
    }

    /// Convenience: full-coverage model with the default geometry.
    pub fn with_vocab_config(vocab: VocabularyConfig) -> Self {
        Self::new(&SyntheticEmbeddingConfig {
            vocab,
            coverage: 1.0,
            coverage_seed: 0,
        })
    }

    /// The underlying vocabulary (used by generators and query expansion).
    #[inline]
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Whether a vocabulary word has an embedding under the coverage mask.
    #[inline]
    pub fn is_covered(&self, id: TokenId) -> bool {
        self.covered[id.index()]
    }

    /// Fraction of vocabulary words with embeddings.
    pub fn coverage(&self) -> f64 {
        if self.covered.is_empty() {
            return 0.0;
        }
        self.covered.iter().filter(|c| **c).count() as f64 / self.covered.len() as f64
    }
}

impl EmbeddingModel for SyntheticEmbedding {
    fn dim(&self) -> usize {
        self.vocab.dim()
    }

    fn embed(&self, word: &str) -> Option<&[f32]> {
        let id = self.vocab.id(word)?;
        if self.covered[id.index()] {
            Some(self.vocab.vector(id))
        } else {
            None
        }
    }
}

/// An embedding model loaded from a fastText/GloVe text `.vec` file:
/// optionally a `count dim` header line, then one `word v1 v2 ... vd` line
/// per word.
#[derive(Debug)]
pub struct VecFileModel {
    dim: usize,
    vectors: Vec<f32>,
    index: HashMap<String, u32>,
}

/// Per-category counters for one `.vec` load: how many rows were loaded
/// and how many were quarantined, by reason. Real fastText dumps contain
/// a few malformed rows (truncated lines, `nan` values, duplicates); the
/// loader skips them, counts them here, and only errors when *nothing*
/// loads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecLoadReport {
    /// Rows that became embeddings.
    pub rows_loaded: usize,
    /// `count dim` header lines recognized and skipped.
    pub header_lines: usize,
    /// Rows whose values failed to parse as numbers.
    pub unparseable_rows: usize,
    /// Rows whose arity disagreed with the established dimension
    /// (typically a truncated final line).
    pub dim_mismatch_rows: usize,
    /// Rows containing a NaN or infinite component. A non-finite vector
    /// would silently poison every topic mean it touches downstream, so
    /// these are quarantined even though they *parse*.
    pub non_finite_rows: usize,
    /// Rows repeating an already-loaded word (first occurrence wins).
    pub duplicate_words: usize,
}

impl VecLoadReport {
    /// Total rows quarantined (skipped for any reason except headers).
    pub fn total_quarantined(&self) -> usize {
        self.unparseable_rows + self.dim_mismatch_rows + self.non_finite_rows + self.duplicate_words
    }
}

impl VecFileModel {
    /// Parse a `.vec`-format stream.
    ///
    /// Lines that do not match the expected arity are skipped (real fastText
    /// dumps contain a few malformed rows). Returns an error only if no
    /// valid rows are found. Compatibility wrapper over
    /// [`from_reader_report`](Self::from_reader_report), dropping the report.
    pub fn from_reader<R: BufRead>(reader: R) -> std::io::Result<Self> {
        Self::from_reader_report(reader)
            .map(|(m, _)| m)
            .map_err(std::io::Error::from)
    }

    /// Parse a `.vec`-format stream, quarantining malformed rows into a
    /// [`VecLoadReport`] instead of aborting: unparseable rows, truncated
    /// rows (arity/dimension mismatch), rows with NaN/infinite components,
    /// and duplicate words are counted and skipped. Errors only on IO
    /// failure or when no valid row is found at all.
    pub fn from_reader_report<R: BufRead>(reader: R) -> Result<(Self, VecLoadReport), DlnError> {
        let mut report = VecLoadReport::default();
        let mut dim = 0usize;
        let mut vectors: Vec<f32> = Vec::new();
        let mut index = HashMap::new();
        for line in reader.lines() {
            let line = line.map_err(|e| DlnError::io("reading .vec stream", e))?;
            let mut parts = line.split_whitespace();
            let Some(word) = parts.next() else { continue };
            let rest: Vec<&str> = parts.collect();
            if rest.is_empty() {
                report.unparseable_rows += 1;
                continue;
            }
            // Header line: "count dim".
            if dim == 0 && rest.len() == 1 && word.parse::<u64>().is_ok() {
                report.header_lines += 1;
                continue;
            }
            let parsed: Option<Vec<f32>> = rest.iter().map(|s| s.parse::<f32>().ok()).collect();
            let Some(vals) = parsed else {
                report.unparseable_rows += 1;
                continue;
            };
            // `parse::<f32>` accepts "NaN"/"inf"; a non-finite component
            // must not reach topic accumulators.
            if vals.iter().any(|v| !v.is_finite()) {
                report.non_finite_rows += 1;
                continue;
            }
            if dim == 0 {
                dim = vals.len();
            }
            if vals.len() != dim {
                report.dim_mismatch_rows += 1;
                continue;
            }
            if index.contains_key(word) {
                report.duplicate_words += 1;
                continue;
            }
            index.insert(word.to_string(), (vectors.len() / dim) as u32);
            vectors.extend_from_slice(&vals);
            report.rows_loaded += 1;
        }
        if dim == 0 {
            return Err(DlnError::malformed(
                ".vec stream",
                format!(
                    "no valid embedding rows found ({} quarantined)",
                    report.total_quarantined()
                ),
            ));
        }
        Ok((
            VecFileModel {
                dim,
                vectors,
                index,
            },
            report,
        ))
    }

    /// Load from a file path.
    pub fn from_path(path: &Path) -> std::io::Result<Self> {
        Self::from_path_report(path)
            .map(|(m, _)| m)
            .map_err(std::io::Error::from)
    }

    /// Load from a file path, returning the quarantine report.
    pub fn from_path_report(path: &Path) -> Result<(Self, VecLoadReport), DlnError> {
        let file = std::fs::File::open(path)
            .map_err(|e| DlnError::io(format!("opening {}", path.display()), e))?;
        Self::from_reader_report(std::io::BufReader::new(file))
    }

    /// Number of words loaded.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no words were loaded.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

impl EmbeddingModel for VecFileModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, word: &str) -> Option<&[f32]> {
        let i = *self.index.get(word)? as usize;
        Some(&self.vectors[i * self.dim..(i + 1) * self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::l2_norm;

    fn model(coverage: f64) -> SyntheticEmbedding {
        SyntheticEmbedding::new(&SyntheticEmbeddingConfig {
            vocab: VocabularyConfig {
                n_topics: 6,
                words_per_topic: 10,
                dim: 24,
                sigma: 0.3,
                seed: 11,
                n_supertopics: 0,
                supertopic_sigma: 0.7,
            },
            coverage,
            coverage_seed: 5,
        })
    }

    #[test]
    fn embed_known_word() {
        let m = model(1.0);
        let (id, word) = m
            .vocab()
            .iter()
            .next()
            .map(|(i, w)| (i, w.to_string()))
            .unwrap();
        let v = m.embed(&word).expect("covered word must embed");
        assert_eq!(v, m.vocab().vector(id));
        assert!((l2_norm(v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn embed_unknown_word_is_none() {
        let m = model(1.0);
        assert!(m.embed("definitely-not-a-word").is_none());
    }

    #[test]
    fn coverage_mask_reduces_embeddable_words() {
        let m = model(0.7);
        let c = m.coverage();
        assert!((0.5..0.9).contains(&c), "coverage {c} should be near 0.7");
        // an uncovered word embeds to None
        let uncovered = m
            .vocab()
            .iter()
            .find(|(id, _)| !m.is_covered(*id))
            .map(|(_, w)| w.to_string())
            .expect("some word should be uncovered");
        assert!(m.embed(&uncovered).is_none());
    }

    #[test]
    fn coverage_is_deterministic() {
        let a = model(0.7);
        let b = model(0.7);
        for (id, _) in a.vocab().iter() {
            assert_eq!(a.is_covered(id), b.is_covered(id));
        }
    }

    #[test]
    fn topic_of_averages_tokens() {
        let m = model(1.0);
        let w0 = m.vocab().word(crate::vocab::TokenId(0)).to_string();
        let w1 = m.vocab().word(crate::vocab::TokenId(1)).to_string();
        let acc = m.topic_of([w0.as_str(), w1.as_str(), "zzz-unknown"]);
        assert_eq!(acc.count(), 2, "unknown token must not count");
        let mean = acc.mean();
        let v0 = m.vocab().vector(crate::vocab::TokenId(0));
        let v1 = m.vocab().vector(crate::vocab::TokenId(1));
        for i in 0..mean.len() {
            assert!((mean[i] - (v0[i] + v1[i]) / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn vec_file_roundtrip() {
        let data = "3 4\nfoo 1 0 0 0\nbar 0 1 0 0\nbaz 0 0 0.5 0.5\nmalformed 1 2\n";
        let m = VecFileModel::from_reader(std::io::Cursor::new(data)).unwrap();
        assert_eq!(m.dim(), 4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.embed("foo").unwrap(), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.embed("baz").unwrap(), &[0.0, 0.0, 0.5, 0.5]);
        assert!(m.embed("malformed").is_none());
        assert!(m.embed("qux").is_none());
    }

    #[test]
    fn vec_file_without_header() {
        let data = "foo 1 0\nbar 0 1\n";
        let m = VecFileModel::from_reader(std::io::Cursor::new(data)).unwrap();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn vec_file_empty_is_error() {
        assert!(VecFileModel::from_reader(std::io::Cursor::new("")).is_err());
    }

    #[test]
    fn vec_file_report_counts_quarantined_rows() {
        // header, 2 good rows, a NaN row, an inf row, a truncated row, a
        // duplicate, and an unparseable row.
        let data = "7 3\n\
                    foo 1 0 0\n\
                    bar 0 1 0\n\
                    poisoned NaN 0 0\n\
                    hot inf 0 1\n\
                    cut 1 0\n\
                    foo 9 9 9\n\
                    junk x y z\n";
        let (m, report) = VecFileModel::from_reader_report(std::io::Cursor::new(data)).unwrap();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.len(), 2);
        assert_eq!(report.rows_loaded, 2);
        assert_eq!(report.header_lines, 1);
        assert_eq!(report.non_finite_rows, 2, "NaN and inf rows quarantined");
        assert_eq!(report.dim_mismatch_rows, 1);
        assert_eq!(report.duplicate_words, 1);
        assert_eq!(report.unparseable_rows, 1);
        assert_eq!(report.total_quarantined(), 5);
        // The NaN vector must not be loadable: it would poison every topic
        // mean it touches.
        assert!(m.embed("poisoned").is_none());
        assert_eq!(m.embed("foo").unwrap(), &[1.0, 0.0, 0.0], "first wins");
    }

    #[test]
    fn vec_file_all_rows_quarantined_is_typed_error() {
        let data = "bad NaN NaN\nworse inf inf\n";
        let err = VecFileModel::from_reader_report(std::io::Cursor::new(data)).unwrap_err();
        assert!(matches!(err, dln_fault::DlnError::Malformed { .. }));
        // The io::Result wrapper downgrades it to InvalidData.
        let io_err = VecFileModel::from_reader(std::io::Cursor::new(data)).unwrap_err();
        assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidData);
    }
}
