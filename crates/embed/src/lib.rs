//! Embedding substrate for the data-lake navigation system.
//!
//! The paper ("Organizing Data Lakes for Navigation", SIGMOD 2020) represents
//! every text value by a fastText word-embedding vector and every attribute /
//! organization state by the *sample mean* of its value vectors (its *topic
//! vector*, Definition 4). All downstream algorithms consume only:
//!
//! 1. per-value vectors,
//! 2. their sample means, and
//! 3. cosine similarities between those means.
//!
//! This crate provides exactly that interface through the [`EmbeddingModel`]
//! trait, with two implementations:
//!
//! * [`SyntheticEmbedding`] — a deterministic, topic-structured synthetic
//!   model used when real fastText vectors are unavailable (the standard
//!   setup in this reproduction; see `DESIGN.md` §1 for the substitution
//!   argument). Words are organized around topic centres on the unit sphere
//!   so that same-topic words are close in cosine space and cross-topic
//!   words are near-orthogonal, which is the only property the organization
//!   algorithm relies on.
//! * [`VecFileModel`] — a loader for real fastText/GloVe `.vec`-format files,
//!   so the system can be pointed at genuine embeddings.
//!
//! The crate also supplies the dense-vector kernels ([`vector`]) and the
//! tokenizer ([`tokenize`]) used to turn raw cell values into embedding
//! lookups.

#![warn(missing_docs)]
// Robustness contract (ISSUE 3): `.vec` loading must degrade gracefully on
// malformed rows, never abort the pipeline. Panicking extractors are banned
// outside tests; fallible paths return `DlnError`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gram;
pub mod model;
pub mod tokenize;
pub mod vector;
pub mod vocab;

pub use gram::{gram_into, GRAM_TILE_COLS, GRAM_TILE_ROWS};
pub use model::{
    EmbeddingModel, SyntheticEmbedding, SyntheticEmbeddingConfig, VecFileModel, VecLoadReport,
};
pub use tokenize::{is_numeric_value, tokenize};
pub use vector::{
    batch_dot_wide, cosine, dot, dot_scalar_ref, l2_norm, mean, normalize, normalized,
    TopicAccumulator,
};
pub use vocab::{TokenId, Vocabulary, VocabularyConfig};
