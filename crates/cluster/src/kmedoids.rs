//! k-medoids clustering (Voronoi iteration / "alternating" algorithm).
//!
//! Used in two places by the organization system, matching the paper:
//!
//! * partitioning the tags of a lake into the `k` dimensions of a
//!   multi-dimensional organization (§2.5: "we clustered the tags into N
//!   clusters (using n-medoids)"; §4.3.4: "partitioning its tags into ten
//!   groups using k-medoids clustering [23]");
//! * selecting the attribute *representatives* for approximate evaluation
//!   (§3.4: a one-to-one mapping between representatives and a partitioning
//!   of attributes — the medoid of each partition is its representative).
//!
//! Seeding is k-means++-style (first medoid uniform, subsequent medoids
//! with probability proportional to squared distance to the nearest chosen
//! medoid), followed by alternating assignment / medoid-update steps until
//! the assignment stabilizes or `max_iter` is hit.
//!
//! The algorithm is **matrix-free**: assignment and seeding stream
//! [`ASSIGN_BLOCK`]-point strips through the tiled
//! [`PairwiseDistance::dist_block`] kernel (scratch is `strip × k`, never
//! `n × n`), so fitting the full 50k-attribute lake costs kilobytes of
//! working memory. Every streamed distance is bit-identical to the
//! corresponding one-pair `dist` call, so results are unchanged from the
//! scalar implementation at any strip size or thread count.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::distance::PairwiseDistance;

/// Minimum number of distance evaluations in an assignment / medoid-update
/// step before it fans out over the worker pool — below this the scoped
/// spawn overhead outweighs the arithmetic. Results are identical either
/// way: per-point work is independent, and every reduction (the assignment
/// cost sum, the per-cluster argmin) is folded serially in fixed index
/// order.
const PAR_MIN_DIST_EVALS: usize = 1 << 14;

/// Points per [`PairwiseDistance::dist_block`] strip in the assignment and
/// seeding scans. The strips keep k-medoids **matrix-free** — at no point
/// is anything larger than `ASSIGN_BLOCK × k` distances materialized, so
/// fitting 50k attribute vectors needs kilobytes of scratch, not the
/// gigabytes an `n × n` matrix would — while routing every evaluation
/// through the tiled gram kernel. Every distance is bit-identical to the
/// corresponding `dist` call, so the strip size is invisible in results.
const ASSIGN_BLOCK: usize = 64;

/// Result of a k-medoids run.
#[derive(Clone, Debug)]
pub struct KMedoids {
    /// Cluster index in `0..k` for every point.
    pub assignments: Vec<usize>,
    /// Point index of each cluster's medoid.
    pub medoids: Vec<usize>,
    /// Total cost: sum over points of distance to their medoid.
    pub cost: f64,
    /// Number of alternating iterations executed.
    pub iterations: usize,
}

impl KMedoids {
    /// Cluster `points` into `k` groups. Deterministic in `seed`.
    ///
    /// `k` is clamped to `1..=n`; for `n == 0` an empty result is returned.
    pub fn fit<D: PairwiseDistance>(points: &D, k: usize, seed: u64) -> KMedoids {
        Self::fit_with(points, k, seed, 100)
    }

    /// As [`fit`](Self::fit) with an explicit iteration cap.
    pub fn fit_with<D: PairwiseDistance>(
        points: &D,
        k: usize,
        seed: u64,
        max_iter: usize,
    ) -> KMedoids {
        let n = points.len();
        if n == 0 {
            return KMedoids {
                assignments: Vec::new(),
                medoids: Vec::new(),
                cost: 0.0,
                iterations: 0,
            };
        }
        let k = k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        // Shared identity index: dist_block strips borrow their row-id
        // spans from here instead of regathering per strip.
        let ids: Vec<usize> = (0..n).collect();
        let mut medoids = seed_plus_plus(points, k, &ids, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0usize;
        let mut cost = assign(points, &medoids, &ids, &mut assignments);
        while iterations < max_iter {
            iterations += 1;
            // Medoid update: within each cluster, the point minimizing the
            // sum of distances to the cluster members.
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (p, &c) in assignments.iter().enumerate() {
                members[c].push(p);
            }
            let mut changed = false;
            for (c, group) in members.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let best = update_medoid(points, group, medoids[c]);
                if best != medoids[c] {
                    medoids[c] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let new_cost = assign(points, &medoids, &ids, &mut assignments);
            if new_cost >= cost {
                cost = new_cost;
                break;
            }
            cost = new_cost;
        }
        KMedoids {
            assignments,
            medoids,
            cost,
            iterations,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Members of each cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (p, &c) in self.assignments.iter().enumerate() {
            groups[c].push(p);
        }
        groups
    }
}

/// Fill `out[p] = dist(p, m)` for every point, in [`ASSIGN_BLOCK`]-row
/// [`PairwiseDistance::dist_block`] strips — each value bit-identical to
/// the one-pair `dist` call, so callers see no difference beyond speed.
fn dists_to_one<D: PairwiseDistance>(points: &D, ids: &[usize], m: usize, out: &mut [f32]) {
    let n = points.len();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + ASSIGN_BLOCK).min(n);
        points.dist_block(&ids[lo..hi], &[m], &mut out[lo..hi]);
        lo = hi;
    }
}

/// k-means++-style seeding over an arbitrary metric. Distance sweeps run in
/// [`ASSIGN_BLOCK`] strips on the blocked kernel ([`dists_to_one`]); the
/// weighted draw and the running-minimum update walk points in ascending
/// order over bit-identical values, so seeding is unchanged from the
/// one-pair-at-a-time implementation.
fn seed_plus_plus<D: PairwiseDistance>(
    points: &D,
    k: usize,
    ids: &[usize],
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = points.len();
    let mut medoids = Vec::with_capacity(k);
    medoids.push(rng.random_range(0..n));
    let mut nearest = vec![0.0f32; n];
    dists_to_one(points, ids, medoids[0], &mut nearest);
    let mut fresh = vec![0.0f32; n];
    while medoids.len() < k {
        let total: f64 = nearest.iter().map(|d| (*d as f64) * (*d as f64)).sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with a medoid; pick any non-medoid.
            (0..n).find(|p| !medoids.contains(p)).unwrap_or(0)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (p, d) in nearest.iter().enumerate() {
                let w = (*d as f64) * (*d as f64);
                if target < w {
                    chosen = p;
                    break;
                }
                target -= w;
            }
            chosen
        };
        medoids.push(next);
        dists_to_one(points, ids, next, &mut fresh);
        for (slot, &d) in nearest.iter_mut().zip(&fresh) {
            if d < *slot {
                *slot = d;
            }
        }
    }
    medoids
}

/// New medoid of one cluster: the first member (in group order) minimizing
/// the sum of distances to every member.
///
/// The serial path walks candidates with a running partial sum and breaks
/// out as soon as the partial exceeds the incumbent; since distances are
/// non-negative, a broken-off candidate's full sum can only be larger, so
/// the early exit never changes the winner. The parallel path therefore
/// computes every candidate's *full* sum concurrently (one candidate per
/// `par_map` index, member terms added in group order) and picks the first
/// strict minimum serially — the same argmin, for any worker count.
fn update_medoid<D: PairwiseDistance>(points: &D, group: &[usize], incumbent: usize) -> usize {
    let g = group.len();
    let mut best = incumbent;
    let mut best_cost = f64::INFINITY;
    if rayon::current_num_threads() > 1 && g * g >= PAR_MIN_DIST_EVALS {
        let sums = rayon::par_map(g, |i| {
            let cand = group[i];
            group
                .iter()
                .map(|&m| points.dist(cand, m) as f64)
                .sum::<f64>()
        });
        for (i, &s) in sums.iter().enumerate() {
            if s < best_cost {
                best_cost = s;
                best = group[i];
            }
        }
    } else {
        for &cand in group {
            let mut s = 0.0f64;
            for &m in group {
                s += points.dist(cand, m) as f64;
                if s >= best_cost {
                    break;
                }
            }
            if s < best_cost {
                best_cost = s;
                best = cand;
            }
        }
    }
    best
}

/// Assign every point to its nearest medoid; returns the total cost.
///
/// Points are processed in [`ASSIGN_BLOCK`]-row strips: one
/// [`PairwiseDistance::dist_block`] rectangle (`strip × k`, tiled kernel)
/// followed by per-point first-index strict-minimum scans over the medoids
/// in order — the same comparisons over bit-identical values as the old
/// one-`dist`-per-pair loop. Strips are independent, so they fan out over
/// the worker pool when the work warrants it; assignments and the cost sum
/// are then folded serially in point order, making the result bit-identical
/// to the serial loop at any thread or strip count.
fn assign<D: PairwiseDistance>(
    points: &D,
    medoids: &[usize],
    ids: &[usize],
    out: &mut [usize],
) -> f64 {
    let n = points.len();
    let k = medoids.len();
    let n_strips = n.div_ceil(ASSIGN_BLOCK);
    let strip = |s: usize, scratch: &mut Vec<f32>| -> Vec<(usize, f32)> {
        let lo = s * ASSIGN_BLOCK;
        let hi = (lo + ASSIGN_BLOCK).min(n);
        scratch.clear();
        scratch.resize((hi - lo) * k, 0.0);
        points.dist_block(&ids[lo..hi], medoids, scratch);
        (0..hi - lo)
            .map(|r| {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (c, &d) in scratch[r * k..(r + 1) * k].iter().enumerate() {
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                (best, best_d)
            })
            .collect()
    };
    let mut cost = 0.0f64;
    let mut slot = 0usize;
    if rayon::current_num_threads() > 1 && n.saturating_mul(k) >= PAR_MIN_DIST_EVALS {
        let results = rayon::par_map(n_strips, |s| strip(s, &mut Vec::new()));
        for (best, best_d) in results.into_iter().flatten() {
            out[slot] = best;
            slot += 1;
            cost += best_d as f64;
        }
    } else {
        let mut scratch = Vec::new();
        for s in 0..n_strips {
            for (best, best_d) in strip(s, &mut scratch) {
                out[slot] = best;
                slot += 1;
                cost += best_d as f64;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{CosinePoints, MatrixDistance};

    fn two_blobs() -> MatrixDistance {
        // points 0..3 near origin, 3..6 near 100
        let coords = [0.0f32, 1.0, 2.0, 100.0, 101.0, 102.0];
        let n = coords.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (coords[i] - coords[j]).abs();
            }
        }
        MatrixDistance::new(n, d)
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMedoids::fit(&two_blobs(), 2, 42);
        assert_eq!(km.k(), 2);
        assert_eq!(km.assignments[0], km.assignments[1]);
        assert_eq!(km.assignments[1], km.assignments[2]);
        assert_eq!(km.assignments[3], km.assignments[4]);
        assert_eq!(km.assignments[4], km.assignments[5]);
        assert_ne!(km.assignments[0], km.assignments[3]);
        // Medoids are the blob centres (points 1 and 4).
        let mut ms = km.medoids.clone();
        ms.sort_unstable();
        assert_eq!(ms, vec![1, 4]);
        assert!((km.cost - 4.0).abs() < 1e-6);
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let km = KMedoids::fit(&two_blobs(), 2, 7);
        for (c, &m) in km.medoids.iter().enumerate() {
            assert_eq!(km.assignments[m], c);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = KMedoids::fit(&two_blobs(), 2, 5);
        let b = KMedoids::fit(&two_blobs(), 2, 5);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn k_one_selects_global_medoid() {
        let km = KMedoids::fit(&two_blobs(), 1, 3);
        assert_eq!(km.k(), 1);
        assert!(km.assignments.iter().all(|&c| c == 0));
    }

    #[test]
    fn k_clamped_to_n() {
        let km = KMedoids::fit(&two_blobs(), 100, 3);
        assert_eq!(km.k(), 6);
        assert!(km.cost.abs() < 1e-9, "every point is its own medoid");
    }

    #[test]
    fn empty_input() {
        let zero = MatrixDistance::new(0, vec![]);
        let km = KMedoids::fit(&zero, 3, 1);
        assert!(km.assignments.is_empty());
        assert!(km.medoids.is_empty());
    }

    #[test]
    fn clusters_accessor_partitions_points() {
        let km = KMedoids::fit(&two_blobs(), 2, 11);
        let cs = km.clusters();
        let total: usize = cs.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn cosine_blobs() {
        let pts: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.995, 0.0998],
            vec![0.0, 1.0],
            vec![0.0998, 0.995],
        ];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let km = KMedoids::fit(&cp, 2, 19);
        assert_eq!(km.assignments[0], km.assignments[1]);
        assert_eq!(km.assignments[2], km.assignments[3]);
        assert_ne!(km.assignments[0], km.assignments[2]);
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let d = MatrixDistance::new(4, vec![0.0; 16]);
        let km = KMedoids::fit(&d, 2, 1);
        assert_eq!(km.k(), 2);
        assert!(km.cost.abs() < 1e-12);
    }

    #[test]
    fn blocked_assign_matches_per_pair_oracle_bitwise() {
        // The strip/dist_block restructuring must not change a single bit:
        // compare against the historical one-dist-per-pair scan on a point
        // count that straddles ASSIGN_BLOCK (67 = 64 + 3 ragged rows).
        let mut state = 0x0A551u64;
        let pts: Vec<Vec<f32>> = (0..67)
            .map(|_| {
                let mut v: Vec<f32> = (0..21)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                    })
                    .collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let n = cp.len();
        let medoids = vec![3usize, 17, 40, 41, 66];
        let ids: Vec<usize> = (0..n).collect();
        let mut got = vec![0usize; n];
        let got_cost = assign(&cp, &medoids, &ids, &mut got);
        let mut want = vec![0usize; n];
        let mut want_cost = 0.0f64;
        for (p, slot) in want.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, &m) in medoids.iter().enumerate() {
                let d = cp.dist(p, m);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
            want_cost += best_d as f64;
        }
        assert_eq!(got, want);
        assert_eq!(got_cost.to_bits(), want_cost.to_bits());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Sized so k = 3 pushes the medoid update over the parallel gate
        // (group² ≳ 2^14) and k = 40 pushes the assignment step over it
        // (n·k ≳ 2^14); both must match the single-thread run exactly.
        let mut state = 0xBEEFu64;
        let coords: Vec<f32> = (0..600)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 50.0
            })
            .collect();
        let n = coords.len();
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (coords[i] - coords[j]).abs();
            }
        }
        let m = MatrixDistance::new(n, d);
        for k in [3usize, 40] {
            rayon::set_num_threads(1);
            let serial = KMedoids::fit(&m, k, 9);
            rayon::set_num_threads(0);
            for t in [2usize, 4] {
                rayon::set_num_threads(t);
                let par = KMedoids::fit(&m, k, 9);
                rayon::set_num_threads(0);
                assert_eq!(par.assignments, serial.assignments, "k={k}, t={t}");
                assert_eq!(par.medoids, serial.medoids, "k={k}, t={t}");
                assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "k={k}, t={t}");
                assert_eq!(par.iterations, serial.iterations, "k={k}, t={t}");
            }
        }
    }
}
