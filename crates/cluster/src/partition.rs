//! Index partitioning over a point set — the shared front door for every
//! "split this universe into k topical groups" decision in the system:
//! multi-dimensional organizations (§2.5) partition a lake's tags, and
//! sharded single-dimension construction partitions one dimension's tags
//! across parallel search workers.

use crate::distance::PairwiseDistance;
use crate::kmedoids::KMedoids;

/// Partition `points` into at most `k` non-empty groups of point indices
/// with k-medoids (k-means++-style seeding, deterministic in `seed` and
/// invariant to the worker count). Groups are returned in medoid-cluster
/// order, indices ascending within each group; fewer than `k` groups come
/// back when clusters collapse. An empty point set yields no groups.
pub fn partition_indices<D: PairwiseDistance>(points: &D, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let km = KMedoids::fit(points, k, seed);
    let mut groups = vec![Vec::new(); k];
    for (i, &c) in km.assignments.iter().enumerate() {
        groups[c].push(i);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::CosinePoints;

    fn axis_points() -> Vec<Vec<f32>> {
        // Two tight bundles around orthogonal axes.
        vec![
            vec![1.0, 0.0],
            vec![0.98, 0.199],
            vec![0.0, 1.0],
            vec![0.199, 0.98],
        ]
    }

    #[test]
    fn partitions_cover_all_indices_exactly_once() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let groups = partition_indices(&cp, 2, 7);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(groups.len() <= 2 && !groups.is_empty());
        for g in &groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "indices ascend in-group");
        }
    }

    #[test]
    fn k_is_clamped_and_empty_is_empty() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let groups = partition_indices(&cp, 100, 1);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        let none = CosinePoints::new(Vec::new());
        assert!(partition_indices(&none, 3, 1).is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        assert_eq!(partition_indices(&cp, 2, 5), partition_indices(&cp, 2, 5));
    }
}
