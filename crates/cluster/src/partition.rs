//! Index partitioning over a point set — the shared front door for every
//! "split this universe into k topical groups" decision in the system:
//! multi-dimensional organizations (§2.5) partition a lake's tags, and
//! sharded single-dimension construction partitions one dimension's tags
//! across parallel search workers.
//!
//! [`auto_partition_k`] adds the data-driven variant: instead of a fixed
//! `k` it sweeps a candidate ladder, records the k-medoids cost spectrum,
//! and picks the **knee** of the curve — the count where further splitting
//! stops buying cohesion. Sharded construction uses it for
//! `DLN_SHARDS=auto`.

use crate::distance::PairwiseDistance;
use crate::kmedoids::KMedoids;

/// Partition `points` into at most `k` non-empty groups of point indices
/// with k-medoids (k-means++-style seeding, deterministic in `seed` and
/// invariant to the worker count). Groups are returned in medoid-cluster
/// order, indices ascending within each group; fewer than `k` groups come
/// back when clusters collapse. An empty point set yields no groups.
pub fn partition_indices<D: PairwiseDistance>(points: &D, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let km = KMedoids::fit(points, k, seed);
    let mut groups = vec![Vec::new(); k];
    for (i, &c) in km.assignments.iter().enumerate() {
        groups[c].push(i);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Candidate ladder for [`auto_partition_k`]: dense at the small counts
/// where the cost curve bends, sparse above (splitting past ~16 shards has
/// never paid on measured lakes), clamped to `k_max`. Always starts at 1 so
/// the knee can conclude "don't shard".
fn shard_candidates(k_max: usize) -> Vec<usize> {
    [1usize, 2, 3, 4, 6, 8, 12, 16]
        .into_iter()
        .filter(|&k| k <= k_max)
        .collect()
}

/// The k-medoids cost spectrum over candidate group counts, plus the chosen
/// knee. Produced by [`auto_partition_k`]; benches report it verbatim so a
/// BENCH json shows *why* a count was picked.
#[derive(Clone, Debug)]
pub struct ShardSpectrum {
    /// Candidate group counts, ascending, starting at 1.
    pub candidates: Vec<usize>,
    /// Total k-medoids cost (sum of point-to-medoid distances) at each
    /// candidate count.
    pub costs: Vec<f64>,
    /// The chosen count — see [`knee_of`].
    pub knee: usize,
}

/// Pick the knee of a non-increasing cost curve: normalize both axes to the
/// endpoints, then take the interior candidate with the **maximum vertical
/// deviation below the endpoint chord** (the discrete "kneedle" criterion),
/// first index winning ties via strict `>`. Degenerate curves — fewer than
/// three candidates, a flat or non-finite cost range, or no candidate below
/// the chord — answer `1` (don't split). Deterministic: pure arithmetic on
/// the inputs, no RNG, no thread dependence.
pub fn knee_of(candidates: &[usize], costs: &[f64]) -> usize {
    if candidates.len() < 3 || candidates.len() != costs.len() {
        return 1;
    }
    let x0 = candidates[0] as f64;
    let x1 = candidates[candidates.len() - 1] as f64;
    let y0 = costs[0];
    let y1 = costs[costs.len() - 1];
    let y_range = y0 - y1;
    if !y_range.is_finite() || y_range <= 0.0 || x1 <= x0 {
        return 1;
    }
    let mut best = 1usize;
    let mut best_dev = 0.0f64;
    for i in 1..candidates.len() - 1 {
        let t = (candidates[i] as f64 - x0) / (x1 - x0);
        let chord = y0 + t * (y1 - y0);
        let dev = (chord - costs[i]) / y_range;
        if dev > best_dev {
            best_dev = dev;
            best = candidates[i];
        }
    }
    best
}

/// Sweep k-medoids over the [`shard_candidates`] ladder (clamped to
/// `k_max` and the point count) and return the cost spectrum with its
/// knee. Each fit is deterministic in `seed` and invariant to the worker
/// count, so the chosen count is too. `n ≤ 1` or `k_max ≤ 1` short-circuit
/// to a single-candidate spectrum with knee 1.
pub fn auto_partition_k<D: PairwiseDistance>(points: &D, k_max: usize, seed: u64) -> ShardSpectrum {
    let n = points.len();
    let candidates = shard_candidates(k_max.min(n.max(1)));
    let costs: Vec<f64> = candidates
        .iter()
        .map(|&k| KMedoids::fit(points, k, seed).cost)
        .collect();
    let knee = knee_of(&candidates, &costs);
    ShardSpectrum {
        candidates,
        costs,
        knee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::CosinePoints;

    fn axis_points() -> Vec<Vec<f32>> {
        // Two tight bundles around orthogonal axes.
        vec![
            vec![1.0, 0.0],
            vec![0.98, 0.199],
            vec![0.0, 1.0],
            vec![0.199, 0.98],
        ]
    }

    #[test]
    fn partitions_cover_all_indices_exactly_once() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let groups = partition_indices(&cp, 2, 7);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(groups.len() <= 2 && !groups.is_empty());
        for g in &groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "indices ascend in-group");
        }
    }

    #[test]
    fn k_is_clamped_and_empty_is_empty() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let groups = partition_indices(&cp, 100, 1);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        let none = CosinePoints::new(Vec::new());
        assert!(partition_indices(&none, 3, 1).is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = axis_points();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        assert_eq!(partition_indices(&cp, 2, 5), partition_indices(&cp, 2, 5));
    }

    #[test]
    fn knee_picks_the_elbow() {
        // Sharp elbow at k = 4: steep drop, then flat.
        let cands = [1usize, 2, 3, 4, 6, 8];
        let costs = [100.0f64, 60.0, 30.0, 8.0, 7.0, 6.0];
        assert_eq!(knee_of(&cands, &costs), 4);
    }

    #[test]
    fn knee_degenerate_curves_answer_one() {
        // Flat curve: splitting buys nothing.
        assert_eq!(knee_of(&[1, 2, 4], &[5.0, 5.0, 5.0]), 1);
        // Too few candidates to have an interior point.
        assert_eq!(knee_of(&[1, 2], &[9.0, 1.0]), 1);
        // Convex-up curve (every interior point above the chord).
        assert_eq!(knee_of(&[1, 2, 4, 8], &[10.0, 9.9, 9.5, 0.0]), 1);
        // Non-finite range.
        assert_eq!(knee_of(&[1, 2, 4], &[f64::INFINITY, 1.0, 0.5]), 1);
        assert_eq!(knee_of(&[1, 2, 4], &[f64::NAN, 1.0, 0.5]), 1);
    }

    #[test]
    fn auto_partition_finds_planted_cluster_count() {
        // Three tight orthogonal bundles in R^4 — the cost curve collapses
        // at k = 3 and flattens after, so the knee should say 3.
        let mut pts: Vec<Vec<f32>> = Vec::new();
        let mut state = 0x517Eu64;
        for axis in 0..3usize {
            for _ in 0..12 {
                let mut v = vec![0.0f32; 4];
                v[axis] = 1.0;
                // small deterministic jitter on the next axis
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let eps = ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 0.1;
                v[(axis + 1) % 4] = eps;
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                pts.push(v);
            }
        }
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let spec = auto_partition_k(&cp, 16, 42);
        assert_eq!(spec.candidates[0], 1);
        assert_eq!(spec.candidates.len(), spec.costs.len());
        assert_eq!(spec.knee, 3, "spectrum: {:?}", spec);
        // Invariant to worker count.
        for t in [2usize, 4] {
            rayon::set_num_threads(t);
            let again = auto_partition_k(&cp, 16, 42);
            rayon::set_num_threads(0);
            assert_eq!(again.knee, spec.knee);
            assert!(again
                .costs
                .iter()
                .zip(&spec.costs)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
