//! Pairwise-distance abstraction used by both clustering algorithms, plus
//! the shared (optionally parallel) dense-matrix builder.

use dln_embed::dot;
use rayon::prelude::*;

/// A finite set of points with a symmetric, non-negative pairwise distance.
pub trait PairwiseDistance: Sync {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`. Must be symmetric with
    /// `dist(i, i) == 0`.
    fn dist(&self, i: usize, j: usize) -> f32;

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unit-norm vectors under cosine distance (`1 − a·b`, in `[0, 2]`).
///
/// The adapter borrows the vectors (typically the `unit_topic` fields of
/// lake tags or attributes) so no copies are made. The inner product runs
/// the 8-lane unrolled [`dot`] kernel with its fixed-order lane reduction,
/// so distances are bit-identical to the scalar-reference evaluation (see
/// `dln_embed::dot_scalar_ref`) on every host.
pub struct CosinePoints<'a> {
    points: Vec<&'a [f32]>,
}

impl<'a> CosinePoints<'a> {
    /// Wrap a set of unit-norm vectors.
    pub fn new(points: Vec<&'a [f32]>) -> Self {
        if let Some(first) = points.first() {
            let d = first.len();
            debug_assert!(points.iter().all(|p| p.len() == d));
        }
        CosinePoints { points }
    }

    /// The wrapped vector for point `i`.
    pub fn point(&self, i: usize) -> &'a [f32] {
        self.points[i]
    }
}

impl PairwiseDistance for CosinePoints<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        if i == j {
            return 0.0;
        }
        (1.0 - dot(self.points[i], self.points[j])).max(0.0)
    }
}

/// Fill `out` with the dense row-major `n × n` pairwise-distance matrix of
/// `points`, exactly as the classic serial upper-triangle loop would:
/// `out[i * n + j] == out[j * n + i] == points.dist(min(i,j), max(i,j))`
/// and a zero diagonal — the strict-upper-triangle evaluation is the source
/// of truth for *both* halves, so even a `dist` that is only approximately
/// symmetric yields an exactly symmetric matrix, bit-identical at any
/// thread count.
///
/// With more than one worker available, full rows are computed in parallel
/// (each row is `n` distance evaluations — a balanced unit of work), with
/// every entry in either triangle evaluated as `dist(min, max)` so the two
/// halves are bit-identical copies of the same call. That evaluates each
/// off-diagonal pair twice, which is why a single worker takes the plain
/// half-matrix loop instead: the parallel build wins from two workers up
/// (W/2 effective speedup on the dominant distance kernels), and the
/// one-core path keeps the serial operation count.
pub fn pairwise_matrix_into<D: PairwiseDistance + ?Sized>(points: &D, out: &mut Vec<f32>) {
    let n = points.len();
    out.clear();
    out.resize(n * n, 0.0);
    if n < 2 {
        return;
    }
    if rayon::current_num_threads() > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            for (j, slot) in row.iter_mut().enumerate() {
                if i < j {
                    *slot = points.dist(i, j);
                } else if i > j {
                    *slot = points.dist(j, i);
                }
            }
        });
    } else {
        for i in 0..n {
            for j in (i + 1)..n {
                let v = points.dist(i, j);
                out[i * n + j] = v;
                out[j * n + i] = v;
            }
        }
    }
}

/// Build a [`MatrixDistance`] from any point set via
/// [`pairwise_matrix_into`] (parallel when workers are available).
pub fn pairwise_matrix<D: PairwiseDistance + ?Sized>(points: &D) -> MatrixDistance {
    let mut data = Vec::new();
    pairwise_matrix_into(points, &mut data);
    MatrixDistance {
        n: points.len(),
        data,
    }
}

/// An explicit (dense, symmetric) distance matrix — convenient in tests and
/// for small precomputed inputs.
pub struct MatrixDistance {
    n: usize,
    data: Vec<f32>,
}

impl MatrixDistance {
    /// Build from a row-major `n × n` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n` or the matrix is asymmetric beyond
    /// 1e-5 (debug builds only for the symmetry check).
    pub fn new(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "matrix must be n × n");
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..n {
                debug_assert!(
                    (data[i * n + j] - data[j * n + i]).abs() < 1e-5,
                    "distance matrix must be symmetric"
                );
            }
        }
        MatrixDistance { n, data }
    }
}

impl PairwiseDistance for MatrixDistance {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_points_distance() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let c = [1.0f32, 0.0];
        let pts = CosinePoints::new(vec![&a, &b, &c]);
        assert_eq!(pts.len(), 3);
        assert!((pts.dist(0, 1) - 1.0).abs() < 1e-6);
        assert!(pts.dist(0, 2).abs() < 1e-6);
        assert_eq!(pts.dist(1, 1), 0.0);
        // symmetry
        assert_eq!(pts.dist(0, 1), pts.dist(1, 0));
    }

    #[test]
    fn cosine_distance_clamped_non_negative() {
        // numerically, dot of identical unit vectors can exceed 1 slightly
        let a = [0.6f32, 0.8];
        let pts = CosinePoints::new(vec![&a, &a]);
        assert!(pts.dist(0, 1) >= 0.0);
    }

    #[test]
    fn matrix_distance_roundtrip() {
        let m = MatrixDistance::new(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(m.dist(0, 1), 3.0);
        assert_eq!(m.dist(1, 0), 3.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "matrix must be n × n")]
    fn matrix_wrong_size_panics() {
        MatrixDistance::new(3, vec![0.0; 4]);
    }

    /// Deterministic pseudo-random unit vectors for the parallel-build test.
    fn unit_vectors(n: usize, dim: usize, mut state: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                    })
                    .collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    #[test]
    fn parallel_matrix_equals_serial_exactly() {
        // Property (c) of the batching PR: the parallel pairwise build must
        // reproduce the serial upper-triangle loop bit-for-bit at every
        // thread count (both triangles, zero diagonal).
        let pts = unit_vectors(67, 24, 0xC0FFEE);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let n = cp.len();
        let mut serial = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = cp.dist(i, j);
                serial[i * n + j] = v;
                serial[j * n + i] = v;
            }
        }
        for threads in [1usize, 2, 4, 8] {
            rayon::set_num_threads(threads);
            let mut par = Vec::new();
            pairwise_matrix_into(&cp, &mut par);
            rayon::set_num_threads(0);
            assert_eq!(par.len(), serial.len());
            assert!(
                par.iter()
                    .zip(&serial)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "parallel pairwise matrix diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn cosine_kernel_matches_scalar_reference_bitwise() {
        // Satellite contract: the pairwise distance kernel rides on the
        // 8-lane unrolled `dot`, which must be bit-identical to the scalar
        // reference reduction — so the whole distance matrix is too.
        let pts = unit_vectors(23, 37, 0xD157);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        for i in 0..cp.len() {
            for j in (i + 1)..cp.len() {
                let scalar = (1.0 - dln_embed::dot_scalar_ref(&pts[i], &pts[j])).max(0.0);
                assert_eq!(
                    cp.dist(i, j).to_bits(),
                    scalar.to_bits(),
                    "pairwise kernel diverged from scalar reference at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn pairwise_matrix_roundtrips_through_matrix_distance() {
        let pts = unit_vectors(9, 8, 7);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let m = pairwise_matrix(&cp);
        assert_eq!(m.len(), cp.len());
        for i in 0..cp.len() {
            assert_eq!(m.dist(i, i), 0.0);
            for j in 0..cp.len() {
                assert_eq!(m.dist(i, j).to_bits(), m.dist(j, i).to_bits());
            }
        }
    }
}
