//! Pairwise-distance abstraction used by both clustering algorithms.

use dln_embed::dot;

/// A finite set of points with a symmetric, non-negative pairwise distance.
pub trait PairwiseDistance: Sync {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`. Must be symmetric with
    /// `dist(i, i) == 0`.
    fn dist(&self, i: usize, j: usize) -> f32;

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unit-norm vectors under cosine distance (`1 − a·b`, in `[0, 2]`).
///
/// The adapter borrows the vectors (typically the `unit_topic` fields of
/// lake tags or attributes) so no copies are made.
pub struct CosinePoints<'a> {
    points: Vec<&'a [f32]>,
}

impl<'a> CosinePoints<'a> {
    /// Wrap a set of unit-norm vectors.
    pub fn new(points: Vec<&'a [f32]>) -> Self {
        if let Some(first) = points.first() {
            let d = first.len();
            debug_assert!(points.iter().all(|p| p.len() == d));
        }
        CosinePoints { points }
    }

    /// The wrapped vector for point `i`.
    pub fn point(&self, i: usize) -> &'a [f32] {
        self.points[i]
    }
}

impl PairwiseDistance for CosinePoints<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        if i == j {
            return 0.0;
        }
        (1.0 - dot(self.points[i], self.points[j])).max(0.0)
    }
}

/// An explicit (dense, symmetric) distance matrix — convenient in tests and
/// for small precomputed inputs.
pub struct MatrixDistance {
    n: usize,
    data: Vec<f32>,
}

impl MatrixDistance {
    /// Build from a row-major `n × n` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n` or the matrix is asymmetric beyond
    /// 1e-5 (debug builds only for the symmetry check).
    pub fn new(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "matrix must be n × n");
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..n {
                debug_assert!(
                    (data[i * n + j] - data[j * n + i]).abs() < 1e-5,
                    "distance matrix must be symmetric"
                );
            }
        }
        MatrixDistance { n, data }
    }
}

impl PairwiseDistance for MatrixDistance {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_points_distance() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let c = [1.0f32, 0.0];
        let pts = CosinePoints::new(vec![&a, &b, &c]);
        assert_eq!(pts.len(), 3);
        assert!((pts.dist(0, 1) - 1.0).abs() < 1e-6);
        assert!(pts.dist(0, 2).abs() < 1e-6);
        assert_eq!(pts.dist(1, 1), 0.0);
        // symmetry
        assert_eq!(pts.dist(0, 1), pts.dist(1, 0));
    }

    #[test]
    fn cosine_distance_clamped_non_negative() {
        // numerically, dot of identical unit vectors can exceed 1 slightly
        let a = [0.6f32, 0.8];
        let pts = CosinePoints::new(vec![&a, &a]);
        assert!(pts.dist(0, 1) >= 0.0);
    }

    #[test]
    fn matrix_distance_roundtrip() {
        let m = MatrixDistance::new(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(m.dist(0, 1), 3.0);
        assert_eq!(m.dist(1, 0), 3.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "matrix must be n × n")]
    fn matrix_wrong_size_panics() {
        MatrixDistance::new(3, vec![0.0; 4]);
    }
}
