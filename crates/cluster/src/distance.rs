//! Pairwise-distance abstraction used by both clustering algorithms, plus
//! the shared distance stores: the dense (optionally parallel) matrix
//! builder and the condensed strict-upper-triangle store that replaces it
//! inside the scale path ([`CondensedMatrix`], `n(n−1)/2` entries — ~half
//! the dense peak).

use dln_embed::{dot, gram_into, GRAM_TILE_ROWS};
use rayon::prelude::*;

/// A finite set of points with a symmetric, non-negative pairwise distance.
pub trait PairwiseDistance: Sync {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`. Must be symmetric with
    /// `dist(i, i) == 0`.
    fn dist(&self, i: usize, j: usize) -> f32;

    /// Fill `out` (row-major, `rows.len() × cols.len()`) with
    /// `out[r * cols.len() + c] = dist(rows[r], cols[c])`.
    ///
    /// The default evaluates one [`dist`] per element; implementations with
    /// a tiled kernel (see [`CosinePoints`]) override it to cut operand
    /// traffic, but every element must stay **bit-identical** to the
    /// corresponding `dist` call — block evaluation is a bandwidth
    /// optimization, never a numerical one.
    ///
    /// [`dist`]: PairwiseDistance::dist
    fn dist_block(&self, rows: &[usize], cols: &[usize], out: &mut [f32]) {
        let nc = cols.len();
        debug_assert_eq!(out.len(), rows.len() * nc, "dist_block: shape mismatch");
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                out[r * nc + c] = self.dist(i, j);
            }
        }
    }

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unit-norm vectors under cosine distance (`1 − a·b`, in `[0, 2]`).
///
/// The adapter borrows the vectors (typically the `unit_topic` fields of
/// lake tags or attributes) so no copies are made. The inner product runs
/// the 8-lane unrolled [`dot`] kernel with its fixed-order lane reduction,
/// so distances are bit-identical to the scalar-reference evaluation (see
/// `dln_embed::dot_scalar_ref`) on every host. Block requests
/// ([`PairwiseDistance::dist_block`]) ride the tiled [`gram_into`] kernel,
/// which reproduces `dot` bit-for-bit per element.
pub struct CosinePoints<'a> {
    points: Vec<&'a [f32]>,
}

impl<'a> CosinePoints<'a> {
    /// Wrap a set of unit-norm vectors.
    pub fn new(points: Vec<&'a [f32]>) -> Self {
        if let Some(first) = points.first() {
            let d = first.len();
            debug_assert!(points.iter().all(|p| p.len() == d));
        }
        CosinePoints { points }
    }

    /// The wrapped vector for point `i`.
    pub fn point(&self, i: usize) -> &'a [f32] {
        self.points[i]
    }
}

impl PairwiseDistance for CosinePoints<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        if i == j {
            return 0.0;
        }
        (1.0 - dot(self.points[i], self.points[j])).max(0.0)
    }

    fn dist_block(&self, rows: &[usize], cols: &[usize], out: &mut [f32]) {
        let nc = cols.len();
        debug_assert_eq!(out.len(), rows.len() * nc, "dist_block: shape mismatch");
        if rows.is_empty() || nc == 0 {
            return;
        }
        let rrefs: Vec<&[f32]> = rows.iter().map(|&i| self.points[i]).collect();
        let crefs: Vec<&[f32]> = cols.iter().map(|&j| self.points[j]).collect();
        gram_into(&rrefs, &crefs, out);
        // Same post-transform as `dist`, element by element; the diagonal
        // check compares *indices*, matching `dist`'s exact-zero contract.
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                let slot = &mut out[r * nc + c];
                *slot = if i == j { 0.0 } else { (1.0 - *slot).max(0.0) };
            }
        }
    }
}

/// Condensed-index span filled per parallel unit when building a
/// [`CondensedMatrix`] — entries are pure functions of their `(i, j)` pair,
/// so the split is a pure scheduling choice (any chunk size / thread count
/// produces identical bits).
const CONDENSED_BUILD_CHUNK: usize = 1 << 15;

/// Strict-upper-triangle pairwise-distance store: entry `(i, j)` with
/// `i < j` lives at `row_start(i) + (j − i − 1)`, rows stored back to back.
/// `n(n−1)/2` f32 entries — ~half the dense `n × n` peak, the difference
/// between a ~10.4 GB and a ~5.2 GB working set at full-Socrata scale
/// (50,879 attributes).
///
/// Reads on a row `x` come in two flavours: `(y, x)` with `y < x` is a
/// strided walk down earlier rows, `(x, y)` with `y > x` is the contiguous
/// tail slice ([`row_tail`]). The NN-chain clustering loop exploits exactly
/// that split.
///
/// [`row_tail`]: CondensedMatrix::row_tail
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f32>,
}

impl CondensedMatrix {
    /// First condensed index of row `i` (entries `(i, i+1..n)`).
    #[inline]
    fn row_start(n: usize, i: usize) -> usize {
        i * (n - 1) - i * (i.saturating_sub(1)) / 2
    }

    /// Condensed index of `(i, j)`, `i < j`.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        Self::row_start(self.n, i) + (j - i - 1)
    }

    /// Build the strict upper triangle of `points`' distance matrix, each
    /// pair evaluated exactly once via [`PairwiseDistance::dist_block`]
    /// (tiled row bands where whole rows fit a build chunk, single-row
    /// spans at chunk edges). Parallel across condensed-index chunks;
    /// bit-identical at any thread count because every entry is a pure
    /// function of its `(i, j)` pair.
    pub fn from_points<D: PairwiseDistance + ?Sized>(points: &D) -> CondensedMatrix {
        let n = points.len();
        if n < 2 {
            return CondensedMatrix {
                n,
                data: Vec::new(),
            };
        }
        let mut data = vec![0.0f32; n * (n - 1) / 2];
        let ids: Vec<usize> = (0..n).collect();
        data.par_chunks_mut(CONDENSED_BUILD_CHUNK)
            .enumerate()
            .for_each_init(Vec::new, |scratch, (ci, seg)| {
                fill_condensed_span(points, n, &ids, ci * CONDENSED_BUILD_CHUNK, seg, scratch);
            });
        CondensedMatrix { n, data }
    }

    /// Number of points.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries (`n(n−1)/2`).
    #[inline]
    pub fn entries(&self) -> usize {
        self.data.len()
    }

    /// Bytes held by the condensed store — the "peak distance-store bytes"
    /// a scale bench reports.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Bytes the dense `n × n` working matrix would need instead.
    #[inline]
    pub fn dense_baseline_bytes(&self) -> usize {
        self.n * self.n * std::mem::size_of::<f32>()
    }

    /// Entry `(i, j)` with `i < j` (ordered, no diagonal branch).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[self.index(i, j)]
    }

    /// Entry for any `(i, j)` pair: zero on the diagonal, otherwise the
    /// stored `(min, max)` value — symmetric by construction.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.at(i, j),
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.at(j, i),
        }
    }

    /// Overwrite entry `(i, j)`, `i < j` (both dense triangles at once, in
    /// condensed terms — there is only the one copy).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// The contiguous tail of row `i`: entries `(i, i+1..n)` in `j` order.
    #[inline]
    pub fn row_tail(&self, i: usize) -> &[f32] {
        let start = Self::row_start(self.n, i);
        &self.data[start..start + (self.n - 1 - i)]
    }
}

impl PairwiseDistance for CondensedMatrix {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        self.get(i, j)
    }
}

/// Row containing condensed index `pos` (largest `i` with
/// `row_start(i) <= pos`); `pos` must be below `n(n−1)/2`.
fn condensed_row_of(n: usize, pos: usize) -> usize {
    let (mut lo, mut hi) = (0usize, n - 2);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if CondensedMatrix::row_start(n, mid) <= pos {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Fill the condensed-index span `[start, start + seg.len())` of the strict
/// upper triangle into `seg`. Whole rows that fit the span are batched into
/// up to [`GRAM_TILE_ROWS`]-row rectangles (one `dist_block` over columns
/// `i+1..n`, per-row tails copied out); partial rows at span edges go
/// through single-row `dist_block` calls. Either way each element is the
/// implementation's `dist(min, max)` bit-for-bit, so the batching never
/// shows up in the output.
fn fill_condensed_span<D: PairwiseDistance + ?Sized>(
    points: &D,
    n: usize,
    ids: &[usize],
    start: usize,
    seg: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    let end = start + seg.len();
    let mut pos = start;
    let mut i = condensed_row_of(n, start);
    while pos < end {
        let row_start = CondensedMatrix::row_start(n, i);
        let row_end = row_start + (n - 1 - i);
        if pos == row_start && row_end <= end {
            // Batch consecutive complete rows into one rectangle over the
            // widest row's columns; row i+r's tail starts r entries in.
            let mut r = 1;
            while r < GRAM_TILE_ROWS
                && i + r < n - 1
                && CondensedMatrix::row_start(n, i + r) + (n - 1 - (i + r)) <= end
            {
                r += 1;
            }
            let width = n - 1 - i;
            scratch.clear();
            scratch.resize(r * width, 0.0);
            points.dist_block(&ids[i..i + r], &ids[i + 1..n], scratch);
            for rr in 0..r {
                let row_len = n - 1 - (i + rr);
                let dst = CondensedMatrix::row_start(n, i + rr) - start;
                seg[dst..dst + row_len]
                    .copy_from_slice(&scratch[rr * width + rr..(rr + 1) * width]);
            }
            i += r;
            pos = CondensedMatrix::row_start(n, i);
        } else {
            let j0 = i + 1 + (pos - row_start);
            let take = end.min(row_end) - pos;
            points.dist_block(
                &ids[i..i + 1],
                &ids[j0..j0 + take],
                &mut seg[pos - start..pos - start + take],
            );
            pos += take;
            if pos == row_end {
                i += 1;
            }
        }
    }
}

/// Fill `out` with the dense row-major `n × n` pairwise-distance matrix of
/// `points`, exactly as the classic serial upper-triangle loop would:
/// `out[i * n + j] == out[j * n + i] == points.dist(min(i,j), max(i,j))`
/// and a zero diagonal — the strict-upper-triangle evaluation is the source
/// of truth for *both* halves, so even a `dist` that is only approximately
/// symmetric yields an exactly symmetric matrix, bit-identical at any
/// thread count.
///
/// The build first fills a [`CondensedMatrix`] (each off-diagonal pair
/// evaluated **once**, tiled, in parallel across condensed chunks), then
/// mirror-expands it into both dense triangles row by row. That matches
/// the serial loop's operation count — the old parallel path evaluated
/// every pair twice, once per triangle — at the price of a transient
/// `n(n−1)/2`-entry staging buffer (peak 1.5× dense; dense callers are the
/// small-`n` oracle path, so the staging cost is noise there).
pub fn pairwise_matrix_into<D: PairwiseDistance + ?Sized>(points: &D, out: &mut Vec<f32>) {
    let n = points.len();
    out.clear();
    out.resize(n * n, 0.0);
    if n < 2 {
        return;
    }
    let cond = CondensedMatrix::from_points(points);
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = cond.get(i, j);
        }
    });
}

/// Build a [`MatrixDistance`] from any point set via
/// [`pairwise_matrix_into`] (parallel when workers are available).
pub fn pairwise_matrix<D: PairwiseDistance + ?Sized>(points: &D) -> MatrixDistance {
    let mut data = Vec::new();
    pairwise_matrix_into(points, &mut data);
    MatrixDistance {
        n: points.len(),
        data,
    }
}

/// An explicit (dense, symmetric) distance matrix — convenient in tests and
/// for small precomputed inputs.
pub struct MatrixDistance {
    n: usize,
    data: Vec<f32>,
}

impl MatrixDistance {
    /// Build from a row-major `n × n` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n` or the matrix is asymmetric beyond
    /// 1e-5 (debug builds only for the symmetry check).
    pub fn new(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "matrix must be n × n");
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..n {
                debug_assert!(
                    (data[i * n + j] - data[j * n + i]).abs() < 1e-5,
                    "distance matrix must be symmetric"
                );
            }
        }
        MatrixDistance { n, data }
    }
}

impl PairwiseDistance for MatrixDistance {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_points_distance() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let c = [1.0f32, 0.0];
        let pts = CosinePoints::new(vec![&a, &b, &c]);
        assert_eq!(pts.len(), 3);
        assert!((pts.dist(0, 1) - 1.0).abs() < 1e-6);
        assert!(pts.dist(0, 2).abs() < 1e-6);
        assert_eq!(pts.dist(1, 1), 0.0);
        // symmetry
        assert_eq!(pts.dist(0, 1), pts.dist(1, 0));
    }

    #[test]
    fn cosine_distance_clamped_non_negative() {
        // numerically, dot of identical unit vectors can exceed 1 slightly
        let a = [0.6f32, 0.8];
        let pts = CosinePoints::new(vec![&a, &a]);
        assert!(pts.dist(0, 1) >= 0.0);
    }

    #[test]
    fn matrix_distance_roundtrip() {
        let m = MatrixDistance::new(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(m.dist(0, 1), 3.0);
        assert_eq!(m.dist(1, 0), 3.0);
        assert_eq!(m.dist(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "matrix must be n × n")]
    fn matrix_wrong_size_panics() {
        MatrixDistance::new(3, vec![0.0; 4]);
    }

    /// Deterministic pseudo-random unit vectors for the parallel-build test.
    fn unit_vectors(n: usize, dim: usize, mut state: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                    })
                    .collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    #[test]
    fn parallel_matrix_equals_serial_exactly() {
        // Property (c) of the batching PR: the parallel pairwise build must
        // reproduce the serial upper-triangle loop bit-for-bit at every
        // thread count (both triangles, zero diagonal).
        let pts = unit_vectors(67, 24, 0xC0FFEE);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let n = cp.len();
        let mut serial = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = cp.dist(i, j);
                serial[i * n + j] = v;
                serial[j * n + i] = v;
            }
        }
        for threads in [1usize, 2, 4, 8] {
            rayon::set_num_threads(threads);
            let mut par = Vec::new();
            pairwise_matrix_into(&cp, &mut par);
            rayon::set_num_threads(0);
            assert_eq!(par.len(), serial.len());
            assert!(
                par.iter()
                    .zip(&serial)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "parallel pairwise matrix diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn cosine_kernel_matches_scalar_reference_bitwise() {
        // Satellite contract: the pairwise distance kernel rides on the
        // 8-lane unrolled `dot`, which must be bit-identical to the scalar
        // reference reduction — so the whole distance matrix is too.
        let pts = unit_vectors(23, 37, 0xD157);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        for i in 0..cp.len() {
            for j in (i + 1)..cp.len() {
                let scalar = (1.0 - dln_embed::dot_scalar_ref(&pts[i], &pts[j])).max(0.0);
                assert_eq!(
                    cp.dist(i, j).to_bits(),
                    scalar.to_bits(),
                    "pairwise kernel diverged from scalar reference at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn pairwise_matrix_roundtrips_through_matrix_distance() {
        let pts = unit_vectors(9, 8, 7);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let m = pairwise_matrix(&cp);
        assert_eq!(m.len(), cp.len());
        for i in 0..cp.len() {
            assert_eq!(m.dist(i, i), 0.0);
            for j in 0..cp.len() {
                assert_eq!(m.dist(i, j).to_bits(), m.dist(j, i).to_bits());
            }
        }
    }

    #[test]
    fn dist_block_matches_dist_bitwise() {
        // The tiled CosinePoints block and the per-pair default (via
        // MatrixDistance) must both reproduce `dist` element-for-element,
        // including diagonal (i == j) slots and ragged shapes around the
        // 4×4 tile size.
        let pts = unit_vectors(13, 29, 0xB10C);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let md = pairwise_matrix(&cp);
        let rows = [0usize, 3, 7, 12, 5];
        let cols = [2usize, 3, 11, 0, 5, 9, 1];
        let mut got_cp = vec![f32::NAN; rows.len() * cols.len()];
        let mut got_md = vec![f32::NAN; rows.len() * cols.len()];
        cp.dist_block(&rows, &cols, &mut got_cp);
        md.dist_block(&rows, &cols, &mut got_md);
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                let k = r * cols.len() + c;
                assert_eq!(got_cp[k].to_bits(), cp.dist(i, j).to_bits(), "({i},{j})");
                assert_eq!(got_md[k].to_bits(), md.dist(i, j).to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn condensed_matches_direct_dist_bitwise() {
        // Tentpole contract: every condensed entry is the `dist(min, max)`
        // evaluation bit-for-bit, across sizes that exercise single-row
        // fills, multi-row rectangles, and chunk-edge partial rows.
        for &n in &[2usize, 3, 5, 23, 67, 130] {
            let pts = unit_vectors(n, 19, 0xC0DE ^ n as u64);
            let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
            let cp = CosinePoints::new(refs);
            let cond = CondensedMatrix::from_points(&cp);
            assert_eq!(cond.n(), n);
            assert_eq!(cond.entries(), n * (n - 1) / 2);
            assert_eq!(cond.bytes(), n * (n - 1) / 2 * 4);
            assert_eq!(cond.dense_baseline_bytes(), n * n * 4);
            for i in 0..n {
                assert_eq!(cond.get(i, i), 0.0);
                for j in (i + 1)..n {
                    let want = cp.dist(i, j);
                    assert_eq!(cond.at(i, j).to_bits(), want.to_bits(), "n={n} ({i},{j})");
                    assert_eq!(cond.get(j, i).to_bits(), want.to_bits());
                }
                assert_eq!(cond.row_tail(i).len(), n - 1 - i);
            }
        }
    }

    #[test]
    fn condensed_build_invariant_across_thread_counts() {
        let pts = unit_vectors(101, 24, 0x7EA);
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        rayon::set_num_threads(1);
        let serial = CondensedMatrix::from_points(&cp);
        rayon::set_num_threads(0);
        for t in [2usize, 4, 8] {
            rayon::set_num_threads(t);
            let par = CondensedMatrix::from_points(&cp);
            rayon::set_num_threads(0);
            assert!(
                (0..cp.len()).all(|i| {
                    ((i + 1)..cp.len()).all(|j| par.at(i, j).to_bits() == serial.at(i, j).to_bits())
                }),
                "condensed build diverged at {t} threads"
            );
        }
    }

    #[test]
    fn condensed_row_of_inverts_row_start() {
        for n in [2usize, 3, 7, 64, 129] {
            for i in 0..n - 1 {
                let s = CondensedMatrix::row_start(n, i);
                assert_eq!(condensed_row_of(n, s), i);
                if n - 1 - i > 0 {
                    assert_eq!(condensed_row_of(n, s + (n - 2 - i)), i);
                }
            }
        }
    }

    #[test]
    fn condensed_degenerate_sizes() {
        let empty = CosinePoints::new(vec![]);
        let c0 = CondensedMatrix::from_points(&empty);
        assert_eq!((c0.n(), c0.entries(), c0.bytes()), (0, 0, 0));
        let a = [1.0f32, 0.0];
        let one = CosinePoints::new(vec![&a]);
        let c1 = CondensedMatrix::from_points(&one);
        assert_eq!((c1.n(), c1.entries()), (1, 0));
        assert_eq!(c1.get(0, 0), 0.0);
    }
}
