//! Clustering substrate for organization construction.
//!
//! Two classic algorithms, both implemented from scratch over an abstract
//! pairwise-distance interface:
//!
//! * [`agglomerative`] — average-linkage agglomerative hierarchical
//!   clustering via the nearest-neighbour-chain algorithm (O(n²)).
//!   The paper uses it to build the *initial* organization over tag states
//!   ("the initial organization can be the DAG defined based on a
//!   hierarchical clustering of the tags of a data lake", §3.3) and the
//!   `clustering` baseline of Figure 2(a).
//! * [`kmedoids`] — k-medoids (Voronoi iteration with k-means++-style
//!   seeding). The paper uses it to partition tags into the dimensions of a
//!   multi-dimensional organization (§2.5, §4.3.4, citing Kaufmann &
//!   Rousseeuw's PAM) and we additionally use it to pick the attribute
//!   *representatives* of the §3.4 approximation (medoids are natural
//!   representatives of their partition).
//!
//! Distances come from the [`PairwiseDistance`] trait; [`CosinePoints`]
//! adapts a set of unit-norm topic vectors (distance = 1 − cosine).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agglomerative;
pub mod distance;
pub mod kmedoids;
pub mod partition;

pub use agglomerative::{Dendrogram, Merge};
pub use distance::{CondensedMatrix, CosinePoints, PairwiseDistance};
pub use kmedoids::KMedoids;
pub use partition::{auto_partition_k, knee_of, partition_indices, ShardSpectrum};
