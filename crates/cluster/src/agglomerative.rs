//! Average-linkage agglomerative hierarchical clustering.
//!
//! Implemented with the nearest-neighbour-chain (NN-chain) algorithm, which
//! is exact for reducible linkages (average linkage is reducible) and runs
//! in O(n²) time. The working distance store is the **condensed** strict
//! upper triangle ([`CondensedMatrix`], `n(n−1)/2` f32 entries — ~half the
//! dense peak); [`Dendrogram::average_linkage_dense`] keeps the historical
//! dense-matrix walk as a small-`n` oracle whose merge sequence the
//! condensed path must reproduce **bit-for-bit** (property-tested across
//! sizes, seeds, thread counts, and chunk counts).
//!
//! The output [`Dendrogram`] follows the conventional linkage encoding
//! (as in SciPy): leaves are nodes `0..n`, the i-th merge creates node
//! `n + i`, and merges are sorted by non-decreasing linkage distance with
//! child ids relabelled accordingly.

use crate::distance::{pairwise_matrix_into, CondensedMatrix, PairwiseDistance};

/// Row length below which the nearest-neighbour scan stays serial. The scan
/// is a memory-bound row-min (contiguous on the tail of row `x`, strided
/// down earlier rows for `y < x`); fanning out across scoped threads costs
/// a spawn+join of roughly 25–60 µs on this class of host, so the split
/// only pays once the per-row scan itself is comfortably past that. At
/// ~1 ns/entry contiguous and ~4 ns/entry strided, a 16k row costs ~40 µs
/// serial — the measured crossover region for ≥2 workers (see DESIGN.md
/// §5f). The condensed store makes such rows reachable (16k points is
/// ~0.5 GB condensed vs ~1 GB dense), unlike the old dense-only gate of
/// 65_536 which could never engage on realistic hosts. The chunked
/// reduction is exact at any chunk count (see [`nearest_active_condensed`]),
/// so the gate is a pure performance choice.
const PAR_ROWMIN_MIN_N: usize = 16_384;

/// Nearest active neighbour of `x` within `row` (its dense distance-matrix
/// row): returns `(argmin, min)` where `argmin` is the **lowest** index
/// attaining the strict minimum over active `y != x`, split into `n_chunks`
/// contiguous spans scanned concurrently. The spans' partial results are
/// folded in fixed span order with a strict `<`, so the winner is the
/// global first-index minimum for *any* chunk count — bit-identical to the
/// serial left-to-right scan. Returns `(usize::MAX, ∞)` when nothing is
/// active. Used by the dense oracle path.
fn nearest_active_chunked(row: &[f32], active: &[bool], x: usize, n_chunks: usize) -> (usize, f32) {
    let n = row.len();
    let scan = |lo: usize, hi: usize| {
        let mut best = usize::MAX;
        let mut best_d = f32::INFINITY;
        for y in lo..hi {
            if y == x || !active[y] {
                continue;
            }
            let dy = row[y];
            if dy < best_d {
                best_d = dy;
                best = y;
            }
        }
        (best, best_d)
    };
    fold_chunked_scans(n, n_chunks, scan)
}

/// Condensed-store counterpart of [`nearest_active_chunked`]: the same
/// first-index strict minimum over active `y != x`, reading `(y, x)` as a
/// strided walk down earlier row tails for `y < x` and the contiguous tail
/// of row `x` for `y > x`. Visits `y` in the same ascending order as the
/// dense scan over the same values, so argmin and minimum are bit-identical
/// to the oracle at any chunk count.
fn nearest_active_condensed(
    d: &CondensedMatrix,
    active: &[bool],
    x: usize,
    n_chunks: usize,
) -> (usize, f32) {
    let n = d.n();
    let scan = |lo: usize, hi: usize| {
        let mut best = usize::MAX;
        let mut best_d = f32::INFINITY;
        for (y, &is_active) in active.iter().enumerate().take(hi.min(x)).skip(lo) {
            if !is_active {
                continue;
            }
            let dy = d.at(y, x);
            if dy < best_d {
                best_d = dy;
                best = y;
            }
        }
        let lo2 = lo.max(x + 1);
        if lo2 < hi {
            let tail = &d.row_tail(x)[lo2 - x - 1..hi - x - 1];
            for (off, &dy) in tail.iter().enumerate() {
                if !active[lo2 + off] {
                    continue;
                }
                if dy < best_d {
                    best_d = dy;
                    best = lo2 + off;
                }
            }
        }
        (best, best_d)
    };
    fold_chunked_scans(n, n_chunks, scan)
}

/// Run `scan` over `n_chunks` contiguous spans of `0..n` (possibly in
/// parallel) and fold the partials in fixed span order with a strict `<`,
/// yielding the global first-index minimum for any chunk count.
fn fold_chunked_scans(
    n: usize,
    n_chunks: usize,
    scan: impl Fn(usize, usize) -> (usize, f32) + Sync,
) -> (usize, f32) {
    if n_chunks <= 1 {
        return scan(0, n);
    }
    let n_chunks = n_chunks.min(n.max(1));
    let chunk = n.div_ceil(n_chunks);
    let partial = rayon::par_map(n_chunks, |c| scan(c * chunk, ((c + 1) * chunk).min(n)));
    let mut best = usize::MAX;
    let mut best_d = f32::INFINITY;
    for (b, bd) in partial {
        if b != usize::MAX && bd < best_d {
            best_d = bd;
            best = b;
        }
    }
    (best, best_d)
}

/// One merge step of a dendrogram: `a` and `b` are child node ids (leaf if
/// `< n_leaves`, else internal node `n_leaves + i`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub a: u32,
    /// Second child node id.
    pub b: u32,
    /// Average-linkage distance at which the merge happened.
    pub dist: f32,
    /// Number of leaves under the merged node.
    pub size: u32,
}

/// The result of hierarchical clustering: a binary merge tree over
/// `n_leaves` input points.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cluster `points` with average linkage over the condensed distance
    /// store (each pair held once; ~half the dense working set).
    ///
    /// Returns a dendrogram with `n − 1` merges (or zero merges for `n ≤ 1`).
    pub fn average_linkage<D: PairwiseDistance>(points: &D) -> Dendrogram {
        Self::average_linkage_condensed(CondensedMatrix::from_points(points))
    }

    /// Cluster a prebuilt [`CondensedMatrix`] with average linkage,
    /// consuming it as the in-place working store (the Lance–Williams
    /// update overwrites merged rows). Exposed separately so callers — the
    /// scale bench in particular — can time the pairwise build and the
    /// clustering walk independently and report the store's peak bytes.
    pub fn average_linkage_condensed(mut d: CondensedMatrix) -> Dendrogram {
        let n = d.n();
        if n <= 1 {
            return Dendrogram {
                n_leaves: n,
                merges: Vec::new(),
            };
        }
        let mut active = vec![true; n];
        let mut size = vec![1u32; n];
        let repr: Vec<u32> = (0..n as u32).collect();
        // Raw merges as (leaf-representative of each side, dist).
        let mut raw: Vec<(u32, u32, f32)> = Vec::with_capacity(n - 1);
        let mut chain: Vec<usize> = Vec::with_capacity(n);

        let mut n_active = n;
        while n_active > 1 {
            if chain.is_empty() {
                let Some(start) = active.iter().position(|&a| a) else {
                    break;
                };
                chain.push(start);
            }
            while let Some(&x) = chain.last() {
                // Nearest active neighbour of x; prefer the previous chain
                // element on ties so reciprocal pairs terminate.
                let prev = if chain.len() >= 2 {
                    Some(chain[chain.len() - 2])
                } else {
                    None
                };
                let workers = rayon::current_num_threads();
                let n_chunks = if workers > 1 && n >= PAR_ROWMIN_MIN_N {
                    workers
                } else {
                    1
                };
                let (mut best, best_d) = nearest_active_condensed(&d, &active, x, n_chunks);
                debug_assert_ne!(best, usize::MAX);
                // The serial scan preferred the previous chain element on
                // exact ties with the minimum (so reciprocal pairs
                // terminate); apply the same override to the first-index
                // minimum the chunked scan returns.
                if let Some(p) = prev {
                    if p != x && active[p] && d.get(p, x) == best_d {
                        best = p;
                    }
                }
                if Some(best) == prev {
                    // Reciprocal nearest neighbours: merge x and best.
                    chain.pop();
                    chain.pop();
                    let (lo, hi) = if x < best { (x, best) } else { (best, x) };
                    raw.push((repr[lo], repr[hi], best_d));
                    // Lance–Williams average-linkage update into slot `lo` —
                    // one write per pair: the condensed store *is* both
                    // dense triangles.
                    let (sl, sh) = (size[lo] as f32, size[hi] as f32);
                    let tot = sl + sh;
                    for (k, &is_active) in active.iter().enumerate() {
                        if !is_active || k == lo || k == hi {
                            continue;
                        }
                        let merged = (sl * d.get(lo, k) + sh * d.get(hi, k)) / tot;
                        d.set(lo.min(k), lo.max(k), merged);
                    }
                    size[lo] += size[hi];
                    active[hi] = false;
                    n_active -= 1;
                    break;
                }
                chain.push(best);
            }
        }
        finalize_linkage(n, raw)
    }

    /// Historical dense-matrix NN-chain, kept as the bit-exactness oracle
    /// for the condensed path: identical chain walk and Lance–Williams
    /// arithmetic over a full symmetric `n × n` working matrix (both
    /// triangles materialized and updated). Only sensible at small `n` —
    /// the dense working set is what the condensed store exists to avoid.
    pub fn average_linkage_dense<D: PairwiseDistance>(points: &D) -> Dendrogram {
        let n = points.len();
        if n <= 1 {
            return Dendrogram {
                n_leaves: n,
                merges: Vec::new(),
            };
        }
        let mut d = Vec::new();
        pairwise_matrix_into(points, &mut d);
        let mut active = vec![true; n];
        let mut size = vec![1u32; n];
        let repr: Vec<u32> = (0..n as u32).collect();
        let mut raw: Vec<(u32, u32, f32)> = Vec::with_capacity(n - 1);
        let mut chain: Vec<usize> = Vec::with_capacity(n);

        let mut n_active = n;
        while n_active > 1 {
            if chain.is_empty() {
                let Some(start) = active.iter().position(|&a| a) else {
                    break;
                };
                chain.push(start);
            }
            while let Some(&x) = chain.last() {
                let prev = if chain.len() >= 2 {
                    Some(chain[chain.len() - 2])
                } else {
                    None
                };
                let row = &d[x * n..(x + 1) * n];
                let workers = rayon::current_num_threads();
                let n_chunks = if workers > 1 && n >= PAR_ROWMIN_MIN_N {
                    workers
                } else {
                    1
                };
                let (mut best, best_d) = nearest_active_chunked(row, &active, x, n_chunks);
                debug_assert_ne!(best, usize::MAX);
                if let Some(p) = prev {
                    if p != x && active[p] && row[p] == best_d {
                        best = p;
                    }
                }
                if Some(best) == prev {
                    chain.pop();
                    chain.pop();
                    let (lo, hi) = if x < best { (x, best) } else { (best, x) };
                    raw.push((repr[lo], repr[hi], best_d));
                    let (sl, sh) = (size[lo] as f32, size[hi] as f32);
                    let tot = sl + sh;
                    for k in 0..n {
                        if !active[k] || k == lo || k == hi {
                            continue;
                        }
                        let merged = (sl * d[lo * n + k] + sh * d[hi * n + k]) / tot;
                        d[lo * n + k] = merged;
                        d[k * n + lo] = merged;
                    }
                    size[lo] += size[hi];
                    active[hi] = false;
                    n_active -= 1;
                    break;
                }
                chain.push(best);
            }
        }
        finalize_linkage(n, raw)
    }

    /// Number of input points.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge steps, sorted by non-decreasing distance.
    #[inline]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Total number of nodes (leaves + internal).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_leaves + self.merges.len()
    }

    /// Children of an internal node (`None` for a leaf).
    pub fn children(&self, node: u32) -> Option<(u32, u32)> {
        let i = (node as usize).checked_sub(self.n_leaves)?;
        self.merges.get(i).map(|m| (m.a, m.b))
    }

    /// Cut the dendrogram into (at most) `k` flat clusters; returns a dense
    /// cluster label in `0..k'` for each leaf, where `k' = min(k, n)`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Apply the first n-k merges (lowest distances) through union-find.
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                uf[x as usize] = uf[uf[x as usize] as usize];
                x = uf[x as usize];
            }
            x
        }
        // Track a leaf representative of every dendrogram node.
        let mut leaf_repr: Vec<u32> = (0..self.n_nodes() as u32)
            .map(|i| if (i as usize) < n { i } else { 0 })
            .collect();
        for (i, m) in self.merges.iter().enumerate().take(n - k) {
            let la = leaf_repr[m.a as usize];
            let lb = leaf_repr[m.b as usize];
            let (ra, rb) = (find(&mut uf, la), find(&mut uf, lb));
            uf[ra as usize] = rb;
            leaf_repr[n + i] = lb;
        }
        // Also record representatives for remaining merges so children() users
        // are unaffected; then densify root labels.
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n as u32 {
            let root = find(&mut uf, leaf);
            let next = label_of_root.len();
            let l = *label_of_root.entry(root).or_insert(next);
            labels.push(l);
        }
        labels
    }
}

/// Sort raw `(leaf_a, leaf_b, dist)` merges by distance and relabel child
/// ids via union–find, producing the standard linkage encoding. Shared by
/// the condensed path and the dense oracle so their outputs can only differ
/// through the merge sequence itself.
fn finalize_linkage(n: usize, mut raw: Vec<(u32, u32, f32)>) -> Dendrogram {
    raw.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut uf_parent: Vec<u32> = (0..n as u32).collect();
    // Current dendrogram node id of each union-find root.
    let mut node_of_root: Vec<u32> = (0..n as u32).collect();
    fn find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            uf[x as usize] = uf[uf[x as usize] as usize];
            x = uf[x as usize];
        }
        x
    }
    let mut merges: Vec<Merge> = Vec::with_capacity(raw.len());
    for (i, (la, lb, dist)) in raw.into_iter().enumerate() {
        let ra = find(&mut uf_parent, la);
        let rb = find(&mut uf_parent, lb);
        debug_assert_ne!(ra, rb, "merge joins two distinct clusters");
        let (na, nb) = (node_of_root[ra as usize], node_of_root[rb as usize]);
        let (a, b) = if na < nb { (na, nb) } else { (nb, na) };
        let new_node = (n + i) as u32;
        uf_parent[ra as usize] = rb;
        node_of_root[rb as usize] = new_node;
        let sz_a = if a < n as u32 {
            1
        } else {
            merges[(a as usize) - n].size
        };
        let sz_b = if b < n as u32 {
            1
        } else {
            merges[(b as usize) - n].size
        };
        merges.push(Merge {
            a,
            b,
            dist,
            size: sz_a + sz_b,
        });
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{CosinePoints, MatrixDistance};

    fn line_points() -> MatrixDistance {
        // Four points on a line at coordinates 0, 1, 10, 11.
        let coords = [0.0f32, 1.0, 10.0, 11.0];
        let n = coords.len();
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (coords[i] - coords[j]).abs();
            }
        }
        MatrixDistance::new(n, d)
    }

    #[test]
    fn merges_nearby_points_first() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.n_leaves(), 4);
        assert_eq!(dend.merges().len(), 3);
        // First two merges are {0,1} and {2,3} at distance 1.
        let m0 = dend.merges()[0];
        let m1 = dend.merges()[1];
        assert_eq!(m0.dist, 1.0);
        assert_eq!(m1.dist, 1.0);
        let firsts: std::collections::BTreeSet<u32> = [m0.a, m0.b, m1.a, m1.b].into();
        assert_eq!(firsts, [0u32, 1, 2, 3].into());
        // Final merge joins the two pairs at average distance 10.
        let m2 = dend.merges()[2];
        assert_eq!(m2.size, 4);
        assert!((m2.dist - 10.0).abs() < 1e-5);
        assert!(m2.a >= 4 && m2.b >= 4);
    }

    #[test]
    fn merge_distances_non_decreasing() {
        let dend = Dendrogram::average_linkage(&line_points());
        for w in dend.merges().windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn cut_two_clusters_on_line() {
        let dend = Dendrogram::average_linkage(&line_points());
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_extremes() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.cut(1), vec![0, 0, 0, 0]);
        let all = dend.cut(4);
        let distinct: std::collections::BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
        // k larger than n clamps
        assert_eq!(dend.cut(100).len(), 4);
    }

    #[test]
    fn single_point_and_empty() {
        let one = MatrixDistance::new(1, vec![0.0]);
        let d1 = Dendrogram::average_linkage(&one);
        assert_eq!(d1.n_leaves(), 1);
        assert!(d1.merges().is_empty());
        assert_eq!(d1.cut(3), vec![0]);

        let zero = MatrixDistance::new(0, vec![]);
        let d0 = Dendrogram::average_linkage(&zero);
        assert_eq!(d0.n_leaves(), 0);
        assert!(d0.cut(2).is_empty());
    }

    #[test]
    fn children_accessor() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.children(0), None, "leaves have no children");
        let root = (dend.n_nodes() - 1) as u32;
        let (a, b) = dend.children(root).unwrap();
        assert!(a < root && b < root);
    }

    #[test]
    fn sizes_are_consistent() {
        let dend = Dendrogram::average_linkage(&line_points());
        let last = dend.merges().last().unwrap();
        assert_eq!(last.size as usize, dend.n_leaves());
    }

    #[test]
    fn works_on_cosine_topic_clusters() {
        // Two tight cosine clusters: x-axis-ish and y-axis-ish.
        let pts: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.995, 0.0998],
            vec![0.0, 1.0],
            vec![0.0998, 0.995],
            vec![0.995, -0.0998],
        ];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let dend = Dendrogram::average_linkage(&cp);
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn deterministic_on_same_input() {
        let a = Dendrogram::average_linkage(&line_points());
        let b = Dendrogram::average_linkage(&line_points());
        assert_eq!(a.merges(), b.merges());
    }

    fn random_unit_points(n: usize, dim: usize, mut state: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5
                    })
                    .collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    fn assert_merges_bit_identical(a: &Dendrogram, b: &Dendrogram, label: &str) {
        assert_eq!(a.merges().len(), b.merges().len(), "{label}: merge count");
        for (i, (ma, mb)) in a.merges().iter().zip(b.merges()).enumerate() {
            assert_eq!(
                (ma.a, ma.b, ma.size, ma.dist.to_bits()),
                (mb.a, mb.b, mb.size, mb.dist.to_bits()),
                "{label}: merge {i} diverged"
            );
        }
    }

    #[test]
    fn condensed_matches_dense_oracle_bitwise() {
        // Tentpole acceptance: the condensed-store NN-chain must reproduce
        // the dense oracle's merge sequence bit-for-bit across sizes, seeds,
        // and thread counts.
        for &n in &[2usize, 3, 17, 64, 150] {
            for seed in 0..3u64 {
                let pts = random_unit_points(n, 16, 0xACE5 ^ seed << 8 ^ n as u64);
                let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
                let cp = CosinePoints::new(refs);
                let dense = Dendrogram::average_linkage_dense(&cp);
                for t in [1usize, 2, 4] {
                    rayon::set_num_threads(t);
                    let cond = Dendrogram::average_linkage(&cp);
                    rayon::set_num_threads(0);
                    assert_merges_bit_identical(
                        &cond,
                        &dense,
                        &format!("n={n} seed={seed} threads={t}"),
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_row_min_matches_serial_scan_for_any_chunk_count() {
        // Pseudo-random row with deliberate duplicated minima, plus a
        // changing active mask — the chunked reduction must always return
        // the first-index strict minimum the serial scan does.
        let mut state = 0x5EEDu64;
        let n = 237;
        let row: Vec<f32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) % 32) as f32 / 16.0 // few distinct values → many ties
            })
            .collect();
        for case in 0..8usize {
            let active: Vec<bool> = (0..n).map(|y| (y + case) % 3 != 0).collect();
            let x = (case * 31) % n;
            let serial = nearest_active_chunked(&row, &active, x, 1);
            for chunks in 2..=7 {
                let par = nearest_active_chunked(&row, &active, x, chunks);
                assert_eq!(par.0, serial.0, "argmin diverged at {chunks} chunks");
                assert_eq!(par.1.to_bits(), serial.1.to_bits());
            }
        }
        // Fully inactive row.
        let inactive = vec![false; n];
        assert_eq!(nearest_active_chunked(&row, &inactive, 0, 4).0, usize::MAX);
    }

    #[test]
    fn condensed_row_min_matches_dense_scan_for_any_chunk_count() {
        // Same contract for the condensed scan: for every pivot x, active
        // mask, and chunk count, the two-segment condensed walk must agree
        // with the dense row scan (including tie resolution — the synthetic
        // distances take few distinct values).
        let n = 149;
        let mut state = 0xD15Cu64;
        let mut dense = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((state >> 40) % 24) as f32 / 8.0;
                dense[i * n + j] = v;
                dense[j * n + i] = v;
            }
        }
        let md = MatrixDistance::new(n, dense.clone());
        let cond = CondensedMatrix::from_points(&md);
        for case in 0..10usize {
            let active: Vec<bool> = (0..n).map(|y| (y * 7 + case) % 4 != 0).collect();
            let x = (case * 17) % n;
            let row = &dense[x * n..(x + 1) * n];
            let want = nearest_active_chunked(row, &active, x, 1);
            for chunks in 1..=6 {
                let got = nearest_active_condensed(&cond, &active, x, chunks);
                assert_eq!(got.0, want.0, "argmin diverged at x={x} chunks={chunks}");
                assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }
        let inactive = vec![false; n];
        assert_eq!(
            nearest_active_condensed(&cond, &inactive, 3, 4).0,
            usize::MAX
        );
    }

    #[test]
    fn dendrogram_identical_across_thread_counts() {
        // Exercises the parallel condensed pairwise build inside
        // average_linkage (the row-min gate needs enormous inputs; its
        // reduction is covered by the chunk tests above).
        let mut state = 0xACE5u64;
        let coords: Vec<f32> = (0..150)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 100.0
            })
            .collect();
        let n = coords.len();
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (coords[i] - coords[j]).abs();
            }
        }
        let m = MatrixDistance::new(n, d);
        rayon::set_num_threads(1);
        let serial = Dendrogram::average_linkage(&m);
        rayon::set_num_threads(0);
        for t in [2usize, 4, 8] {
            rayon::set_num_threads(t);
            let par = Dendrogram::average_linkage(&m);
            rayon::set_num_threads(0);
            assert_eq!(par.merges(), serial.merges(), "diverged at {t} threads");
        }
    }
}
