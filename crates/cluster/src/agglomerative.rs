//! Average-linkage agglomerative hierarchical clustering.
//!
//! Implemented with the nearest-neighbour-chain (NN-chain) algorithm, which
//! is exact for reducible linkages (average linkage is reducible) and runs
//! in O(n²) time and O(n²) memory for the working distance matrix.
//!
//! The output [`Dendrogram`] follows the conventional linkage encoding
//! (as in SciPy): leaves are nodes `0..n`, the i-th merge creates node
//! `n + i`, and merges are sorted by non-decreasing linkage distance with
//! child ids relabelled accordingly.

use crate::distance::PairwiseDistance;

/// One merge step of a dendrogram: `a` and `b` are child node ids (leaf if
/// `< n_leaves`, else internal node `n_leaves + i`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub a: u32,
    /// Second child node id.
    pub b: u32,
    /// Average-linkage distance at which the merge happened.
    pub dist: f32,
    /// Number of leaves under the merged node.
    pub size: u32,
}

/// The result of hierarchical clustering: a binary merge tree over
/// `n_leaves` input points.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cluster `points` with average linkage.
    ///
    /// Returns a dendrogram with `n − 1` merges (or zero merges for `n ≤ 1`).
    pub fn average_linkage<D: PairwiseDistance>(points: &D) -> Dendrogram {
        let n = points.len();
        if n <= 1 {
            return Dendrogram {
                n_leaves: n,
                merges: Vec::new(),
            };
        }
        // Working distance matrix (full symmetric, row-major). The merged
        // cluster reuses the lower slot; `repr` keeps one leaf per active
        // slot so merges can be relabelled after sorting.
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = points.dist(i, j);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        let mut active = vec![true; n];
        let mut size = vec![1u32; n];
        let repr: Vec<u32> = (0..n as u32).collect();
        // Raw merges as (leaf-representative of each side, dist).
        let mut raw: Vec<(u32, u32, f32)> = Vec::with_capacity(n - 1);
        let mut chain: Vec<usize> = Vec::with_capacity(n);

        let mut n_active = n;
        while n_active > 1 {
            if chain.is_empty() {
                let start = active.iter().position(|&a| a).expect("active cluster");
                chain.push(start);
            }
            loop {
                let x = *chain.last().expect("chain non-empty");
                // Nearest active neighbour of x; prefer the previous chain
                // element on ties so reciprocal pairs terminate.
                let prev = if chain.len() >= 2 {
                    Some(chain[chain.len() - 2])
                } else {
                    None
                };
                let mut best = usize::MAX;
                let mut best_d = f32::INFINITY;
                for y in 0..n {
                    if y == x || !active[y] {
                        continue;
                    }
                    let dy = d[x * n + y];
                    if dy < best_d || (dy == best_d && Some(y) == prev) {
                        best_d = dy;
                        best = y;
                    }
                }
                debug_assert_ne!(best, usize::MAX);
                if Some(best) == prev {
                    // Reciprocal nearest neighbours: merge x and best.
                    chain.pop();
                    chain.pop();
                    let (lo, hi) = if x < best { (x, best) } else { (best, x) };
                    raw.push((repr[lo], repr[hi], best_d));
                    // Lance–Williams average-linkage update into slot `lo`.
                    let (sl, sh) = (size[lo] as f32, size[hi] as f32);
                    let tot = sl + sh;
                    for k in 0..n {
                        if !active[k] || k == lo || k == hi {
                            continue;
                        }
                        let merged = (sl * d[lo * n + k] + sh * d[hi * n + k]) / tot;
                        d[lo * n + k] = merged;
                        d[k * n + lo] = merged;
                    }
                    size[lo] += size[hi];
                    active[hi] = false;
                    n_active -= 1;
                    break;
                }
                chain.push(best);
            }
        }

        // Sort by distance and relabel child ids via union–find, producing
        // the standard linkage encoding.
        raw.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut uf_parent: Vec<u32> = (0..n as u32).collect();
        // Current dendrogram node id of each union-find root.
        let mut node_of_root: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                uf[x as usize] = uf[uf[x as usize] as usize];
                x = uf[x as usize];
            }
            x
        }
        let mut merges: Vec<Merge> = Vec::with_capacity(raw.len());
        for (i, (la, lb, dist)) in raw.into_iter().enumerate() {
            let ra = find(&mut uf_parent, la);
            let rb = find(&mut uf_parent, lb);
            debug_assert_ne!(ra, rb, "merge joins two distinct clusters");
            let (na, nb) = (node_of_root[ra as usize], node_of_root[rb as usize]);
            let (a, b) = if na < nb { (na, nb) } else { (nb, na) };
            let new_node = (n + i) as u32;
            uf_parent[ra as usize] = rb;
            node_of_root[rb as usize] = new_node;
            let sz_a = if a < n as u32 {
                1
            } else {
                merges[(a as usize) - n].size
            };
            let sz_b = if b < n as u32 {
                1
            } else {
                merges[(b as usize) - n].size
            };
            merges.push(Merge {
                a,
                b,
                dist,
                size: sz_a + sz_b,
            });
        }
        Dendrogram {
            n_leaves: n,
            merges,
        }
    }

    /// Number of input points.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge steps, sorted by non-decreasing distance.
    #[inline]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Total number of nodes (leaves + internal).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_leaves + self.merges.len()
    }

    /// Children of an internal node (`None` for a leaf).
    pub fn children(&self, node: u32) -> Option<(u32, u32)> {
        let i = (node as usize).checked_sub(self.n_leaves)?;
        self.merges.get(i).map(|m| (m.a, m.b))
    }

    /// Cut the dendrogram into (at most) `k` flat clusters; returns a dense
    /// cluster label in `0..k'` for each leaf, where `k' = min(k, n)`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Apply the first n-k merges (lowest distances) through union-find.
        let mut uf: Vec<u32> = (0..n as u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                uf[x as usize] = uf[uf[x as usize] as usize];
                x = uf[x as usize];
            }
            x
        }
        // Track a leaf representative of every dendrogram node.
        let mut leaf_repr: Vec<u32> = (0..self.n_nodes() as u32)
            .map(|i| if (i as usize) < n { i } else { 0 })
            .collect();
        for (i, m) in self.merges.iter().enumerate().take(n - k) {
            let la = leaf_repr[m.a as usize];
            let lb = leaf_repr[m.b as usize];
            let (ra, rb) = (find(&mut uf, la), find(&mut uf, lb));
            uf[ra as usize] = rb;
            leaf_repr[n + i] = lb;
        }
        // Also record representatives for remaining merges so children() users
        // are unaffected; then densify root labels.
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n as u32 {
            let root = find(&mut uf, leaf);
            let next = label_of_root.len();
            let l = *label_of_root.entry(root).or_insert(next);
            labels.push(l);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{CosinePoints, MatrixDistance};

    fn line_points() -> MatrixDistance {
        // Four points on a line at coordinates 0, 1, 10, 11.
        let coords = [0.0f32, 1.0, 10.0, 11.0];
        let n = coords.len();
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (coords[i] - coords[j]).abs();
            }
        }
        MatrixDistance::new(n, d)
    }

    #[test]
    fn merges_nearby_points_first() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.n_leaves(), 4);
        assert_eq!(dend.merges().len(), 3);
        // First two merges are {0,1} and {2,3} at distance 1.
        let m0 = dend.merges()[0];
        let m1 = dend.merges()[1];
        assert_eq!(m0.dist, 1.0);
        assert_eq!(m1.dist, 1.0);
        let firsts: std::collections::BTreeSet<u32> = [m0.a, m0.b, m1.a, m1.b].into();
        assert_eq!(firsts, [0u32, 1, 2, 3].into());
        // Final merge joins the two pairs at average distance 10.
        let m2 = dend.merges()[2];
        assert_eq!(m2.size, 4);
        assert!((m2.dist - 10.0).abs() < 1e-5);
        assert!(m2.a >= 4 && m2.b >= 4);
    }

    #[test]
    fn merge_distances_non_decreasing() {
        let dend = Dendrogram::average_linkage(&line_points());
        for w in dend.merges().windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn cut_two_clusters_on_line() {
        let dend = Dendrogram::average_linkage(&line_points());
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_extremes() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.cut(1), vec![0, 0, 0, 0]);
        let all = dend.cut(4);
        let distinct: std::collections::BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
        // k larger than n clamps
        assert_eq!(dend.cut(100).len(), 4);
    }

    #[test]
    fn single_point_and_empty() {
        let one = MatrixDistance::new(1, vec![0.0]);
        let d1 = Dendrogram::average_linkage(&one);
        assert_eq!(d1.n_leaves(), 1);
        assert!(d1.merges().is_empty());
        assert_eq!(d1.cut(3), vec![0]);

        let zero = MatrixDistance::new(0, vec![]);
        let d0 = Dendrogram::average_linkage(&zero);
        assert_eq!(d0.n_leaves(), 0);
        assert!(d0.cut(2).is_empty());
    }

    #[test]
    fn children_accessor() {
        let dend = Dendrogram::average_linkage(&line_points());
        assert_eq!(dend.children(0), None, "leaves have no children");
        let root = (dend.n_nodes() - 1) as u32;
        let (a, b) = dend.children(root).unwrap();
        assert!(a < root && b < root);
    }

    #[test]
    fn sizes_are_consistent() {
        let dend = Dendrogram::average_linkage(&line_points());
        let last = dend.merges().last().unwrap();
        assert_eq!(last.size as usize, dend.n_leaves());
    }

    #[test]
    fn works_on_cosine_topic_clusters() {
        // Two tight cosine clusters: x-axis-ish and y-axis-ish.
        let pts: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.995, 0.0998],
            vec![0.0, 1.0],
            vec![0.0998, 0.995],
            vec![0.995, -0.0998],
        ];
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let cp = CosinePoints::new(refs);
        let dend = Dendrogram::average_linkage(&cp);
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn deterministic_on_same_input() {
        let a = Dendrogram::average_linkage(&line_points());
        let b = Dendrogram::average_linkage(&line_points());
        assert_eq!(a.merges(), b.merges());
    }
}
