//! The TagCloud benchmark (paper §4.1).
//!
//! TagCloud is a synthetic lake "where we know exactly the most relevant tag
//! for an attribute". The paper's construction, reproduced here:
//!
//! 1. pick tag words that are not close in cosine space (we take one word
//!    per synthetic topic cluster — the word nearest its topic centre —
//!    which by construction gives near-orthogonal tag words);
//! 2. for each attribute with `k` values (`k` uniform in
//!    `[values_min, values_max]`), the domain is the `k` words most similar
//!    to the tag word, so attribute topic vectors sit tightly around their
//!    tag ("this artificially guarantees that ... the topic vector of
//!    attributes are close to their tags");
//! 3. each attribute is associated with exactly one tag;
//! 4. attributes per table are sampled from `[1, max_attrs_per_table]`
//!    following a Zipfian distribution, emulating real-lake metadata skew.
//!
//! The paper-scale configuration targets 365 tags, 2,651 attributes and
//! ≈369 tables. [`TagCloudBench::enrich`] implements the §4.3.1 enrichment:
//! every attribute additionally gets the closest tag other than its own,
//! which lifts the discoverability of single-attribute tables
//! (the `enriched 2-dim` series of Figure 2a).

use dln_embed::{
    dot, SyntheticEmbedding, SyntheticEmbeddingConfig, TokenId, TopicAccumulator, VocabularyConfig,
};
use dln_lake::{DataLake, LakeBuilder, TagId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of the TagCloud generator.
#[derive(Clone, Debug)]
pub struct TagCloudConfig {
    /// Number of tags (and synthetic topics). Paper: 365.
    pub n_tags: usize,
    /// Generation stops once this many attributes exist. Paper: 2,651.
    pub n_attrs_target: usize,
    /// Upper bound of the Zipfian attributes-per-table draw. Paper: 50.
    pub max_attrs_per_table: usize,
    /// Zipf exponent for attributes per table. 1.0 gives a mean of ≈7.2
    /// attributes per table for max=50, matching the paper's 2,651 / 369.
    pub attrs_per_table_zipf_s: f64,
    /// Minimum values per attribute. Paper: 10.
    pub values_min: usize,
    /// Maximum values per attribute. Paper: 1,000.
    pub values_max: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Intra-topic spread of the synthetic vocabulary.
    pub sigma: f32,
    /// Supertopic count of the vocabulary (correlated topic centres; see
    /// `dln_embed::VocabularyConfig::n_supertopics`). Real tag words are
    /// correlated, which is what makes navigation non-trivial.
    pub n_supertopics: usize,
    /// Spread of topic centres around their supertopic centre.
    pub supertopic_sigma: f32,
    /// Extra words per topic beyond `values_max`, so that top-k neighbour
    /// selection has slack.
    pub vocab_slack: usize,
    /// Fraction of attribute values replaced by uniformly random vocabulary
    /// words. Real embedding spaces are noisy — the nearest neighbours of a
    /// fastText word include polysemous and junk terms — so attribute topic
    /// vectors are *pulled toward* their tag rather than sitting exactly on
    /// it. Without this noise the synthetic benchmark is unrealistically
    /// clean: the agglomerative initialization is already locally optimal
    /// and the local search has nothing to do.
    pub value_noise: f64,
    /// RNG seed; the benchmark is a pure function of the config.
    pub seed: u64,
    /// Whether raw values are stored on the lake attributes (needed only by
    /// keyword search / the user study; organization construction is
    /// topic-vector only).
    pub store_values: bool,
}

impl TagCloudConfig {
    /// The paper-scale benchmark: 365 tags, ≈2,651 attributes, ≈369 tables,
    /// 10–1,000 values per attribute.
    pub fn paper() -> TagCloudConfig {
        TagCloudConfig {
            n_tags: 365,
            n_attrs_target: 2_651,
            max_attrs_per_table: 50,
            // Mean ≈ 7.3 attrs/table ⇒ ≈363 tables for 2,651 attributes,
            // matching the paper's 369.
            attrs_per_table_zipf_s: 1.3,
            values_min: 10,
            values_max: 1_000,
            dim: 50,
            sigma: 0.35,
            n_supertopics: 24,
            supertopic_sigma: 0.8,
            vocab_slack: 50,
            value_noise: 0.35,
            seed: 0x7A6C_100D,
            store_values: false,
        }
    }

    /// A reduced-scale benchmark for unit tests and examples: 30 tags,
    /// ≈200 attributes, values 5–40.
    pub fn small() -> TagCloudConfig {
        TagCloudConfig {
            n_tags: 30,
            n_attrs_target: 200,
            max_attrs_per_table: 20,
            attrs_per_table_zipf_s: 1.0,
            values_min: 5,
            values_max: 40,
            dim: 32,
            sigma: 0.35,
            n_supertopics: 6,
            supertopic_sigma: 0.8,
            vocab_slack: 10,
            value_noise: 0.35,
            seed: 0x7A6C_100D,
            store_values: true,
        }
    }

    /// Scale the tag / attribute counts by `f` (values and table shape are
    /// unchanged). Useful for scalability sweeps.
    pub fn scaled(mut self, f: f64) -> TagCloudConfig {
        assert!(f > 0.0, "scale factor must be positive");
        self.n_tags = ((self.n_tags as f64 * f).round() as usize).max(2);
        self.n_attrs_target = ((self.n_attrs_target as f64 * f).round() as usize).max(4);
        self
    }

    /// Generate the benchmark.
    pub fn generate(&self) -> TagCloudBench {
        assert!(self.n_tags >= 2, "need at least two tags");
        assert!(
            self.values_min >= 1 && self.values_min <= self.values_max,
            "invalid values range"
        );
        let words_per_topic = self.values_max + self.vocab_slack;
        let model = SyntheticEmbedding::new(&SyntheticEmbeddingConfig {
            vocab: VocabularyConfig {
                n_topics: self.n_tags,
                words_per_topic,
                dim: self.dim,
                sigma: self.sigma,
                n_supertopics: self.n_supertopics,
                supertopic_sigma: self.supertopic_sigma,
                seed: self.seed ^ 0x51CE_EDED,
            },
            // TagCloud is fully covered on purpose: the paper's benchmark is
            // "much cleaner than real data portals".
            coverage: 1.0,
            coverage_seed: 0,
        });
        let vocab = model.vocab();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Tag word per topic: the word nearest its topic centre. Per-topic
        // words are also ranked by similarity to the tag word once, so each
        // attribute's top-k domain is a prefix slice.
        let mut tag_words: Vec<TokenId> = Vec::with_capacity(self.n_tags);
        let mut ranked: Vec<Vec<TokenId>> = Vec::with_capacity(self.n_tags);
        for t in 0..self.n_tags {
            let base = t * words_per_topic;
            let ids: Vec<TokenId> = (base..base + words_per_topic)
                .map(|i| TokenId(i as u32))
                .collect();
            let centre = vocab.centre(t);
            // First-element fold replicating `Iterator::max_by` (keep the
            // later element on ties) without the empty-iterator Option —
            // `ids` always holds `words_per_topic ≥ 1` entries.
            let tag = ids[1..].iter().fold(ids[0], |best, &w| {
                match dot(vocab.vector(best), centre)
                    .partial_cmp(&dot(vocab.vector(w), centre))
                    .unwrap_or(std::cmp::Ordering::Equal)
                {
                    std::cmp::Ordering::Greater => best,
                    _ => w,
                }
            });
            let tv = vocab.vector(tag);
            let mut by_sim = ids.clone();
            by_sim.sort_by(|a, b| {
                dot(vocab.vector(*b), tv)
                    .partial_cmp(&dot(vocab.vector(*a), tv))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            tag_words.push(tag);
            ranked.push(by_sim);
        }

        let attrs_zipf = Zipf::new(self.max_attrs_per_table, self.attrs_per_table_zipf_s);
        let mut builder = LakeBuilder::new(self.dim);
        builder.set_store_values(self.store_values);
        let mut true_tag_word: Vec<TokenId> = Vec::new();
        let mut n_attrs = 0usize;
        let mut table_idx = 0usize;
        while n_attrs < self.n_attrs_target {
            let table = builder.begin_table(&format!("table{table_idx:05}"));
            table_idx += 1;
            let n = attrs_zipf
                .sample(&mut rng)
                .min(self.n_attrs_target - n_attrs);
            for a in 0..n {
                let tag_idx = rng.random_range(0..self.n_tags);
                let k = rng.random_range(self.values_min..=self.values_max);
                let chosen = &ranked[tag_idx][..k.min(words_per_topic)];
                let mut topic = TopicAccumulator::new(self.dim);
                let mut values = Vec::new();
                for &w in chosen {
                    // Embedding-space noise: some of the "k most similar
                    // words" are actually junk neighbours.
                    let w = if rng.random::<f64>() < self.value_noise {
                        TokenId(rng.random_range(0..vocab.len() as u32))
                    } else {
                        w
                    };
                    topic.add(vocab.vector(w));
                    if self.store_values {
                        values.push(vocab.word(w).to_string());
                    }
                }
                let aid = builder.add_attribute_raw(
                    table,
                    &format!("attr{a}"),
                    topic,
                    chosen.len() as u32,
                    values,
                );
                builder.add_attr_tag(aid, vocab.word(tag_words[tag_idx]));
                true_tag_word.push(tag_words[tag_idx]);
                n_attrs += 1;
            }
        }
        let lake = builder.build();
        let true_tag: Vec<TagId> = true_tag_word
            .iter()
            .map(|&w| {
                lake.tag_by_label(vocab.word(w)).unwrap_or_else(|| {
                    panic!(
                        "generator invariant: tag '{}' missing from built lake",
                        vocab.word(w)
                    )
                })
            })
            .collect();
        TagCloudBench {
            lake,
            model,
            true_tag,
        }
    }
}

/// A generated TagCloud benchmark: the lake, the embedding model that
/// produced it, and the ground-truth tag of every attribute.
pub struct TagCloudBench {
    /// The generated data lake.
    pub lake: DataLake,
    /// The synthetic embedding model (shared by search / study components).
    pub model: SyntheticEmbedding,
    /// Ground-truth tag per attribute (indexed by `AttrId`).
    pub true_tag: Vec<TagId>,
}

impl TagCloudBench {
    /// §4.3.1 enrichment: associate each attribute with one additional tag —
    /// the closest existing tag (by cosine of topic vectors) other than its
    /// ground-truth tag. Returns a new benchmark over a rebuilt lake.
    pub fn enrich(&self) -> TagCloudBench {
        let lake = &self.lake;
        let mut builder = LakeBuilder::new(lake.dim());
        builder.set_store_values(true);
        let mut true_tag_labels: Vec<String> = Vec::with_capacity(lake.n_attrs());
        for tid in lake.table_ids() {
            let table = lake.table(tid);
            let nt = builder.begin_table(&table.name);
            for &aid in &table.attrs {
                let a = lake.attr(aid);
                let na = builder.add_attribute_raw(
                    nt,
                    &a.name,
                    a.topic.clone(),
                    a.n_values,
                    a.values.clone(),
                );
                let own = self.true_tag[aid.index()];
                // Closest other tag by unit-topic cosine.
                let unit = &a.unit_topic;
                let mut best: Option<(TagId, f32)> = None;
                for tg in lake.tag_ids() {
                    if tg == own {
                        continue;
                    }
                    let sim = dot(unit, &lake.tag(tg).unit_topic);
                    if best.map(|(_, s)| sim > s).unwrap_or(true) {
                        best = Some((tg, sim));
                    }
                }
                builder.add_attr_tag(na, &lake.tag(own).label);
                if let Some((second, _)) = best {
                    builder.add_attr_tag(na, &lake.tag(second).label);
                }
                true_tag_labels.push(lake.tag(own).label.clone());
            }
        }
        let new_lake = builder.build();
        let true_tag = true_tag_labels
            .iter()
            .map(|l| {
                new_lake.tag_by_label(l).unwrap_or_else(|| {
                    panic!("generator invariant: tag '{l}' not preserved across rebuild")
                })
            })
            .collect();
        TagCloudBench {
            lake: new_lake,
            model: self.model.clone(),
            true_tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dln_embed::cosine;

    fn bench() -> TagCloudBench {
        TagCloudConfig::small().generate()
    }

    #[test]
    fn respects_targets() {
        let b = bench();
        assert_eq!(b.lake.n_attrs(), 200);
        assert!(b.lake.n_tags() <= 30);
        assert!(
            b.lake.n_tables() >= 10,
            "Zipf table sizes imply many tables"
        );
        assert_eq!(b.true_tag.len(), b.lake.n_attrs());
    }

    #[test]
    fn every_attribute_has_exactly_one_tag() {
        let b = bench();
        for aid in b.lake.attr_ids() {
            assert_eq!(b.lake.attr_tags(aid).len(), 1);
            assert_eq!(b.lake.attr_tags(aid)[0], b.true_tag[aid.index()]);
        }
    }

    #[test]
    fn attribute_topics_are_close_to_their_tag() {
        // With embedding noise, individual small attributes can drift, but
        // the population must stay tightly anchored on its tag.
        let b = bench();
        let mut sims = Vec::new();
        for aid in b.lake.attr_ids() {
            let a = b.lake.attr(aid);
            let own = b.lake.tag(b.true_tag[aid.index()]);
            sims.push(cosine(&a.unit_topic, &own.unit_topic));
        }
        let mean: f32 = sims.iter().sum::<f32>() / sims.len() as f32;
        assert!(mean > 0.8, "mean attr-to-tag similarity too low: {mean}");
        let below = sims.iter().filter(|&&s| s < 0.5).count();
        assert!(
            below * 10 < sims.len(),
            "too many outlier attributes ({below}/{})",
            sims.len()
        );
    }

    #[test]
    fn own_tag_is_most_similar_tag_for_most_attrs() {
        let b = bench();
        let mut correct = 0usize;
        for aid in b.lake.attr_ids() {
            let a = b.lake.attr(aid);
            let best = b
                .lake
                .tag_ids()
                .max_by(|x, y| {
                    cosine(&a.unit_topic, &b.lake.tag(*x).unit_topic)
                        .partial_cmp(&cosine(&a.unit_topic, &b.lake.tag(*y).unit_topic))
                        .unwrap()
                })
                .unwrap();
            if best == b.true_tag[aid.index()] {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / b.lake.n_attrs() as f64 > 0.95,
            "ground-truth tag should win for nearly all attributes ({correct}/200)"
        );
    }

    #[test]
    fn value_counts_within_range() {
        let b = bench();
        for a in b.lake.attrs() {
            assert!((5..=40).contains(&(a.n_values as usize)));
            assert_eq!(a.values.len(), a.n_values as usize);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = bench();
        let b = bench();
        assert_eq!(a.lake.n_tables(), b.lake.n_tables());
        assert_eq!(a.true_tag, b.true_tag);
    }

    #[test]
    fn enrich_adds_a_second_tag() {
        let b = bench().enrich();
        for aid in b.lake.attr_ids() {
            let tags = b.lake.attr_tags(aid);
            assert_eq!(tags.len(), 2, "enriched attrs carry two tags");
            assert!(tags.contains(&b.true_tag[aid.index()]));
        }
    }

    #[test]
    fn enrich_preserves_topics() {
        let orig = bench();
        let enr = orig.enrich();
        assert_eq!(orig.lake.n_attrs(), enr.lake.n_attrs());
        for aid in orig.lake.attr_ids() {
            assert_eq!(
                orig.lake.attr(aid).topic.count(),
                enr.lake.attr(aid).topic.count()
            );
        }
    }

    #[test]
    fn scaled_changes_counts() {
        let c = TagCloudConfig::small().scaled(0.5);
        assert_eq!(c.n_tags, 15);
        assert_eq!(c.n_attrs_target, 100);
    }
}
