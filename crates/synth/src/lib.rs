//! Workload generators for the navigation experiments.
//!
//! * [`zipf`] — a truncated Zipf sampler (the paper observes that tags per
//!   table and attributes per table follow Zipfian distributions in real
//!   lakes, and synthesizes TagCloud accordingly, §4.1).
//! * [`tagcloud`] — the **TagCloud** benchmark: a lake where every attribute
//!   has exactly one known-correct tag, attribute values are the `k` most
//!   similar vocabulary words to the tag word, and table sizes are Zipfian.
//!   Includes the *enrichment* procedure (adding each attribute's second
//!   closest tag) used for the `enriched 2-dim` series of Figure 2(a).
//! * [`socrata`] — a generator reproducing the published shape of the
//!   paper's Socrata crawl (7,553 tables / 11,083 tags / ~51k embedded text
//!   attributes / 264,199 attribute–tag associations; skewed multi-tag
//!   metadata), at a configurable scale. Also carves tag-disjoint sub-lakes
//!   in the style of Socrata-2 / Socrata-3 for the user study.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod socrata;
pub mod tagcloud;
pub mod zipf;

pub use socrata::{SocrataConfig, SocrataLake};
pub use tagcloud::{TagCloudBench, TagCloudConfig};
pub use zipf::Zipf;
