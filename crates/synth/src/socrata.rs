//! A Socrata-like open-data lake generator.
//!
//! The paper's comparison study runs on a crawl of the Socrata open-data
//! network: 7,553 tables, 11,083 tags, 50,879 attributes with embeddable
//! words, and 264,199 attribute–tag associations; tags-per-table and
//! attributes-per-table are heavily skewed ("the majority of the tables
//! having 25 or fewer" tags, §4.1). The crawl itself is not available, so
//! this generator reproduces those *published statistics* (the quantities
//! the organization algorithm is actually sensitive to — metadata skew,
//! multi-tagging, topic heterogeneity, partial embedding coverage) at a
//! configurable scale. See `DESIGN.md` §1 for the substitution argument.
//!
//! Generation model:
//!
//! * tags are assigned to vocabulary topics with Zipf-skewed topic
//!   popularity (several tags per topic, mimicking near-synonym portal
//!   keywords such as "health" / "healthcare" / "public health");
//! * each table draws a Zipfian *home topic*, a Zipfian attribute count and
//!   a Zipfian tag count; attributes sample values mostly from the home
//!   topic with occasional foreign-topic attributes (real tables mix
//!   concerns); table tags are drawn from the topics of its attributes,
//!   with a configurable mislabeling rate of uniformly random tags ("tags
//!   may be incomplete or inconsistent", §4.1);
//! * the embedding model covers only a fraction of words (70% by default,
//!   the paper's observed fastText coverage).

use dln_embed::{
    EmbeddingModel, SyntheticEmbedding, SyntheticEmbeddingConfig, TokenId, TopicAccumulator,
    VocabularyConfig,
};
use dln_lake::{DataLake, LakeBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Configuration of the Socrata-like generator.
#[derive(Clone, Debug)]
pub struct SocrataConfig {
    /// Number of tables. Paper crawl: 7,553.
    pub n_tables: usize,
    /// Number of distinct tags. Paper crawl: 11,083.
    pub n_tags: usize,
    /// Number of vocabulary topics (tags per topic ≈ n_tags / n_topics).
    pub n_topics: usize,
    /// Words per vocabulary topic.
    pub words_per_topic: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Intra-topic spread of the vocabulary.
    pub sigma: f32,
    /// Supertopic count (correlated topic centres; see
    /// `dln_embed::VocabularyConfig::n_supertopics`).
    pub n_supertopics: usize,
    /// Spread of topic centres around their supertopic centre.
    pub supertopic_sigma: f32,
    /// Fraction of words with embeddings (paper: ≈0.7 fastText coverage).
    pub coverage: f64,
    /// Zipf over attributes per table: support `1..=max`, exponent `s`.
    pub attrs_per_table_max: usize,
    /// Exponent of the attributes-per-table Zipf (1.3 ⇒ mean ≈ 6.7 for
    /// max = 50, matching 50,879 attrs over 7,553 tables).
    pub attrs_per_table_zipf_s: f64,
    /// Zipf over tags per table: support `1..=max`, exponent `s`.
    pub tags_per_table_max: usize,
    /// Exponent of the tags-per-table Zipf (1.5 ⇒ mean ≈ 5.2 for max = 60,
    /// matching 264,199 associations over 50,879 attributes).
    pub tags_per_table_zipf_s: f64,
    /// Zipf exponent of topic popularity (drives the skewed dimension sizes
    /// of Table 1).
    pub topic_popularity_zipf_s: f64,
    /// Values per attribute, uniform in `[values_min, values_max]`.
    pub values_min: usize,
    /// Upper bound of values per attribute.
    pub values_max: usize,
    /// Probability that an attribute samples from a random topic instead of
    /// the table's home topic.
    pub foreign_attr_rate: f64,
    /// Probability that a table tag is uniformly random instead of drawn
    /// from the topics of the table's attributes (metadata noise).
    pub mislabel_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Whether raw values are stored on attributes.
    pub store_values: bool,
}

impl SocrataConfig {
    /// Full paper-scale configuration (7,553 tables / 11,083 tags).
    /// Construction of a 10-dimensional organization at this scale is a
    /// long-running job (the paper reports 12 hours on their setup); the
    /// experiment binaries default to [`SocrataConfig::scaled`] variants.
    pub fn paper() -> SocrataConfig {
        SocrataConfig {
            n_tables: 7_553,
            n_tags: 11_083,
            n_topics: 800,
            words_per_topic: 250,
            dim: 50,
            sigma: 0.4,
            n_supertopics: 50,
            supertopic_sigma: 0.8,
            coverage: 0.7,
            attrs_per_table_max: 50,
            attrs_per_table_zipf_s: 1.3,
            tags_per_table_max: 60,
            tags_per_table_zipf_s: 1.5,
            topic_popularity_zipf_s: 1.0,
            values_min: 10,
            values_max: 200,
            foreign_attr_rate: 0.2,
            mislabel_rate: 0.05,
            seed: 0x50C2_A7A0,
            store_values: false,
        }
    }

    /// Reduced-scale lake for tests and quick experiments (≈150 tables).
    pub fn small() -> SocrataConfig {
        SocrataConfig {
            n_tables: 150,
            n_tags: 220,
            n_topics: 40,
            words_per_topic: 60,
            dim: 32,
            sigma: 0.4,
            n_supertopics: 8,
            supertopic_sigma: 0.8,
            coverage: 0.7,
            attrs_per_table_max: 20,
            attrs_per_table_zipf_s: 1.2,
            tags_per_table_max: 12,
            tags_per_table_zipf_s: 1.4,
            topic_popularity_zipf_s: 1.0,
            values_min: 5,
            values_max: 40,
            foreign_attr_rate: 0.2,
            mislabel_rate: 0.05,
            seed: 0x50C2_A7A0,
            store_values: true,
        }
    }

    /// Scale table / tag / topic counts by `f`.
    pub fn scaled(mut self, f: f64) -> SocrataConfig {
        assert!(f > 0.0, "scale factor must be positive");
        self.n_tables = ((self.n_tables as f64 * f).round() as usize).max(4);
        self.n_tags = ((self.n_tags as f64 * f).round() as usize).max(4);
        self.n_topics = ((self.n_topics as f64 * f).round() as usize).max(2);
        self
    }

    /// Generate the lake.
    pub fn generate(&self) -> SocrataLake {
        assert!(self.n_topics >= 2, "need at least two topics");
        assert!(
            self.n_tags >= self.n_topics,
            "need at least one tag per topic"
        );
        let model = SyntheticEmbedding::new(&SyntheticEmbeddingConfig {
            vocab: VocabularyConfig {
                n_topics: self.n_topics,
                words_per_topic: self.words_per_topic,
                dim: self.dim,
                sigma: self.sigma,
                n_supertopics: self.n_supertopics,
                supertopic_sigma: self.supertopic_sigma,
                seed: self.seed ^ 0xFEED_F00D,
            },
            coverage: self.coverage,
            coverage_seed: self.seed ^ 0xC07E_4A6E,
        });
        let vocab = model.vocab();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- Tag pool: Zipf-skewed assignment of tags to topics. ---
        let topic_zipf = Zipf::new(self.n_topics, self.topic_popularity_zipf_s);
        let mut tag_topic: Vec<usize> = Vec::with_capacity(self.n_tags);
        // Guarantee every topic owns at least one tag, then skew the rest.
        for t in 0..self.n_topics.min(self.n_tags) {
            tag_topic.push(t);
        }
        while tag_topic.len() < self.n_tags {
            tag_topic.push(topic_zipf.sample(&mut rng) - 1);
        }
        let tag_labels: Vec<String> = tag_topic
            .iter()
            .enumerate()
            .map(|(i, &t)| format!("tag-{t:04}-{i:05}"))
            .collect();
        let mut tags_of_topic: Vec<Vec<usize>> = vec![Vec::new(); self.n_topics];
        for (i, &t) in tag_topic.iter().enumerate() {
            tags_of_topic[t].push(i);
        }

        // --- Tables. ---
        let attrs_zipf = Zipf::new(self.attrs_per_table_max, self.attrs_per_table_zipf_s);
        let tags_zipf = Zipf::new(self.tags_per_table_max, self.tags_per_table_zipf_s);
        let mut builder = LakeBuilder::new(self.dim);
        builder.set_store_values(self.store_values);
        for ti in 0..self.n_tables {
            let table = builder.begin_table(&format!("dataset{ti:05}"));
            let home = topic_zipf.sample(&mut rng) - 1;
            let n_attrs = attrs_zipf.sample(&mut rng);
            let mut attr_topics: Vec<usize> = Vec::with_capacity(n_attrs);
            for a in 0..n_attrs {
                let topic = if rng.random::<f64>() < self.foreign_attr_rate {
                    rng.random_range(0..self.n_topics)
                } else {
                    home
                };
                attr_topics.push(topic);
                let k = rng.random_range(self.values_min..=self.values_max);
                let mut topic_acc = TopicAccumulator::new(self.dim);
                let mut values = Vec::new();
                let mut n_values = 0u32;
                for _ in 0..k {
                    let w = TokenId(
                        (topic * self.words_per_topic + rng.random_range(0..self.words_per_topic))
                            as u32,
                    );
                    n_values += 1;
                    // Respect the coverage mask: uncovered words contribute
                    // no vector, exactly as an out-of-fastText value would.
                    if let Some(v) = model.embed(vocab.word(w)) {
                        topic_acc.add(v);
                    }
                    if self.store_values {
                        values.push(vocab.word(w).to_string());
                    }
                }
                builder.add_attribute_raw(table, &format!("col{a}"), topic_acc, n_values, values);
            }
            // Table tags: drawn from attribute topics, plus mislabeling noise.
            let n_table_tags = tags_zipf.sample(&mut rng);
            for _ in 0..n_table_tags {
                let tag = if rng.random::<f64>() < self.mislabel_rate || attr_topics.is_empty() {
                    rng.random_range(0..self.n_tags)
                } else {
                    let topic = attr_topics[rng.random_range(0..attr_topics.len())];
                    let pool = &tags_of_topic[topic];
                    if pool.is_empty() {
                        rng.random_range(0..self.n_tags)
                    } else {
                        pool[rng.random_range(0..pool.len())]
                    }
                };
                builder.add_tag(table, &tag_labels[tag]);
            }
        }
        SocrataLake {
            lake: builder.build(),
            model,
        }
    }
}

/// A generated Socrata-like lake plus the embedding model behind it.
pub struct SocrataLake {
    /// The generated lake.
    pub lake: DataLake,
    /// The synthetic embedding model (for search / study components).
    pub model: SyntheticEmbedding,
}

impl SocrataLake {
    /// Carve two *tag-disjoint* sub-lakes in the style of the user study's
    /// Socrata-2 / Socrata-3 (§4.1: "Socrata-2 and Socrata-3 do not share
    /// any tags"). Topics are split into two halves; every table goes to
    /// the side owning the majority of its tags, and tags from the opposite
    /// side are dropped from it, guaranteeing disjoint tag sets.
    pub fn split_disjoint(&self, seed: u64) -> (DataLake, DataLake) {
        let lake = &self.lake;
        let mut rng = StdRng::seed_from_u64(seed);
        // Random half of the tags by label hash → stable side per tag.
        let mut side_of_tag: Vec<bool> = (0..lake.n_tags()).map(|_| rng.random()).collect();
        if side_of_tag.iter().all(|&s| s) {
            side_of_tag[0] = false;
        }
        if side_of_tag.iter().all(|&s| !s) {
            side_of_tag[0] = true;
        }
        let mut builders = (
            {
                let mut b = LakeBuilder::new(lake.dim());
                b.set_store_values(true);
                b
            },
            {
                let mut b = LakeBuilder::new(lake.dim());
                b.set_store_values(true);
                b
            },
        );
        for tid in lake.table_ids() {
            let table = lake.table(tid);
            if table.tags.is_empty() {
                continue;
            }
            let n_side1 = table.tags.iter().filter(|t| side_of_tag[t.index()]).count();
            let to_side1 = n_side1 * 2 > table.tags.len();
            let b = if to_side1 {
                &mut builders.1
            } else {
                &mut builders.0
            };
            let nt = b.begin_table(&table.name);
            for &tg in &table.tags {
                if side_of_tag[tg.index()] == to_side1 {
                    b.add_tag(nt, &lake.tag(tg).label);
                }
            }
            for &aid in &table.attrs {
                let a = lake.attr(aid);
                b.add_attribute_raw(nt, &a.name, a.topic.clone(), a.n_values, a.values.clone());
            }
        }
        (builders.0.build(), builders.1.build())
    }
}

/// Summary check used by tests and the experiment binaries: does a lake's
/// shape match the paper's published Socrata statistics within tolerance?
pub fn matches_paper_shape(lake: &DataLake, scale: f64, tolerance: f64) -> Result<(), String> {
    let stats = lake.stats();
    let expect_tables = 7_553.0 * scale;
    let expect_tags = 11_083.0 * scale;
    let check = |name: &str, got: f64, want: f64| -> Result<(), String> {
        if want == 0.0 {
            return Ok(());
        }
        let rel = (got - want).abs() / want;
        if rel <= tolerance {
            Ok(())
        } else {
            Err(format!(
                "{name}: got {got:.0}, want ≈{want:.0} (rel err {rel:.2})"
            ))
        }
    };
    check("tables", stats.n_tables as f64, expect_tables)?;
    check("tags", stats.n_tags as f64, expect_tags)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake() -> SocrataLake {
        SocrataConfig::small().generate()
    }

    #[test]
    fn counts_match_config() {
        let s = lake();
        assert_eq!(s.lake.n_tables(), 150);
        // Some generated tags may never be attached to a table; allow slack.
        assert!(s.lake.n_tags() <= 220);
        assert!(s.lake.n_tags() > 50);
        assert!(s.lake.n_attrs() > 300, "Zipf mean ≈ 4+ attrs per table");
    }

    #[test]
    fn skewed_distributions() {
        let s = lake();
        let st = s.lake.stats();
        // Zipf skew: max well above median.
        assert!(st.attrs_per_table.max >= 3 * st.attrs_per_table.median.max(1));
        assert!(st.tags_per_table.max >= 2 * st.tags_per_table.median.max(1));
    }

    #[test]
    fn coverage_near_config() {
        let s = lake();
        let st = s.lake.stats();
        assert!(
            (st.mean_embedding_coverage - 0.7).abs() < 0.1,
            "coverage {}",
            st.mean_embedding_coverage
        );
    }

    #[test]
    fn multi_tag_attributes_exist() {
        let s = lake();
        let multi = s
            .lake
            .attr_ids()
            .filter(|&a| s.lake.attr_tags(a).len() > 1)
            .count();
        assert!(multi > 0, "attributes should inherit multiple table tags");
    }

    #[test]
    fn deterministic() {
        let a = SocrataConfig::small().generate();
        let b = SocrataConfig::small().generate();
        assert_eq!(a.lake.n_attrs(), b.lake.n_attrs());
        assert_eq!(a.lake.n_tags(), b.lake.n_tags());
    }

    #[test]
    fn split_disjoint_has_no_shared_tags() {
        let s = lake();
        let (l2, l3) = s.split_disjoint(99);
        assert!(l2.n_tables() > 0 && l3.n_tables() > 0);
        let tags2: std::collections::HashSet<&str> =
            l2.tags().iter().map(|t| t.label.as_str()).collect();
        for t in l3.tags() {
            assert!(!tags2.contains(t.label.as_str()), "shared tag {}", t.label);
        }
        // Tables partitioned without loss (tables with ≥1 tag).
        assert!(l2.n_tables() + l3.n_tables() <= s.lake.n_tables());
        assert!(l2.n_tables() + l3.n_tables() >= s.lake.n_tables() - 5);
    }

    #[test]
    fn scaled_config() {
        let c = SocrataConfig::paper().scaled(0.1);
        assert_eq!(c.n_tables, 755);
        assert_eq!(c.n_tags, 1108);
        assert_eq!(c.n_topics, 80);
    }

    #[test]
    fn paper_shape_check_small_scale() {
        // Generate a 2% paper-scale lake and verify the shape checker.
        let c = SocrataConfig::paper().scaled(0.02);
        let c = SocrataConfig {
            words_per_topic: 40,
            values_min: 5,
            values_max: 30,
            store_values: false,
            ..c
        };
        let s = c.generate();
        matches_paper_shape(&s.lake, 0.02, 0.35).expect("shape within tolerance");
    }
}
