//! Truncated Zipf distribution.
//!
//! `P(k) ∝ 1 / k^s` for `k ∈ 1..=n`. Sampling is by inverse CDF with binary
//! search over a precomputed table, so a sampler is O(n) to build and
//! O(log n) per draw. Implemented locally because `rand_distr` is outside
//! the allowed dependency set.

use dln_fault::{DlnError, DlnResult};
use rand::Rng;

/// A sampler for the Zipf distribution truncated to `1..=n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative / non-finite. Use
    /// [`try_new`](Self::try_new) for a recoverable error instead.
    pub fn new(n: usize, s: f64) -> Zipf {
        match Self::try_new(n, s) {
            Ok(z) => z,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`new`](Self::new): an empty support or a
    /// negative / non-finite exponent is reported as
    /// [`DlnError::InvalidConfig`] instead of panicking, so generator
    /// configurations assembled from user input (CLI flags, study specs)
    /// can be validated without a crash.
    pub fn try_new(n: usize, s: f64) -> DlnResult<Zipf> {
        if n == 0 {
            return Err(DlnError::InvalidConfig(
                "Zipf support must be non-empty (n == 0)".to_string(),
            ));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(DlnError::InvalidConfig(format!(
                "Zipf exponent must be finite and >= 0, got {s}"
            )));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            // Guard against floating-point undershoot at the top.
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Support size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a value in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rand::RngExt::random(rng);
        self.quantile(u)
    }

    /// The value in `1..=n` at quantile `u ∈ [0, 1)`.
    pub fn quantile(&self, u: f64) -> usize {
        let i = self.cdf.partition_point(|&c| c <= u);
        i.min(self.cdf.len() - 1) + 1
    }

    /// Exact mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        let n = self.cdf.len();
        let mut prev = 0.0;
        let mut m = 0.0;
        for (k, &c) in self.cdf.iter().enumerate() {
            m += (k + 1) as f64 * (c - prev);
            prev = c;
        }
        let _ = n;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_support() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=50).contains(&v));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 51];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
        assert!(counts[1] > 10_000, "rank 1 should carry a large mass");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        // quantiles split evenly
        assert_eq!(z.quantile(0.0), 1);
        assert_eq!(z.quantile(0.26), 2);
        assert_eq!(z.quantile(0.51), 3);
        assert_eq!(z.quantile(0.76), 4);
    }

    #[test]
    fn quantile_edges() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.quantile(0.0), 1);
        assert_eq!(z.quantile(0.999999999), 10);
    }

    #[test]
    fn empirical_mean_matches_exact() {
        let z = Zipf::new(50, 1.3);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let sum: usize = (0..n).map(|_| z.sample(&mut rng)).sum();
        let emp = sum as f64 / n as f64;
        assert!(
            (emp - z.mean()).abs() < 0.1,
            "empirical {emp} vs exact {}",
            z.mean()
        );
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zero_support_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn try_new_rejects_bad_configs_without_panicking() {
        assert!(matches!(
            Zipf::try_new(0, 1.0),
            Err(DlnError::InvalidConfig(_))
        ));
        assert!(matches!(
            Zipf::try_new(10, -0.5),
            Err(DlnError::InvalidConfig(_))
        ));
        assert!(matches!(
            Zipf::try_new(10, f64::NAN),
            Err(DlnError::InvalidConfig(_))
        ));
        assert!(matches!(
            Zipf::try_new(10, f64::INFINITY),
            Err(DlnError::InvalidConfig(_))
        ));
        assert_eq!(Zipf::try_new(10, 1.0).unwrap().n(), 10);
    }

    #[test]
    fn single_value_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.mean() - 1.0).abs() < 1e-12);
    }
}
