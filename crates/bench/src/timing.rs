//! Minimal wall-clock micro-benchmark harness.
//!
//! The bench targets keep `harness = false` and drive this module directly
//! (the registry-hosted `criterion` crate is unavailable in this offline
//! build environment). Each measurement runs one untimed warm-up call, then
//! times `iters` calls and reports the mean — enough for the order-of-
//! magnitude comparisons the experiment binaries need.

use std::hint::black_box;
use std::time::Instant;

/// Time `iters` calls of `f` (after one warm-up call), print one report
/// line, and return the mean seconds per call.
pub fn bench_n<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "bench_n needs at least one iteration");
    black_box(f()); // warm-up: first-touch allocations, caches
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<52} {:>12}/iter   ({iters} iters)", fmt_secs(per));
    per
}

/// Render a duration in the most readable unit.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_n_returns_positive_mean() {
        let mut calls = 0usize;
        let per = bench_n("noop", 3, || {
            calls += 1;
            calls
        });
        assert!(per >= 0.0);
        assert_eq!(calls, 4, "one warm-up plus three timed calls");
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-5).ends_with("µs"));
        assert!(fmt_secs(5e-2).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
