//! Feedback-loop benchmark: emits `BENCH_reopt.json`.
//!
//! Two questions about the crash-safe re-optimization loop (DESIGN.md
//! §5h), measured on a TagCloud lake served by a `NavService`:
//!
//! 1. **Feedback effectiveness** — a population of sessions navigates
//!    with a shared "hot" query topic; after each of N feedback cycles
//!    (drain → plan → demand-weighted shard search → shard republish),
//!    the served organization's Eq 6 effectiveness is evaluated both
//!    plain (uniform table weights, the paper's objective) and
//!    *demand-weighted* (each visited state's walk mass spread over its
//!    member tags, the objective the optimizer actually steers toward). The
//!    delta against the static cycle-0 organization shows what the loop
//!    buys the users generating the feedback.
//! 2. **Migration cost** — the same re-optimized organization is
//!    published twice against fleets of mid-walk sessions: once as a
//!    shard-level republish (scoped swap; untouched-shard sessions ride
//!    in place) and once as a whole-snapshot hot-swap (every session
//!    replays by tag-set identity). Reported per publish: in-place vs
//!    replayed migrations, total lost depth, and wall-clock of stepping
//!    every session across the swap.
//!
//! Flags: `--attrs <n>` target attribute count (default 600), `--seed <n>`,
//! `--cycles <n>` feedback cycles (default 4), `--sessions <n>` walks per
//! cycle (default 24), `--probes <n>` mid-walk sessions per migration
//! fleet (default 200), `--out <path>` (default `BENCH_reopt.json`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Instant;

use dln_bench::git_commit;
use dln_org::{
    build_sharded, Evaluator, NavConfig, NavigationLog, OrgContext, Organization, ReoptConfig,
    Reoptimizer, Representatives, SearchConfig, ShardPolicy, ShardedBuild,
};
use dln_serve::{NavService, ServeConfig, StepAction, StepRequest, SwapOutcome};
use dln_synth::TagCloudConfig;

struct Args {
    attrs: usize,
    seed: u64,
    cycles: usize,
    sessions: u64,
    probes: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 600,
        seed: 42,
        cycles: 4,
        sessions: 24,
        probes: 200,
        out: "BENCH_reopt.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--cycles" => {
                args.cycles = need(i + 1).parse().expect("--cycles: integer");
                i += 2;
            }
            "--sessions" => {
                args.sessions = need(i + 1).parse().expect("--sessions: integer");
                i += 2;
            }
            "--probes" => {
                args.probes = need(i + 1).parse().expect("--probes: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --attrs <n> --seed <n> --cycles <n> --sessions <n> \
                     --probes <n> --out <path>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_bench_reopt_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service(build: &ShardedBuild) -> NavService {
    NavService::new(
        build.built.ctx.clone(),
        build.built.organization.clone(),
        build.built.nav,
        ServeConfig::default(),
    )
}

fn reopt_cfg(dir: &PathBuf, seed: u64) -> ReoptConfig {
    let mut cfg = ReoptConfig::new(dir);
    cfg.search = SearchConfig {
        max_iters: 200,
        plateau_iters: 60,
        seed,
        ..SearchConfig::default()
    };
    cfg.evidence_path = None;
    cfg
}

/// Drive `n` sessions that navigate greedily by the hot query's Eq 1
/// ranking — the feedback population the optimizer learns from.
fn drive_hot_walks(svc: &NavService, hot: &[f32], n: u64, depth: usize) {
    for i in 0..n {
        let sid = svc.open_session_keyed(i).expect("open session");
        for _ in 0..depth {
            let mut req = StepRequest::action(StepAction::Stay);
            req.query = Some(hot.to_vec());
            let view = svc.step(sid, &req).expect("view");
            let Some(best) = view
                .children
                .iter()
                .max_by(|a, b| {
                    a.prob
                        .partial_cmp(&b.prob)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|c| c.state)
            else {
                break;
            };
            svc.step(sid, &StepRequest::action(StepAction::Descend(best)))
                .expect("descend");
        }
        svc.close_session(sid).expect("close session");
    }
}

/// Open `n` mid-walk probe sessions spread deterministically across the
/// organization (child picked by session index at each level).
fn open_probe_fleet(svc: &NavService, n: u64, depth: usize) -> Vec<dln_serve::SessionId> {
    let mut probes = Vec::with_capacity(n as usize);
    for i in 0..n {
        let sid = svc.open_session_keyed(1_000_000 + i).expect("open probe");
        for d in 0..depth {
            let view = svc
                .step(sid, &StepRequest::action(StepAction::Stay))
                .expect("view");
            if view.children.is_empty() {
                break;
            }
            let pick = view.children[(i as usize + d) % view.children.len()].state;
            svc.step(sid, &StepRequest::action(StepAction::Descend(pick)))
                .expect("descend");
        }
        probes.push(sid);
    }
    probes
}

/// Plain and demand-weighted Eq 6 effectiveness of `org` on the full
/// context. The demand weights mirror the optimizer's plan weighting:
/// each visited state's walk mass spreads evenly over its member tags,
/// and a table's weight is pseudo-count 4 plus the demand of its
/// attributes' tags, mean-normalized.
fn effectiveness_pair(
    ctx: &OrgContext,
    org: &Organization,
    nav: NavConfig,
    evidence: &NavigationLog,
) -> (f64, f64) {
    let reps = Representatives::exact(ctx);
    let mut ev = Evaluator::new(ctx, org, nav, &reps);
    let plain = ev.effectiveness();
    let mut tag_demand = vec![0.0f64; ctx.n_tags()];
    for s in org.alive_ids() {
        let v = evidence.visits(s) as f64;
        if v == 0.0 {
            continue;
        }
        let member: Vec<u32> = org.state(s).tags.iter().collect();
        if member.is_empty() {
            continue;
        }
        let share = v / member.len() as f64;
        for t in member {
            tag_demand[t as usize] += share;
        }
    }
    let mut weights = Vec::with_capacity(ctx.n_tables());
    for table in ctx.tables() {
        let mut demand = 4.0f64;
        for &a in &table.attrs {
            for &t in &ctx.attr(a).tags {
                demand += tag_demand[t as usize];
            }
        }
        weights.push(demand);
    }
    let total: f64 = weights.iter().sum();
    let n = weights.len() as f64;
    for w in &mut weights {
        *w *= n / total;
    }
    ev.set_table_weights(&weights);
    (plain, ev.effectiveness())
}

/// Step every probe once across a publish; returns (in_place, replayed,
/// total lost depth, seconds).
fn migrate_fleet(svc: &NavService, probes: &[dln_serve::SessionId]) -> (u64, u64, usize, f64) {
    let in_place_0 = svc.stats().migrated_in_place.load(Ordering::Relaxed);
    let replayed_0 = svc.stats().migrated.load(Ordering::Relaxed);
    let mut lost_total = 0usize;
    let start = Instant::now();
    for &sid in probes {
        let resp = svc
            .step(sid, &StepRequest::action(StepAction::Stay))
            .expect("step probe");
        if let SwapOutcome::Migrated { lost_depth, .. } = resp.swap {
            lost_total += lost_depth;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let in_place = svc.stats().migrated_in_place.load(Ordering::Relaxed) - in_place_0;
    let replayed = svc.stats().migrated.load(Ordering::Relaxed) - replayed_0;
    (in_place, replayed, lost_total, secs)
}

fn main() {
    let args = parse_args();
    eprintln!("generating TagCloud lake (~{} attrs) ...", args.attrs);
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let build_cfg = SearchConfig {
        max_iters: 200,
        plateau_iters: 60,
        seed: args.seed,
        shards: ShardPolicy::Fixed(4),
        ..SearchConfig::default()
    };
    let build = build_sharded(&bench.lake, &build_cfg);
    let ctx = &build.built.ctx;
    let nav = build.built.nav;
    eprintln!(
        "context: {} attrs, {} tags, {} tables, {} shards",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        build.n_shards()
    );
    let hot = ctx.attr(0).unit_topic.clone();

    // Part 1: N feedback cycles against one served organization.
    let svc = service(&build);
    let dir = tmp_dir("cycles");
    let mut reopt =
        Reoptimizer::for_build(&bench.lake, &build, reopt_cfg(&dir, args.seed)).expect("reopt");
    let static_org = build.built.organization.clone();
    let mut cycle_lines = Vec::new();
    let mut final_evidence = NavigationLog::new();
    for cycle in 0..args.cycles {
        drive_hot_walks(&svc, &hot, args.sessions, 6);
        let report = svc.run_reopt_cycle(&mut reopt).expect("cycle");
        final_evidence = reopt.evidence().clone();
        let (_, org) = svc.snapshot().owned_parts().expect("owned snapshot");
        let (plain, weighted) = effectiveness_pair(ctx, &org, nav, &final_evidence);
        eprintln!(
            "cycle {cycle}: drained {} sessions, shard {:?}, epoch {:?}, \
             effectiveness plain {plain:.6} weighted {weighted:.6}",
            report.drained_sessions, report.shard, report.epoch
        );
        cycle_lines.push(format!(
            "      {{ \"cycle\": {cycle}, \"drained_sessions\": {}, \"shard\": {}, \
             \"epoch\": {}, \"effectiveness_plain\": {plain:.9}, \
             \"effectiveness_weighted\": {weighted:.9} }}",
            report.drained_sessions,
            report.shard.map_or("null".to_string(), |s| s.to_string()),
            report.epoch.map_or("null".to_string(), |e| e.to_string()),
        ));
    }
    // The static organization scored against the same final evidence.
    let (static_plain, static_weighted) =
        effectiveness_pair(ctx, &static_org, nav, &final_evidence);
    let (_, final_org) = svc.snapshot().owned_parts().expect("owned snapshot");
    let (final_plain, final_weighted) = effectiveness_pair(ctx, &final_org, nav, &final_evidence);
    eprintln!(
        "static:  plain {static_plain:.6} weighted {static_weighted:.6}\n\
         reopt:   plain {final_plain:.6} weighted {final_weighted:.6} \
         (weighted delta {:+.6})",
        final_weighted - static_weighted
    );

    // Part 2: the same republish served two ways against probe fleets.
    let reopt_full = (*final_org).clone();
    // Shard republish: a fresh service re-runs one cycle (same walks, same
    // durable-state discipline) against its own probe fleet.
    let svc_shard = service(&build);
    let dir2 = tmp_dir("migration");
    let mut reopt2 =
        Reoptimizer::for_build(&bench.lake, &build, reopt_cfg(&dir2, args.seed)).expect("reopt");
    let probes_shard = open_probe_fleet(&svc_shard, args.probes, 3);
    drive_hot_walks(&svc_shard, &hot, args.sessions, 6);
    let report = svc_shard.run_reopt_cycle(&mut reopt2).expect("cycle");
    assert!(report.epoch.is_some(), "migration fleet needs a republish");
    let (in_place_s, replayed_s, lost_s, secs_s) = migrate_fleet(&svc_shard, &probes_shard);
    // Whole-snapshot hot-swap of an equally re-optimized organization.
    let svc_whole = service(&build);
    let probes_whole = open_probe_fleet(&svc_whole, args.probes, 3);
    svc_whole.publish(ctx.clone(), reopt_full, nav);
    let (in_place_w, replayed_w, lost_w, secs_w) = migrate_fleet(&svc_whole, &probes_whole);
    eprintln!(
        "shard republish: {in_place_s} in place + {replayed_s} replayed, \
         lost depth {lost_s}, {:.1} µs/session",
        secs_s * 1e6 / args.probes as f64
    );
    eprintln!(
        "whole snapshot:  {in_place_w} in place + {replayed_w} replayed, \
         lost depth {lost_w}, {:.1} µs/session",
        secs_w * 1e6 / args.probes as f64
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"reopt\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \
         \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"n_shards\": {},", build.n_shards());
    let _ = writeln!(json, "  \"sessions_per_cycle\": {},", args.sessions);
    let _ = writeln!(json, "  \"feedback\": {{");
    let _ = writeln!(
        json,
        "    \"static\": {{ \"effectiveness_plain\": {static_plain:.9}, \
         \"effectiveness_weighted\": {static_weighted:.9} }},"
    );
    let _ = writeln!(
        json,
        "    \"after_cycles\": {{ \"effectiveness_plain\": {final_plain:.9}, \
         \"effectiveness_weighted\": {final_weighted:.9}, \"weighted_delta\": {:.9} }},",
        final_weighted - static_weighted
    );
    let _ = writeln!(json, "    \"cycles\": [");
    let _ = writeln!(json, "{}", cycle_lines.join(",\n"));
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"migration\": {{");
    let _ = writeln!(json, "    \"n_sessions\": {},", args.probes);
    let _ = writeln!(
        json,
        "    \"shard_republish\": {{ \"in_place\": {in_place_s}, \"replayed\": {replayed_s}, \
         \"lost_depth_total\": {lost_s}, \"seconds\": {secs_s:.6} }},"
    );
    let _ = writeln!(
        json,
        "    \"whole_snapshot\": {{ \"in_place\": {in_place_w}, \"replayed\": {replayed_w}, \
         \"lost_depth_total\": {lost_w}, \"seconds\": {secs_w:.6} }}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_reopt.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}
