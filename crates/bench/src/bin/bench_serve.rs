//! Serving-layer latency benchmark: emits `BENCH_serve.json`.
//!
//! Measures per-step latency of [`NavService::step`] — the request path a
//! navigating user actually waits on — under increasing concurrency, in
//! three regimes:
//!
//! 1. **Quiet** — N agent threads stepping, nothing else happening: the
//!    baseline cost of admission + session lock + Eq 1 child ranking.
//! 2. **Hot-swap** — the same fleet while a publisher thread keeps
//!    republishing alternating organizations: measures what epoch
//!    migration (path replay + label-cache cold starts) does to the tail.
//! 3. **Deadline** — the quiet fleet with a tight per-request deadline and
//!    the `serve.slow` failpoint charging virtual stalls: measures the
//!    degraded path (label-only rendering) and reports the degraded
//!    fraction.
//!
//! Reports p50/p95/p99 step latency, throughput, and the service counters
//! for each cell. Flags: `--attrs <n>` (default 600), `--steps <n>` per
//! agent (default 400), `--seed <n>`, `--out <path>` (default
//! `BENCH_serve.json`).
//!
//! [`NavService::step`]: dln_serve::NavService::step

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::Instant;

use dln_bench::{git_commit, thread_sweep};
use dln_org::eval::NavConfig;
use dln_org::{clustering_org, flat_org, OrgContext};
use dln_serve::{
    NavService, ServeConfig, ServeError, SessionId, StepAction, StepRequest, StepResponse,
};
use dln_synth::TagCloudConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Args {
    attrs: usize,
    steps: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 600,
        steps: 400,
        seed: 42,
        out: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--steps" => {
                args.steps = need(i + 1).parse().expect("--steps: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("flags: --attrs <n> --steps <n> --seed <n> --out <path>");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One agent thread: random walk (query-ranked descents, occasional
/// backtracks) for `steps` requests, recording each request's latency.
fn agent_walk(
    svc: &NavService,
    sid: SessionId,
    query: &[f32],
    steps: usize,
    seed: u64,
    yield_between: bool,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lat = Vec::with_capacity(steps);
    let mut view: Option<StepResponse> = None;
    for _ in 0..steps {
        if yield_between {
            // Give the publisher a scheduling slot between steps so swaps
            // actually land mid-walk (matters on few-core hosts). Outside
            // the timed section: latency percentiles stay pure step cost.
            std::thread::yield_now();
        }
        let action = match &view {
            Some(v) if !v.children.is_empty() && rng.random::<f64>() > 0.25 => {
                let i = rng.random_range(0..v.children.len());
                StepAction::Descend(v.children[i].state)
            }
            Some(_) => StepAction::Backtrack,
            None => StepAction::Stay,
        };
        let req = StepRequest {
            action,
            query: Some(query.to_vec()),
            deadline_ms: None,
            list_tables: false,
        };
        let start = Instant::now();
        let out = svc.step(sid, &req);
        lat.push(start.elapsed().as_secs_f64());
        view = match out {
            Ok(v) => Some(v),
            // A migration can invalidate the chosen child mid-walk, and an
            // overloaded gate can shed: refresh the view and keep walking.
            Err(ServeError::Nav(_) | ServeError::Overloaded { .. }) => None,
            Err(e) => {
                eprintln!("agent error (session {sid:?}): {e}");
                break;
            }
        };
    }
    lat
}

struct CellResult {
    label: String,
    agents: usize,
    p50: f64,
    p95: f64,
    p99: f64,
    throughput: f64,
    requests: u64,
    degraded: u64,
    migrated: u64,
    overloaded: u64,
}

/// Run one benchmark cell: `agents` walker threads, optionally a publisher
/// republishing organizations, optional deadline + armed `serve.slow`.
fn run_cell(
    label: &str,
    ctx: &OrgContext,
    agents: usize,
    steps: usize,
    seed: u64,
    publish: bool,
    deadline_ms: Option<u64>,
) -> CellResult {
    let cfg = ServeConfig {
        max_sessions: agents.max(1) * 2,
        max_concurrency: agents.max(1),
        queue_depth: 2 * agents.max(1),
        deadline_ms,
        ..ServeConfig::default()
    };
    let svc = NavService::new(ctx.clone(), clustering_org(ctx), NavConfig::default(), cfg);
    // Prebuild the alternate organizations before spawning anything: each
    // publish is then just an Arc swap, so swaps land *during* the walks
    // rather than after the fleet has already finished.
    let alt_orgs = publish.then(|| [flat_org(ctx), clustering_org(ctx)]);
    let wall = Instant::now();
    let mut all: Vec<f64> = Vec::with_capacity(agents * steps);
    std::thread::scope(|scope| {
        let svc = &svc;
        let mut handles = Vec::new();
        for a in 0..agents {
            let q: Vec<f32> = ctx.attr((a % ctx.n_attrs()) as u32).unit_topic.clone();
            let sid = svc
                .open_session_keyed(seed ^ (a as u64))
                .expect("registry sized for the fleet");
            handles.push(
                scope.spawn(move || agent_walk(svc, sid, &q, steps, seed + a as u64, publish)),
            );
        }
        let publisher = alt_orgs.map(|orgs| {
            scope.spawn(move || {
                // Republish the alternating prebuilt orgs until the fleet
                // is done stepping.
                let target = (agents * steps) as u64;
                let mut i = 0usize;
                while svc.stats().requests.load(Ordering::Relaxed) < target {
                    svc.publish(ctx.clone(), orgs[i % 2].clone(), NavConfig::default());
                    i += 1;
                    std::thread::yield_now();
                }
            })
        });
        for h in handles {
            all.extend(h.join().expect("agent thread panicked"));
        }
        if let Some(p) = publisher {
            p.join().expect("publisher thread panicked");
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let st = svc.stats();
    CellResult {
        label: label.to_string(),
        agents,
        p50: percentile(&all, 0.50),
        p95: percentile(&all, 0.95),
        p99: percentile(&all, 0.99),
        throughput: all.len() as f64 / wall_secs.max(1e-9),
        requests: st.requests.load(Ordering::Relaxed),
        degraded: st.degraded.load(Ordering::Relaxed),
        migrated: st.migrated.load(Ordering::Relaxed),
        overloaded: st.overloaded.load(Ordering::Relaxed),
    }
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    eprintln!(
        "context: {} attrs, {} tags, {} tables",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables()
    );

    // Fleet sizes mirror the worker sweep (honors DLN_THREADS as the cap).
    let fleet_sweep = thread_sweep();

    let mut cells: Vec<CellResult> = Vec::new();
    for &agents in &fleet_sweep {
        cells.push(run_cell(
            "quiet", &ctx, agents, args.steps, args.seed, false, None,
        ));
    }
    for &agents in &fleet_sweep {
        cells.push(run_cell(
            "hot_swap", &ctx, agents, args.steps, args.seed, true, None,
        ));
    }
    // Deadline regime: virtual stalls via serve.slow against a 5 ms budget.
    {
        let _fp = dln_fault::scoped("serve.slow:0.3:9").expect("valid failpoint spec");
        let agents = *fleet_sweep.last().unwrap_or(&1);
        let mut cell = run_cell(
            "deadline",
            &ctx,
            agents,
            args.steps,
            args.seed,
            false,
            Some(5),
        );
        cell.label = "deadline".to_string();
        cells.push(cell);
    }

    for c in &cells {
        eprintln!(
            "{:<9} agents={}: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, {:.0} req/s, degraded {}, migrated {}, shed {}",
            c.label,
            c.agents,
            c.p50 * 1e3,
            c.p95 * 1e3,
            c.p99 * 1e3,
            c.throughput,
            c.degraded,
            c.migrated,
            c.overloaded
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"serve\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"steps_per_agent\": {},", args.steps);
    let _ = writeln!(json, "  \"cells\": [");
    let lines: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"regime\": \"{}\", \"agents\": {}, \"p50_seconds\": {:.9}, \"p95_seconds\": {:.9}, \"p99_seconds\": {:.9}, \"requests_per_second\": {:.1}, \"requests\": {}, \"degraded\": {}, \"migrated\": {}, \"overloaded\": {} }}",
                c.label,
                c.agents,
                c.p50,
                c.p95,
                c.p99,
                c.throughput,
                c.requests,
                c.degraded,
                c.migrated,
                c.overloaded
            )
        })
        .collect();
    let _ = writeln!(json, "{}", lines.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
