//! **Scalability study** — the paper's future-work item "a detailed
//! scalability study of our technique with respect to the size of data
//! lakes".
//!
//! Sweeps the Socrata-like lake over a range of scale factors and
//! measures, at each size: generation time, 10%-representative 2-dim
//! organization construction time (wall clock, parallel dimensions), the
//! resulting effectiveness, and the exact-evaluation time of the final
//! organization. Prints one row per scale and writes the sweep as CSV.
//!
//! `--scale` sets the *largest* factor of the sweep (default 0.2 — about
//! 1,500 tables; the paper's full crawl corresponds to 1.0).

use dln_bench::{print_table, write_csv, ExpArgs};
use dln_org::{MultiDimConfig, MultiDimOrganization, NavConfig, SearchConfig};
use dln_synth::SocrataConfig;

fn main() {
    let args = ExpArgs::parse(0.2);
    let top = args.effective_scale();
    let factors: Vec<f64> = [0.125, 0.25, 0.5, 1.0].iter().map(|f| f * top).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for &f in &factors {
        let cfg = SocrataConfig {
            seed: args.seed,
            store_values: false,
            ..SocrataConfig::paper().scaled(f)
        };
        let t0 = std::time::Instant::now();
        let socrata = cfg.generate();
        let gen_s = t0.elapsed().as_secs_f64();
        let lake = &socrata.lake;
        let t0 = std::time::Instant::now();
        let md = MultiDimOrganization::build(
            lake,
            &MultiDimConfig {
                n_dims: 2,
                search: SearchConfig {
                    nav: NavConfig { gamma: args.gamma },
                    rep_fraction: 0.1,
                    seed: args.seed,
                    ..Default::default()
                },
                partition_seed: args.seed,
                parallel: true,
            },
        );
        let build_s = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let eff = md.effectiveness(lake);
        let eval_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "scale {f:.3}: {} tables / {} tags / {} attrs — gen {gen_s:.1}s build {build_s:.1}s eval {eval_s:.1}s eff {eff:.3}",
            lake.n_tables(),
            lake.n_tags(),
            lake.n_attrs()
        );
        rows.push(vec![
            format!("{f:.3}"),
            format!("{}", lake.n_tables()),
            format!("{}", lake.n_attrs()),
            format!("{gen_s:.2}"),
            format!("{build_s:.2}"),
            format!("{eval_s:.2}"),
            format!("{eff:.4}"),
        ]);
        for (c, v) in cols
            .iter_mut()
            .zip([f, lake.n_attrs() as f64, gen_s, build_s, eval_s, eff])
        {
            c.push(v);
        }
    }
    println!("\nScalability sweep (2-dim organizations, 10% representatives)");
    print_table(
        &[
            "scale",
            "tables",
            "attrs",
            "gen s",
            "build s",
            "eval s",
            "effectiveness",
        ],
        &rows,
    );
    // Growth-rate check: construction should scale roughly sub-quadratically
    // in the attribute count.
    if cols[1].len() >= 2 {
        let (a0, an) = (cols[1][0], *cols[1].last().unwrap());
        let (b0, bn) = (cols[3][0].max(1e-3), cols[3].last().unwrap().max(1e-3));
        let exponent = (bn / b0).ln() / (an / a0).ln();
        println!("\nempirical construction-time exponent vs attribute count: {exponent:.2}");
    }
    let named: Vec<(&str, &[f64])> = vec![
        ("scale", &cols[0]),
        ("attrs", &cols[1]),
        ("gen_seconds", &cols[2]),
        ("build_seconds", &cols[3]),
        ("eval_seconds", &cols[4]),
        ("effectiveness", &cols[5]),
    ];
    let path = write_csv(&args.out, "scalability.csv", &named).expect("csv written");
    println!("written to {}", path.display());
}
