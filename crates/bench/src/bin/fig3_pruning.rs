//! **Figure 3** — Pruning (a) domains and (b) states on the TagCloud
//! benchmark (§4.3.3).
//!
//! During local search, only the affected subgraph of an operation is
//! re-evaluated. The paper reports that "although local changes can
//! potentially propagate to the whole organization, on average less than
//! half of states and attributes are visited and evaluated for each search
//! iteration", and that the 10% representative approximation "reduces the
//! number of discovery probability evaluations to only 6% of the
//! attributes".
//!
//! This binary instruments an exact and an approximate optimization run
//! and prints, per iteration: the fraction of states re-evaluated
//! (Fig 3b), the fraction of attributes whose discovery probability was
//! re-evaluated (Fig 3a, exact), and the fraction of evaluations actually
//! performed (approximate mode).

use dln_bench::{print_table, write_csv, ExpArgs};
use dln_org::{clustering_org, search, NavConfig, OrgContext, SearchConfig};
use dln_synth::TagCloudConfig;

fn main() {
    let args = ExpArgs::parse(0.4);
    let scale = args.effective_scale();
    let cfg = TagCloudConfig {
        seed: args.seed,
        ..TagCloudConfig::paper().scaled(scale)
    };
    let bench = cfg.generate();
    let ctx = OrgContext::full(&bench.lake);
    eprintln!(
        "TagCloud: {} tags / {} attrs / {} states in the clustering org",
        ctx.n_tags(),
        ctx.n_attrs(),
        2 * ctx.n_tags() - 1
    );
    let nav = NavConfig { gamma: args.gamma };

    let run = |rep_fraction: f64| {
        let mut org = clustering_org(&ctx);
        // A long plateau so the sweep reaches every level: operations near
        // the root have large affected subgraphs, deep ones small — the
        // Figure 3 average is over the whole organization.
        let cfg = SearchConfig {
            nav,
            rep_fraction,
            seed: args.seed,
            plateau_iters: 800,
            max_iters: 1_600,
            ..Default::default()
        };
        search::optimize(&ctx, &mut org, &cfg)
    };

    eprintln!("running exact-evaluation search ...");
    let exact = run(1.0);
    eprintln!("running 10%-representative search ...");
    let approx = run(0.1);

    println!("\nFigure 3 — fraction of the organization re-evaluated per search iteration");
    println!("paper: on average less than half of states and attributes; ~6% of attributes with representatives\n");
    print_table(
        &["mode", "states/iter", "attrs/iter", "evals/iter", "iters"],
        &[
            vec![
                "exact".into(),
                format!("{:.3}", exact.mean_state_fraction()),
                format!("{:.3}", exact.mean_attr_fraction(ctx.n_attrs())),
                format!("{:.3}", exact.mean_eval_fraction(ctx.n_attrs())),
                format!("{}", exact.iterations),
            ],
            vec![
                "approx (10% reps)".into(),
                format!("{:.3}", approx.mean_state_fraction()),
                format!("{:.3}", approx.mean_attr_fraction(ctx.n_attrs())),
                format!("{:.3}", approx.mean_eval_fraction(ctx.n_attrs())),
                format!("{}", approx.iterations),
            ],
        ],
    );

    // Per-iteration series for plotting.
    let series = |stats: &dln_org::SearchStats, pick: &dyn Fn(&dln_org::IterStats) -> f64| {
        stats
            .iter_stats
            .iter()
            .filter(|s| s.op.is_some())
            .map(pick)
            .collect::<Vec<f64>>()
    };
    let exact_states = series(&exact, &|s| {
        s.states_visited as f64 / s.states_alive.max(1) as f64
    });
    let exact_attrs = series(&exact, &|s| {
        s.attrs_covered as f64 / ctx.n_attrs().max(1) as f64
    });
    let approx_states = series(&approx, &|s| {
        s.states_visited as f64 / s.states_alive.max(1) as f64
    });
    let approx_evals = series(&approx, &|s| {
        s.queries_evaluated as f64 / ctx.n_attrs().max(1) as f64
    });
    let cols: Vec<(&str, &[f64])> = vec![
        ("exact_state_fraction", exact_states.as_slice()),
        ("exact_attr_fraction", exact_attrs.as_slice()),
        ("approx_state_fraction", approx_states.as_slice()),
        ("approx_eval_fraction", approx_evals.as_slice()),
    ];
    let path = write_csv(&args.out, "fig3_pruning.csv", &cols).expect("csv written");
    println!("\nper-iteration series written to {}", path.display());
}
