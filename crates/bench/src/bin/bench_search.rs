//! Local-search performance benchmark: emits `BENCH_search.json`.
//!
//! Measures, on a TagCloud lake:
//!
//! 1. **Construction front-end timings** at a sweep of thread counts:
//!    context admission scan (`OrgContext::full`) and the agglomerative
//!    initial organization (`clustering_org`, dominated by the pairwise
//!    distance matrix) — the phases parallelized by this revision;
//! 2. **Search wall-clock** of [`optimize`] for speculative batch widths
//!    `B ∈ {1, 2, 4, 8}` at each thread count, with a fixed proposal
//!    budget so the per-configuration work is comparable;
//! 3. The serial reference walk ([`optimize_reference`]) as the A/B
//!    baseline, and the single-worker overhead of `B > 1` relative to
//!    `B = 1` (the lazy resolution path must stay cheap on small hosts).
//!
//! Flags: `--attrs <n>` target attribute count (default 800), `--seed <n>`,
//! `--iters <n>` proposal budget per run (default 200), `--out <path>`
//! JSON output path (default `BENCH_search.json`).
//!
//! [`optimize`]: dln_org::search::optimize
//! [`optimize_reference`]: dln_org::search::optimize_reference

use std::fmt::Write as _;
use std::time::Instant;

use dln_bench::{git_commit, thread_sweep};
use dln_org::search::{optimize, optimize_reference, SearchConfig, SearchStats};
use dln_org::{clustering_org, random_org, OrgContext};
use dln_synth::TagCloudConfig;

struct Args {
    attrs: usize,
    seed: u64,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 800,
        seed: 42,
        iters: 200,
        out: "BENCH_search.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--iters" => {
                args.iters = need(i + 1).parse().expect("--iters: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("flags: --attrs <n> --seed <n> --iters <n> --out <path>");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One timed optimize run with a fixed proposal budget (plateau disabled so
/// every configuration performs the same number of proposals).
fn timed_search(ctx: &OrgContext, seed: u64, iters: usize, batch: usize) -> (f64, SearchStats) {
    let cfg = SearchConfig {
        max_iters: iters,
        plateau_iters: iters.max(1),
        batch_size: batch,
        seed,
        ..Default::default()
    };
    let mut org = random_org(ctx, seed ^ 0x0A11);
    let start = Instant::now();
    let stats = optimize(ctx, &mut org, &cfg);
    (start.elapsed().as_secs_f64(), stats)
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    if ctx.n_tags() == 0 || ctx.n_attrs() == 0 {
        eprintln!("error: --attrs {} produced an empty lake", args.attrs);
        std::process::exit(2);
    }
    eprintln!(
        "context: {} attrs, {} tags, {} tables",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables()
    );

    let sweep = thread_sweep();

    // 1. Construction front-end: context build + clustering init.
    let mut init_lines = Vec::new();
    for &threads in &sweep {
        rayon::set_num_threads(threads);
        let start = Instant::now();
        let ctx_t = OrgContext::full(&bench.lake);
        let ctx_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let org = clustering_org(&ctx_t);
        let clus_secs = start.elapsed().as_secs_f64();
        eprintln!(
            "init @ {threads} thread(s): context {:.1} ms, clustering ({} slots) {:.1} ms",
            ctx_secs * 1e3,
            org.n_slots(),
            clus_secs * 1e3
        );
        init_lines.push(format!(
            "    {{ \"threads\": {threads}, \"context_seconds\": {ctx_secs:.6}, \"clustering_seconds\": {clus_secs:.6} }}"
        ));
    }

    // 2. Serial reference walk (A/B baseline), one worker.
    rayon::set_num_threads(1);
    let ref_cfg = SearchConfig {
        max_iters: args.iters,
        plateau_iters: args.iters.max(1),
        batch_size: 1,
        seed: args.seed,
        ..Default::default()
    };
    let mut ref_org = random_org(&ctx, args.seed ^ 0x0A11);
    let start = Instant::now();
    let ref_stats = optimize_reference(&ctx, &mut ref_org, &ref_cfg);
    let ref_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "reference serial walk: {:.1} ms for {} proposals",
        ref_secs * 1e3,
        ref_stats.iterations
    );

    // 3. Batched search across B × threads.
    let batches = [1usize, 2, 4, 8];
    let mut search_lines = Vec::new();
    let mut b1_t1 = f64::NAN;
    let mut worst_overhead = f64::NAN;
    for &batch in &batches {
        for &threads in &sweep {
            rayon::set_num_threads(threads);
            let (secs, stats) = timed_search(&ctx, args.seed, args.iters, batch);
            eprintln!(
                "optimize B={batch} @ {threads} thread(s): {:.1} ms, {} proposals, {} accepted, {} cancelled speculations",
                secs * 1e3,
                stats.iterations,
                stats.accepted,
                stats.speculative_evals
            );
            if batch == 1 && threads == 1 {
                b1_t1 = secs;
            }
            if batch > 1 && threads == 1 {
                let overhead = secs / b1_t1;
                if worst_overhead.is_nan() || overhead > worst_overhead {
                    worst_overhead = overhead;
                }
            }
            search_lines.push(format!(
                "    {{ \"batch\": {batch}, \"threads\": {threads}, \"seconds\": {secs:.6}, \"iterations\": {}, \"accepted\": {}, \"speculative_evals\": {}, \"final_effectiveness\": {:.9} }}",
                stats.iterations, stats.accepted, stats.speculative_evals, stats.final_effectiveness
            ));
        }
    }
    rayon::set_num_threads(0); // restore the environment default
    eprintln!(
        "single-worker batching overhead (worst B>1 vs B=1): {:.3}x",
        worst_overhead
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"search\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"proposal_budget\": {},", args.iters);
    let _ = writeln!(json, "  \"init\": [");
    let _ = writeln!(json, "{}", init_lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"reference_serial\": {{ \"seconds\": {ref_secs:.6}, \"iterations\": {}, \"final_effectiveness\": {:.9} }},",
        ref_stats.iterations, ref_stats.final_effectiveness
    );
    let _ = writeln!(json, "  \"search\": [");
    let _ = writeln!(json, "{}", search_lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"single_worker_batch_overhead_worst\": {worst_overhead:.4}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_search.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
