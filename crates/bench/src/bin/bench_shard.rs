//! Sharded-construction benchmark: emits `BENCH_shard.json`.
//!
//! Measures, on a TagCloud lake, a grid of `shard-policy × threads`
//! cells (fixed counts 1/2/4 plus `auto`, the knee-of-cost-curve policy):
//!
//! 1. **Construction wall-clock** of [`build_sharded`] — partitioning,
//!    all per-shard searches under the parallel schedule, and the router
//!    stitch — with a fixed per-shard proposal budget (plateau disabled)
//!    so cells are comparable;
//! 2. **Stitched effectiveness** (Eq 6, exact, on the *full* context) so
//!    the quality cost of sharding is visible next to the speedup;
//! 3. Each cell's ratios against the `shards = 1` oracle at the same
//!    thread count (that cell is bit-identical to the unsharded
//!    `build_optimized` path).
//!
//! The shard speedup has two independent sources: per-shard searches run
//! concurrently (threads), and each shard evaluates on a context
//! restricted to its own tags *and* their queries, so per-proposal cost
//! falls roughly quadratically with the shard's tag share — which is why
//! the single-thread cells already improve.
//!
//! The `auto` cell also reports the knee its spectrum chose
//! (`auto_knee`).
//!
//! Flags: `--attrs <n>` target attribute count (default 800), `--seed <n>`,
//! `--iters <n>` proposal budget per shard search (default 200),
//! `--out <path>` JSON output path (default `BENCH_shard.json`).
//!
//! [`build_sharded`]: dln_org::build_sharded

use std::fmt::Write as _;
use std::time::Instant;

use dln_bench::{git_commit, thread_sweep};
use dln_org::{build_sharded, OrgContext, SearchConfig, ShardPolicy, ShardedBuild};
use dln_synth::TagCloudConfig;

struct Args {
    attrs: usize,
    seed: u64,
    iters: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 800,
        seed: 42,
        iters: 200,
        out: "BENCH_shard.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--iters" => {
                args.iters = need(i + 1).parse().expect("--iters: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("flags: --attrs <n> --seed <n> --iters <n> --out <path>");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One timed sharded build: full wall-clock of partition + per-shard
/// searches + stitch, with the plateau stop disabled for comparability.
fn timed_build(
    lake: &dln_lake::DataLake,
    seed: u64,
    iters: usize,
    shards: ShardPolicy,
) -> (f64, ShardedBuild) {
    let cfg = SearchConfig {
        max_iters: iters,
        plateau_iters: iters.max(1),
        seed,
        shards,
        ..Default::default()
    };
    let start = Instant::now();
    let build = build_sharded(lake, &cfg);
    (start.elapsed().as_secs_f64(), build)
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    if ctx.n_tags() == 0 || ctx.n_attrs() == 0 {
        eprintln!("error: --attrs {} produced an empty lake", args.attrs);
        std::process::exit(2);
    }
    eprintln!(
        "context: {} attrs, {} tags, {} tables",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables()
    );

    let sweep = thread_sweep();
    let policies = [
        ShardPolicy::Fixed(1),
        ShardPolicy::Fixed(2),
        ShardPolicy::Fixed(4),
        ShardPolicy::Auto,
    ];
    let mut lines = Vec::new();
    for &threads in &sweep {
        rayon::set_num_threads(threads);
        let mut oracle_secs = f64::NAN;
        let mut oracle_eff = f64::NAN;
        for &shards in &policies {
            let (secs, build) = timed_build(&bench.lake, args.seed, args.iters, shards);
            let eff = build.effectiveness();
            if shards == ShardPolicy::Fixed(1) {
                oracle_secs = secs;
                oracle_eff = eff;
            }
            let vs_secs = secs / oracle_secs;
            let vs_eff = eff / oracle_eff;
            let knee = build
                .shard_spectrum
                .as_ref()
                .map(|s| s.knee.to_string())
                .unwrap_or_else(|| "null".to_string());
            eprintln!(
                "shards={shards} @ {threads} thread(s): {:.1} ms ({vs_secs:.3}x oracle), \
                 effectiveness {eff:.6} ({vs_eff:.4}x oracle), {} shards built, {} proposals",
                secs * 1e3,
                build.n_shards(),
                build.total_iterations()
            );
            lines.push(format!(
                "    {{ \"threads\": {threads}, \"shards\": \"{shards}\", \"auto_knee\": {knee}, \"seconds\": {secs:.6}, \"effectiveness\": {eff:.9}, \"n_shards_built\": {}, \"iterations\": {}, \"vs_unsharded_seconds\": {vs_secs:.4}, \"vs_unsharded_effectiveness\": {vs_eff:.4} }}",
                build.n_shards(),
                build.total_iterations()
            ));
        }
    }
    rayon::set_num_threads(0); // restore the environment default

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"shard\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"proposal_budget_per_shard\": {},", args.iters);
    let _ = writeln!(json, "  \"cells\": [");
    let _ = writeln!(json, "{}", lines.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_shard.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
