//! Evaluator performance benchmark: emits `BENCH_eval.json`.
//!
//! Measures, on a ~2k-attribute TagCloud lake:
//!
//! 1. **Full-recompute latency** of the evaluator at a sweep of thread
//!    counts (the parallel reach DP over queries);
//! 2. **Incremental-delta throughput** (proposals/second for an
//!    apply → rollback → undo cycle over the tag states) for the cached
//!    parallel path at one thread and at the widest thread count, and for
//!    the seed revision's algorithm (`apply_delta_uncached`) at one thread —
//!    so the caching-only speedup is separated from the threading speedup;
//! 3. The derived speedups.
//!
//! Flags: `--attrs <n>` target attribute count (default 2000), `--seed <n>`,
//! `--proposals <n>` proposals per throughput measurement (default 300),
//! `--out <path>` JSON output path (default `BENCH_eval.json`).

use std::fmt::Write as _;
use std::time::Instant;

use dln_bench::{git_commit, thread_sweep};
use dln_org::{clustering_org, ops, Evaluator, NavConfig, OrgContext, Representatives};
use dln_synth::TagCloudConfig;

struct Args {
    attrs: usize,
    seed: u64,
    proposals: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 2000,
        seed: 42,
        proposals: 300,
        out: "BENCH_eval.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--proposals" => {
                args.proposals = need(i + 1).parse().expect("--proposals: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("flags: --attrs <n> --seed <n> --proposals <n> --out <path>");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Time one full recompute (mean of `reps` runs after one warm-up).
fn time_full_recompute(
    ev: &mut Evaluator,
    ctx: &OrgContext,
    org: &dln_org::Organization,
    reps: usize,
) -> f64 {
    ev.recompute_full(ctx, org);
    let start = Instant::now();
    for _ in 0..reps {
        ev.recompute_full(ctx, org);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Proposals/second for apply → rollback → undo cycles over the tag states.
/// `uncached` selects the seed-baseline algorithm.
fn delta_throughput(
    ev: &mut Evaluator,
    ctx: &OrgContext,
    org: &mut dln_org::Organization,
    n_proposals: usize,
    uncached: bool,
) -> f64 {
    let n_tags = ctx.n_tags() as u32;
    let mut reach = Vec::new();
    let mut applied = 0usize;
    let start = Instant::now();
    let mut t = 0u32;
    while applied < n_proposals {
        let s = org.tag_state(t % n_tags);
        t = t.wrapping_add(1);
        ev.reachability_into(&mut reach);
        let outcome = ops::try_add_parent(org, ctx, s, &reach)
            .or_else(|| ops::try_delete_parent(org, ctx, s, &reach));
        let Some(outcome) = outcome else { continue };
        let (undo, _stats) = if uncached {
            ev.apply_delta_uncached(ctx, org, &outcome.dirty_parents)
        } else {
            ev.apply_delta(ctx, org, &outcome.dirty_parents)
        };
        ev.rollback(undo);
        ops::undo(org, ctx, outcome);
        applied += 1;
    }
    applied as f64 / start.elapsed().as_secs_f64()
}

/// The seed revision's 4-accumulator dot kernel, kept verbatim as the A/B
/// baseline for the 8-lane widening of `dln_embed::dot`.
fn dot_four_lane(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let chunks = n / 4 * 4;
    let mut i = 0;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Seconds for `passes` full mat-vec passes of `kernel` over the context's
/// attribute-unit matrix (the evaluator's dominant inner loop shape).
fn time_kernel(
    ctx: &OrgContext,
    query: &[f32],
    passes: usize,
    kernel: fn(&[f32], &[f32]) -> f32,
) -> f64 {
    let mut sink = 0.0f32;
    let start = Instant::now();
    for _ in 0..passes {
        for a in 0..ctx.n_attrs() as u32 {
            sink += kernel(ctx.attr_unit(a), query);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    secs
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    if ctx.n_tags() == 0 || ctx.n_attrs() == 0 {
        eprintln!("error: --attrs {} produced an empty lake", args.attrs);
        std::process::exit(2);
    }
    let mut org = clustering_org(&ctx);
    let reps = Representatives::exact(&ctx);
    eprintln!(
        "context: {} attrs, {} tags, {} tables; organization: {} slots",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        org.n_slots()
    );

    let mut ev = Evaluator::new(&ctx, &org, NavConfig::default(), &reps);

    // 1. Full-recompute latency across thread counts (honors DLN_THREADS).
    let sweep = thread_sweep();
    let mut full_lines = Vec::new();
    let mut full_t1 = f64::NAN;
    let mut full_best = f64::INFINITY;
    for &threads in &sweep {
        rayon::set_num_threads(threads);
        let secs = time_full_recompute(&mut ev, &ctx, &org, 3);
        eprintln!("full recompute @ {threads} thread(s): {:.1} ms", secs * 1e3);
        if threads == 1 {
            full_t1 = secs;
        }
        full_best = full_best.min(secs);
        full_lines.push(format!(
            "    {{ \"threads\": {threads}, \"seconds\": {secs:.6} }}"
        ));
    }

    // 2. Delta throughput: cached @1, cached @max sweep width, baseline @1.
    rayon::set_num_threads(1);
    let cached_t1 = delta_throughput(&mut ev, &ctx, &mut org, args.proposals, false);
    eprintln!("delta cached @ 1 thread: {cached_t1:.1} proposals/s");
    let baseline_t1 = delta_throughput(&mut ev, &ctx, &mut org, args.proposals, true);
    eprintln!("delta seed baseline @ 1 thread: {baseline_t1:.1} proposals/s");
    let max_threads = *sweep.last().unwrap_or(&1);
    // Only re-measure at the sweep's widest width when it differs from 1,
    // so the JSON never carries a duplicate "cached_threads1" key.
    let cached_tmax = if max_threads > 1 {
        rayon::set_num_threads(max_threads);
        let t = delta_throughput(&mut ev, &ctx, &mut org, args.proposals, false);
        eprintln!("delta cached @ {max_threads} thread(s): {t:.1} proposals/s");
        Some(t)
    } else {
        None
    };
    rayon::set_num_threads(0); // restore the environment default

    // 3. Dot-kernel A/B: the seed 4-lane kernel vs the widened 8-lane
    //    `dln_embed::dot`, on mat-vec passes over the attribute-unit matrix.
    let query: Vec<f32> = ctx.attr_unit(0).to_vec();
    let passes = (2_000_000 / ctx.n_attrs()).max(16);
    time_kernel(&ctx, &query, passes / 4, dot_four_lane); // warm-up
    let four_lane_secs = time_kernel(&ctx, &query, passes, dot_four_lane);
    let eight_lane_secs = time_kernel(&ctx, &query, passes, dln_embed::dot);
    let kernel_speedup = four_lane_secs / eight_lane_secs;
    eprintln!(
        "dot kernel ({} passes x {} rows, dim {}): 4-lane {:.1} ms, 8-lane {:.1} ms ({kernel_speedup:.2}x)",
        passes,
        ctx.n_attrs(),
        ctx.dim(),
        four_lane_secs * 1e3,
        eight_lane_secs * 1e3
    );

    let parallel_speedup = full_t1 / full_best;
    let cache_speedup = cached_t1 / baseline_t1;
    eprintln!(
        "parallel full-recompute speedup: {parallel_speedup:.2}x; \
         single-thread caching speedup: {cache_speedup:.2}x"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"evaluator\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"organization\": {{ \"n_slots\": {}, \"n_queries\": {} }},",
        org.n_slots(),
        ev.n_queries()
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"full_recompute\": [");
    let _ = writeln!(json, "{}", full_lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"delta_proposals_per_sec\": {{");
    let _ = writeln!(json, "    \"cached_threads1\": {cached_t1:.2},");
    if let Some(t) = cached_tmax {
        let _ = writeln!(json, "    \"cached_threads{max_threads}\": {t:.2},");
    }
    let _ = writeln!(json, "    \"seed_baseline_threads1\": {baseline_t1:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"dot_kernel\": {{");
    let _ = writeln!(
        json,
        "    \"rows\": {}, \"dim\": {}, \"passes\": {passes},",
        ctx.n_attrs(),
        ctx.dim()
    );
    let _ = writeln!(json, "    \"four_lane_seconds\": {four_lane_secs:.6},");
    let _ = writeln!(json, "    \"eight_lane_seconds\": {eight_lane_secs:.6},");
    let _ = writeln!(json, "    \"speedup\": {kernel_speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(
        json,
        "    \"full_recompute_parallel\": {parallel_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"delta_caching_single_thread\": {cache_speedup:.3}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_eval.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
