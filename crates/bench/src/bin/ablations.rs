//! **Ablations** — the design choices DESIGN.md calls out, each isolated on
//! the TagCloud benchmark:
//!
//! 1. **γ (Eq 1 decisiveness)** — how the transition temperature moves the
//!    flat/clustering gap and the optimizer's headroom;
//! 2. **initialization** — flat vs random vs bisecting (balanced divisive)
//!    vs agglomerative clustering, before and after local search;
//! 3. **representative fraction** — evaluation accuracy and search cost vs
//!    the §3.4 approximation level;
//! 4. **acceptance sharpening β** — the paper's literal Eq 9 (β = 1)
//!    against the sharpened default.

use dln_bench::{print_table, write_csv, ExpArgs};
use dln_org::{
    bisecting_org, clustering_org, flat_org, random_org, search, Evaluator, NavConfig, OrgContext,
    Organization, Representatives, SearchConfig,
};
use dln_synth::TagCloudConfig;

fn exact_eff(ctx: &OrgContext, org: &Organization, nav: NavConfig) -> f64 {
    let reps = Representatives::exact(ctx);
    Evaluator::new(ctx, org, nav, &reps).effectiveness()
}

fn main() {
    let args = ExpArgs::parse(0.3);
    let scale = args.effective_scale();
    let bench = TagCloudConfig {
        seed: args.seed,
        ..TagCloudConfig::paper().scaled(scale)
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    eprintln!(
        "TagCloud: {} tags / {} attrs (scale {scale})",
        ctx.n_tags(),
        ctx.n_attrs()
    );

    // --- 1. Gamma sweep. ---
    println!("\n[1] γ sweep (Eq 1 decisiveness): effectiveness of flat vs clustering");
    let mut rows = Vec::new();
    let mut gcols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for gamma in [5.0f32, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let nav = NavConfig { gamma };
        let ef = exact_eff(&ctx, &flat_org(&ctx), nav);
        let ec = exact_eff(&ctx, &clustering_org(&ctx), nav);
        rows.push(vec![
            format!("{gamma}"),
            format!("{ef:.4}"),
            format!("{ec:.4}"),
            format!("{:.1}x", ec / ef.max(1e-12)),
        ]);
        gcols[0].push(gamma as f64);
        gcols[1].push(ef);
        gcols[2].push(ec);
    }
    print_table(&["gamma", "flat", "clustering", "ratio"], &rows);

    // --- 2. Initialization ablation. ---
    println!(
        "\n[2] initialization: effectiveness before → after local search (γ = {})",
        args.gamma
    );
    let nav = NavConfig { gamma: args.gamma };
    let base_cfg = SearchConfig {
        nav,
        rep_fraction: 0.1,
        seed: args.seed,
        plateau_iters: 200,
        max_iters: 2_000,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let inits: Vec<(&str, Organization)> = vec![
        ("flat", flat_org(&ctx)),
        ("random", random_org(&ctx, args.seed)),
        ("bisecting", bisecting_org(&ctx, args.seed)),
        ("clustering", clustering_org(&ctx)),
    ];
    for (name, init) in inits {
        let before = exact_eff(&ctx, &init, nav);
        let mut org = init;
        let stats = search::optimize(&ctx, &mut org, &base_cfg);
        let after = exact_eff(&ctx, &org, nav);
        rows.push(vec![
            name.to_string(),
            format!("{before:.4}"),
            format!("{after:.4}"),
            format!("{}", stats.iterations),
            format!("{}", stats.accepted),
        ]);
    }
    print_table(&["init", "before", "after", "proposals", "accepted"], &rows);

    // --- 3. Representative fraction. ---
    println!("\n[3] representative fraction (§3.4): search cost vs result quality");
    let mut rows = Vec::new();
    for frac in [1.0f64, 0.25, 0.1, 0.05] {
        let mut org = clustering_org(&ctx);
        let cfg = SearchConfig {
            rep_fraction: frac,
            ..base_cfg.clone()
        };
        let t0 = std::time::Instant::now();
        let stats = search::optimize(&ctx, &mut org, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let eff = exact_eff(&ctx, &org, nav);
        rows.push(vec![
            format!("{frac}"),
            format!("{}", stats.n_queries),
            format!("{secs:.2}"),
            format!("{eff:.4}"),
        ]);
    }
    print_table(
        &["fraction", "queries", "seconds", "final eff (exact)"],
        &rows,
    );

    // --- 4. Acceptance sharpening. ---
    println!(
        "\n[4] acceptance β (Eq 9 sharpening): random walk vs directed search, from a random init"
    );
    let mut rows = Vec::new();
    for beta in [1.0f64, 50.0, 400.0, f64::INFINITY] {
        let mut org = random_org(&ctx, args.seed);
        let cfg = SearchConfig {
            acceptance_power: if beta.is_finite() { beta } else { 1e12 },
            ..base_cfg.clone()
        };
        let stats = search::optimize(&ctx, &mut org, &cfg);
        rows.push(vec![
            if beta.is_finite() {
                format!("{beta}")
            } else {
                "greedy".into()
            },
            format!("{:.4}", stats.initial_effectiveness),
            format!("{:.4}", stats.final_effectiveness),
            format!("{}", stats.accepted),
        ]);
    }
    print_table(&["beta", "initial", "final", "accepted"], &rows);
    println!("\n(β = 1 is the paper's literal Eq 9; 'greedy' rejects every degradation)");

    let named: Vec<(&str, &[f64])> = vec![
        ("gamma", &gcols[0]),
        ("flat_eff", &gcols[1]),
        ("clustering_eff", &gcols[2]),
    ];
    let path = write_csv(&args.out, "ablations_gamma.csv", &named).expect("csv written");
    println!("γ sweep written to {}", path.display());
}
