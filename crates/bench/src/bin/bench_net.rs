//! Network front-end benchmark: emits `BENCH_net.json`.
//!
//! The question the reactor exists to answer: what does it cost to keep
//! *thousands of mostly-idle* navigation sessions live on a handful of
//! server threads? A thread-per-connection design pays a stack per idle
//! user; `dln-net` pays one registered descriptor. This benchmark
//! measures that claim end to end, across two processes — the server in
//! the parent, the client fleet in a child re-exec of this binary — so
//! each side pays one descriptor per connection (a single process would
//! pay two and halve the fleet the fd limit allows), and the
//! resident-memory number is the *server's alone*:
//!
//! 1. Raise `RLIMIT_NOFILE` as far as permitted, start a [`NetServer`]
//!    with **1 reactor + 3 workers = 4 server threads**, and spawn the
//!    fleet child, which connects `--conns` blocking clients, each
//!    opening a wire session.
//! 2. Record the server-process resident-memory delta per idle session.
//! 3. Drive "mostly idle" traffic: each round the child steps an
//!    `--active-frac` sample of the fleet while everyone else sits idle,
//!    recording per-step wire latency (frame → dispatch → frame → parse).
//! 4. Mid-benchmark, `publish_shard` a republish under the live fleet,
//!    then step **every** session across the epoch and audit
//!    `validate_live_paths` — the acceptance bar is zero torn sessions.
//!
//! Reports p50/p95/p99 wire step latency for the quiet and post-publish
//! regimes (comparable to `BENCH_serve.json`'s cells), bytes of resident
//! server memory per idle session, and the publish audit. Flags:
//! `--attrs <n>` (default 600), `--conns <n>` (default 10000),
//! `--rounds <n>` (default 20), `--active-frac <f>` (default 0.01),
//! `--seed <n>`, `--out <path>`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dln_bench::git_commit;
use dln_net::{Client, NetConfig, NetServer};
use dln_org::eval::NavConfig;
use dln_org::{clustering_org, OrgContext};
use dln_serve::{
    NavService, ServeConfig, SessionId, StepAction, StepRequest, StepResponse, WallClock,
};
use dln_synth::TagCloudConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Args {
    attrs: usize,
    conns: usize,
    rounds: usize,
    active_frac: f64,
    seed: u64,
    out: String,
    /// Internal: run as the client-fleet child against this address.
    fleet_child: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 600,
        conns: 10_000,
        rounds: 20,
        active_frac: 0.01,
        seed: 42,
        out: "BENCH_net.json".to_string(),
        fleet_child: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--conns" => {
                args.conns = need(i + 1).parse().expect("--conns: integer");
                i += 2;
            }
            "--rounds" => {
                args.rounds = need(i + 1).parse().expect("--rounds: integer");
                i += 2;
            }
            "--active-frac" => {
                args.active_frac = need(i + 1).parse().expect("--active-frac: float");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--fleet-child" => {
                args.fleet_child = Some(need(i + 1).to_string());
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --attrs <n> --conns <n> --rounds <n> --active-frac <f> \
                     --seed <n> --out <path>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

// -- file-descriptor budget -------------------------------------------------

mod rlimit_ffi {
    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }
    extern "C" {
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: i32 = 8;
}

/// Make room for `wanted` descriptors, raising the hard limit when the
/// process may (root). Returns the usable soft limit afterwards.
fn ensure_fd_budget(wanted: u64) -> u64 {
    let mut cur = rlimit_ffi::Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `cur` is a valid out-parameter for the duration of the call.
    if unsafe { rlimit_ffi::getrlimit(rlimit_ffi::RLIMIT_NOFILE, &mut cur) } != 0 {
        return 1024;
    }
    if cur.rlim_cur >= wanted {
        return cur.rlim_cur;
    }
    let attempt = rlimit_ffi::Rlimit {
        rlim_cur: wanted,
        rlim_max: wanted.max(cur.rlim_max),
    };
    // SAFETY: a plain struct-by-pointer syscall; failure is handled below.
    if unsafe { rlimit_ffi::setrlimit(rlimit_ffi::RLIMIT_NOFILE, &attempt) } == 0 {
        return wanted;
    }
    // Could not raise the hard limit (no CAP_SYS_RESOURCE): take the
    // ceiling we have.
    let attempt = rlimit_ffi::Rlimit {
        rlim_cur: cur.rlim_max,
        rlim_max: cur.rlim_max,
    };
    // SAFETY: as above.
    if unsafe { rlimit_ffi::setrlimit(rlimit_ffi::RLIMIT_NOFILE, &attempt) } == 0 {
        return cur.rlim_max;
    }
    cur.rlim_cur
}

/// Resident set size in bytes, from `/proc/self/status` (Linux). Returns
/// 0 where unavailable; the JSON then reports 0 rather than lying.
fn resident_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One wire step with a deterministic walk policy: descend into a random
/// child, backtrack from leaves.
fn wire_step(
    client: &mut Client,
    sid: SessionId,
    view: &mut Option<StepResponse>,
    query: &[f32],
    rng: &mut StdRng,
) -> f64 {
    let action = match view {
        Some(v) if !v.children.is_empty() && rng.random::<f64>() > 0.25 => {
            let i = rng.random_range(0..v.children.len());
            StepAction::Descend(v.children[i].state)
        }
        Some(_) => StepAction::Backtrack,
        None => StepAction::Stay,
    };
    let req = StepRequest {
        action,
        query: Some(query.to_vec()),
        deadline_ms: None,
        list_tables: false,
    };
    let start = Instant::now();
    let out = client.step(sid, &req);
    let lat = start.elapsed().as_secs_f64();
    // A migration can invalidate the chosen child: refresh and go on.
    *view = out.ok();
    lat
}

// -- the client-fleet child -------------------------------------------------
//
// Text protocol over the child's stdio, one line each way per phase:
//   parent → child:  QUIET | SWEEP | CLOSE
//   child  → parent: READY <conns> <query-dim>   (after the fleet is up)
//                    DONE <wall_secs> <lat lat …> (after QUIET / SWEEP)
// Latencies travel as `f64::to_bits` hex so the parent recovers them
// exactly.

/// Run the fleet against `addr`, then exit. Never returns.
fn run_fleet_child(addr: &str, args: &Args) -> ! {
    let fd_budget = ensure_fd_budget(args.conns as u64 + 512);
    let conns = args.conns.min((fd_budget.saturating_sub(512)) as usize);
    let mut fleet: Vec<(Client, SessionId, Option<StepResponse>)> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut c = Client::connect(addr)
            .unwrap_or_else(|e| panic!("fleet client {i} failed to connect: {e}"));
        let sid = c
            .open_keyed(args.seed ^ i as u64)
            .unwrap_or_else(|e| panic!("fleet client {i} failed to open: {e}"));
        fleet.push((c, sid, None));
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "READY {conns}").expect("child stdout");
    out.flush().expect("child stdout flush");

    // The walk query lives in the parent's lake (it must match the
    // embedding dimension); the parent sends it as the first line.
    let stdin = std::io::stdin();
    let mut stdin = stdin.lock();
    let mut qline = String::new();
    stdin.read_line(&mut qline).expect("child stdin QUERY");
    let query: Vec<f32> = qline
        .trim()
        .strip_prefix("QUERY ")
        .unwrap_or_else(|| panic!("fleet child expected QUERY, got {qline:?}"))
        .split_whitespace()
        .map(|h| f32::from_bits(u32::from_str_radix(h, 16).expect("hex query")))
        .collect();

    let mut rng = StdRng::seed_from_u64(args.seed);
    let per_round = ((conns as f64 * args.active_frac).ceil() as usize).clamp(1, conns);
    for line in stdin.lines() {
        let line = line.expect("child stdin");
        let mut lat: Vec<f64> = Vec::new();
        let wall = Instant::now();
        match line.trim() {
            "QUIET" => {
                for _ in 0..args.rounds {
                    for _ in 0..per_round {
                        let i = rng.random_range(0..fleet.len());
                        let (client, sid, view) = &mut fleet[i];
                        lat.push(wire_step(client, *sid, view, &query, &mut rng));
                    }
                }
            }
            "SWEEP" => {
                for (client, sid, view) in fleet.iter_mut() {
                    lat.push(wire_step(client, *sid, view, &query, &mut rng));
                }
            }
            "CLOSE" => {
                for (client, sid, _) in fleet.iter_mut() {
                    let _ = client.close(*sid);
                }
                break;
            }
            other => panic!("fleet child: unknown command {other:?}"),
        }
        let wall_secs = wall.elapsed().as_secs_f64();
        let mut msg = format!("DONE {wall_secs:.9}");
        for l in &lat {
            let _ = write!(msg, " {:016x}", l.to_bits());
        }
        writeln!(out, "{msg}").expect("child stdout");
        out.flush().expect("child stdout flush");
    }
    std::process::exit(0);
}

/// Parse a child `DONE` line back into (wall_secs, latencies).
fn parse_done(line: &str) -> (f64, Vec<f64>) {
    let mut parts = line.split_whitespace();
    assert_eq!(parts.next(), Some("DONE"), "fleet child said: {line:?}");
    let wall: f64 = parts
        .next()
        .expect("DONE wall_secs")
        .parse()
        .expect("DONE wall_secs parses");
    let lat = parts
        .map(|h| f64::from_bits(u64::from_str_radix(h, 16).expect("hex latency")))
        .collect();
    (wall, lat)
}

struct Cell {
    regime: &'static str,
    steps: usize,
    p50: f64,
    p95: f64,
    p99: f64,
    throughput: f64,
}

fn cell(regime: &'static str, mut lat: Vec<f64>, wall_secs: f64) -> Cell {
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Cell {
        regime,
        steps: lat.len(),
        p50: percentile(&lat, 0.50),
        p95: percentile(&lat, 0.95),
        p99: percentile(&lat, 0.99),
        throughput: lat.len() as f64 / wall_secs.max(1e-9),
    }
}

fn main() {
    let args = parse_args();
    if let Some(addr) = &args.fleet_child {
        run_fleet_child(addr, &args);
    }
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // One server-side fd per connection, plus listener/poller/pipes slack.
    let fd_budget = ensure_fd_budget(args.conns as u64 + 512);
    let conns = args.conns.min((fd_budget.saturating_sub(512)) as usize);
    if conns < args.conns {
        eprintln!(
            "fd limit {fd_budget}: scaling --conns {} down to {conns}",
            args.conns
        );
    }

    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    eprintln!(
        "context: {} attrs, {} tags, {} tables",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables()
    );

    let serve_cfg = ServeConfig {
        max_sessions: conns * 2,
        max_concurrency: 64,
        queue_depth: 128,
        deadline_ms: None,
        ..ServeConfig::default()
    };
    let svc = Arc::new(NavService::new(
        ctx.clone(),
        clustering_org(&ctx),
        NavConfig::default(),
        serve_cfg,
    ));
    // 1 reactor + 3 workers = 4 server threads, the ISSUE's budget.
    let net_cfg = NetConfig {
        max_conns: conns + 64,
        workers: 3,
        ..NetConfig::default()
    };
    let server_threads = 1 + net_cfg.workers;
    let server = NetServer::start(Arc::clone(&svc), net_cfg, Arc::new(WallClock::new()))
        .expect("server starts");
    let addr = server.local_addr();

    // -- spawn the fleet child; one wire session per connection ------------
    let rss_before = resident_bytes();
    eprintln!("spawning fleet child: {conns} clients against {addr} ...");
    let t_connect = Instant::now();
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("--fleet-child")
        .arg(addr.to_string())
        .args(["--conns", &conns.to_string()])
        .args(["--rounds", &args.rounds.to_string()])
        .args(["--active-frac", &args.active_frac.to_string()])
        .args(["--seed", &args.seed.to_string()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn fleet child");
    let mut child_in = child.stdin.take().expect("child stdin");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    child_out.read_line(&mut line).expect("child READY");
    let fleet_conns: usize = line
        .trim()
        .strip_prefix("READY ")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("fleet child said: {line:?}"));
    let connect_secs = t_connect.elapsed().as_secs_f64();
    let rss_idle = resident_bytes();
    let idle_bytes_per_session = rss_idle.saturating_sub(rss_before) / fleet_conns.max(1) as u64;
    eprintln!(
        "fleet of {fleet_conns} up in {connect_secs:.2}s; \
         idle server RSS delta {idle_bytes_per_session} bytes/session"
    );

    // Hand the child a walk query from the lake's embedding space.
    let query: Vec<f32> = ctx.attr(0).unit_topic.clone();
    let mut qmsg = String::from("QUERY");
    for x in &query {
        let _ = write!(qmsg, " {:08x}", x.to_bits());
    }
    writeln!(child_in, "{qmsg}").expect("command child");

    // -- quiet regime: mostly-idle traffic --------------------------------
    writeln!(child_in, "QUIET").expect("command child");
    child_in.flush().expect("flush command");
    line.clear();
    child_out.read_line(&mut line).expect("child QUIET done");
    let (quiet_secs, quiet_lat) = parse_done(&line);
    let quiet = cell("wire_quiet", quiet_lat, quiet_secs);

    // -- mid-benchmark shard republish under the live fleet ---------------
    // The regenerated clustering org is structurally identical, published
    // as a shard-scoped swap over the first slots: sessions walking those
    // slots replay, everyone else migrates in place — either way the
    // audit below must find zero torn paths.
    let changed: Vec<u32> = (0..8u32.min(ctx.n_attrs() as u32)).collect();
    let epoch = svc.publish_shard(
        Arc::new(ctx.clone()),
        clustering_org(&ctx),
        NavConfig::default(),
        changed,
    );
    eprintln!("published shard epoch {epoch} under {fleet_conns} live wire sessions");

    // Step EVERY session across the epoch, then audit.
    writeln!(child_in, "SWEEP").expect("command child");
    child_in.flush().expect("flush command");
    line.clear();
    child_out.read_line(&mut line).expect("child SWEEP done");
    let (post_secs, post_lat) = parse_done(&line);
    let post = cell("wire_post_publish", post_lat, post_secs);
    let (checked, invalid) = svc.validate_live_paths();
    eprintln!("post-publish audit: {checked} live paths checked, {invalid} invalid");
    assert_eq!(
        invalid, 0,
        "a republish tore {invalid}/{checked} wire sessions"
    );

    // Close the fleet (finalizes the walks into the log), then the server.
    writeln!(child_in, "CLOSE").expect("command child");
    child_in.flush().expect("flush command");
    let status = child.wait().expect("fleet child exit");
    assert!(status.success(), "fleet child failed: {status}");

    let stats = server.stats();
    let (accepted, requests, dedup_hits, shed) = (
        stats.accepted.load(Ordering::Relaxed),
        stats.requests.load(Ordering::Relaxed),
        stats.dedup_hits.load(Ordering::Relaxed),
        stats.shed_accepts.load(Ordering::Relaxed),
    );
    server.shutdown();

    for c in [&quiet, &post] {
        eprintln!(
            "{:<18} steps={}: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, {:.0} steps/s",
            c.regime,
            c.steps,
            c.p50 * 1e3,
            c.p95 * 1e3,
            c.p99 * 1e3,
            c.throughput
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"net\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"server_threads\": {server_threads},");
    let _ = writeln!(json, "  \"concurrent_conns\": {fleet_conns},");
    let _ = writeln!(json, "  \"active_frac\": {},", args.active_frac);
    let _ = writeln!(json, "  \"fleet_connect_seconds\": {connect_secs:.3},");
    let _ = writeln!(
        json,
        "  \"idle_rss_bytes_per_session\": {idle_bytes_per_session},"
    );
    let _ = writeln!(
        json,
        "  \"idle_rss_note\": \"server-process VmRSS delta after the fleet opened, divided by sessions; the client fleet lives in a child process\","
    );
    let _ = writeln!(json, "  \"cells\": [");
    let lines: Vec<String> = [&quiet, &post]
        .iter()
        .map(|c| {
            format!(
                "    {{ \"regime\": \"{}\", \"steps\": {}, \"p50_seconds\": {:.9}, \"p95_seconds\": {:.9}, \"p99_seconds\": {:.9}, \"steps_per_second\": {:.1} }}",
                c.regime, c.steps, c.p50, c.p95, c.p99, c.throughput
            )
        })
        .collect();
    let _ = writeln!(json, "{}", lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"publish\": {{ \"epoch\": {epoch}, \"live_paths_checked\": {checked}, \"invalid_paths\": {invalid} }},"
    );
    let _ = writeln!(
        json,
        "  \"server\": {{ \"accepted\": {accepted}, \"requests\": {requests}, \"dedup_hits\": {dedup_hits}, \"shed_accepts\": {shed} }}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).expect("write BENCH_net.json");
    println!("{json}");
}
