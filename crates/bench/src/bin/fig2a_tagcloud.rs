//! **Figure 2(a)** — Success probability of organizations on the TagCloud
//! benchmark (paper §4.3.1).
//!
//! Reproduced series, each a per-table success-probability curve sorted
//! ascending (θ = 0.9):
//!
//! * `baseline`       — the flat tag organization (paper avg ≈ 0.016);
//! * `clustering`     — agglomerative hierarchy, branching factor 2
//!   (≈ 10× the baseline);
//! * `1-dim` … `4-dim` — local-search-optimized organizations, tags
//!   partitioned by k-medoids (1-dim improves clustering ≈ 3×; 2-dim avg
//!   ≈ 0.426; more dimensions keep improving);
//! * `2-dim approx`   — 2-dim built with 10% attribute representatives
//!   (should be indistinguishable from `2-dim`);
//! * `enriched 2-dim` — 2-dim on the enriched benchmark (each attribute
//!   gains its second-closest tag), lifting the low-success tail.
//!
//! Run `--full` for the paper-scale benchmark (365 tags / 2,651 attrs);
//! the default scale is 40% for a fast turnaround.

use dln_bench::{curve_summary, print_table, write_csv, ExpArgs};
use dln_org::{
    success::DEFAULT_THETA, MultiDimConfig, MultiDimOrganization, NavConfig, OrganizerBuilder,
    SearchConfig,
};
use dln_synth::TagCloudConfig;

fn main() {
    let args = ExpArgs::parse(0.4);
    let scale = args.effective_scale();
    let cfg = TagCloudConfig {
        seed: args.seed,
        ..TagCloudConfig::paper().scaled(scale)
    };
    eprintln!(
        "generating TagCloud: {} tags, {} attrs target (scale {scale})",
        cfg.n_tags, cfg.n_attrs_target
    );
    let bench = cfg.generate();
    let lake = &bench.lake;
    eprintln!(
        "lake: {} tables / {} attrs / {} tags",
        lake.n_tables(),
        lake.n_attrs(),
        lake.n_tags()
    );
    let nav = NavConfig { gamma: args.gamma };
    let search = SearchConfig {
        nav,
        seed: args.seed,
        ..Default::default()
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    let mut record = |name: &str, values: Vec<f64>, secs: f64| {
        eprintln!("{name}: {} ({secs:.1}s)", curve_summary(&values));
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.4}",
                values.iter().sum::<f64>() / values.len().max(1) as f64
            ),
            format!("{secs:.1}"),
        ]);
        columns.push((name.to_string(), values));
    };

    // Baseline: flat tag organization.
    let t0 = std::time::Instant::now();
    let flat = OrganizerBuilder::new(lake)
        .search_config(search.clone())
        .build_flat();
    let curve = flat.success_curve(lake, DEFAULT_THETA);
    record("baseline", curve.values(), t0.elapsed().as_secs_f64());

    // Clustering (branching factor 2, no optimization).
    let t0 = std::time::Instant::now();
    let clus = OrganizerBuilder::new(lake)
        .search_config(search.clone())
        .build_clustering();
    let curve = clus.success_curve(lake, DEFAULT_THETA);
    record("clustering", curve.values(), t0.elapsed().as_secs_f64());

    // N-dimensional optimized organizations.
    for n_dims in 1..=4usize {
        let t0 = std::time::Instant::now();
        let md = MultiDimOrganization::build(
            lake,
            &MultiDimConfig {
                n_dims,
                search: search.clone(),
                partition_seed: args.seed ^ 0xD13,
                parallel: true,
            },
        );
        let curve = md.success_curve(lake, DEFAULT_THETA);
        record(
            &format!("{n_dims}-dim"),
            curve.values(),
            t0.elapsed().as_secs_f64(),
        );
    }

    // 2-dim with the 10% representative approximation (§3.4).
    let t0 = std::time::Instant::now();
    let md_approx = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 2,
            search: SearchConfig {
                rep_fraction: 0.1,
                ..search.clone()
            },
            partition_seed: args.seed ^ 0xD13,
            parallel: true,
        },
    );
    let curve = md_approx.success_curve(lake, DEFAULT_THETA);
    record("2-dim approx", curve.values(), t0.elapsed().as_secs_f64());

    // Ablation: the local search from an *uninformed* (random binary)
    // initial organization. In our synthetic embedding space the informed
    // dendrogram is already near a local optimum, so this series is where
    // the optimizer's contribution is visible (see EXPERIMENTS.md).
    let t0 = std::time::Instant::now();
    let ctx = dln_org::OrgContext::full(lake);
    let rand_init = dln_org::random_org(&ctx, args.seed ^ 0xAB1E);
    {
        let built = dln_org::builder::BuiltOrganization {
            organization: rand_init.clone(),
            ctx: ctx.clone(),
            nav,
            search_stats: None,
        };
        let curve = built.success_curve(lake, DEFAULT_THETA);
        record("random init", curve.values(), t0.elapsed().as_secs_f64());
    }
    let t0 = std::time::Instant::now();
    {
        let mut org = rand_init;
        let stats = dln_org::search::optimize(&ctx, &mut org, &search);
        let built = dln_org::builder::BuiltOrganization {
            organization: org,
            ctx: ctx.clone(),
            nav,
            search_stats: Some(stats),
        };
        let curve = built.success_curve(lake, DEFAULT_THETA);
        record(
            "1-dim (random init)",
            curve.values(),
            t0.elapsed().as_secs_f64(),
        );
    }

    // Enriched TagCloud (second-closest tag added to every attribute).
    let t0 = std::time::Instant::now();
    let enriched = bench.enrich();
    let md_enriched = MultiDimOrganization::build(
        &enriched.lake,
        &MultiDimConfig {
            n_dims: 2,
            search: search.clone(),
            partition_seed: args.seed ^ 0xD13,
            parallel: true,
        },
    );
    let curve = md_enriched.success_curve(&enriched.lake, DEFAULT_THETA);
    record("enriched 2-dim", curve.values(), t0.elapsed().as_secs_f64());

    println!("\nFigure 2(a) — success probability on TagCloud (sorted per-table curves in CSV)");
    println!(
        "paper shape: baseline(0.016) << clustering(~10x) << 1-dim(~3x clustering) < 2-dim(0.426) <= 3-dim <= 4-dim; enriched lifts the tail\n"
    );
    print_table(&["organization", "avg success", "build+eval s"], &rows);
    let cols: Vec<(&str, &[f64])> = columns
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    let path = write_csv(&args.out, "fig2a_tagcloud.csv", &cols).expect("csv written");
    println!("\ncurves written to {}", path.display());
}
