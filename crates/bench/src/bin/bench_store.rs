//! Cold-start benchmark for the persistent organization store: emits
//! `BENCH_store.json`.
//!
//! The question the store exists to answer: how long until a freshly
//! started process serves its *first* navigation step? Two paths race:
//!
//! 1. **CSV rebuild** — the full pipeline a process without a store file
//!    must run: load the `.vec` embedding model, ingest every CSV (+
//!    `.tags` sidecars), build the [`OrgContext`], run agglomerative
//!    clustering, stand up a [`NavService`], serve one step.
//! 2. **Mapped open** — [`NavService::open_path`] on the store file the
//!    first process saved: validate checksums, mmap, serve one step.
//!
//! The benchmark materializes a synthetic-but-real *on-disk* lake (CSV
//! files with header rows, `.tags` sidecars, a fastText-style `.vec`
//! model) in a temp directory, so path 1 pays every cost a real cold
//! start pays, including file IO and embedding lookups. It then checks —
//! state by state, bit by bit — that the mapped service ranks children
//! identically to the in-memory one, and reports the speedup.
//!
//! Flags: `--tables <n>` (default 300), `--cols <n>` per table (default
//! 6), `--rows <n>` per table (default 200), `--dim <n>` (default 32),
//! `--seed <n>`, `--out <path>` (default `BENCH_store.json`).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dln_bench::git_commit;
use dln_embed::VecFileModel;
use dln_lake::csv::{load_dir, CsvOptions};
use dln_org::eval::NavConfig;
use dln_org::{clustering_org, OrgContext};
use dln_serve::{NavService, ServeConfig, StepAction, StepRequest, StepResponse};

struct Args {
    tables: usize,
    cols: usize,
    rows: usize,
    dim: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        tables: 300,
        cols: 6,
        rows: 200,
        dim: 32,
        seed: 42,
        out: "BENCH_store.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--tables" => {
                args.tables = need(i + 1).parse().expect("--tables: integer");
                i += 2;
            }
            "--cols" => {
                args.cols = need(i + 1).parse().expect("--cols: integer");
                i += 2;
            }
            "--rows" => {
                args.rows = need(i + 1).parse().expect("--rows: integer");
                i += 2;
            }
            "--dim" => {
                args.dim = need(i + 1).parse().expect("--dim: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --tables <n> --cols <n> --rows <n> --dim <n> --seed <n> --out <path>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Splitmix-style deterministic generator (no `rand` dependency needed
/// for corpus synthesis; the corpus must be a pure function of the seed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z ^= z >> 33;
        z = z.wrapping_mul(0xff51afd7ed558ccd);
        z ^= z >> 33;
        z
    }

    /// Uniform in [-1, 1).
    fn unit(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const WORDS_PER_TOPIC: usize = 30;

/// Write a fastText-style on-disk lake: one `.vec` model, one CSV + one
/// `.tags` sidecar per table. Word vectors cluster around per-topic
/// centers so the embedded attributes have real topical structure for the
/// clustering to find. Returns (corpus dir, vec path, topic count).
fn write_corpus(root: &Path, args: &Args) -> (PathBuf, PathBuf, usize) {
    let dir = root.join("lake");
    std::fs::create_dir_all(&dir).expect("creating corpus dir");
    let topics = (args.tables * args.cols / 12).clamp(8, 256);
    let mut rng = Lcg(args.seed ^ 0x9e3779b97f4a7c15);

    // Topic centers, then per-word jittered vectors around them.
    let mut centers = vec![0f32; topics * args.dim];
    for c in centers.iter_mut() {
        *c = rng.unit();
    }
    let vec_path = root.join("model.vec");
    let mut vec_text = String::new();
    for t in 0..topics {
        for w in 0..WORDS_PER_TOPIC {
            let _ = write!(vec_text, "t{t}w{w}");
            for d in 0..args.dim {
                let v = centers[t * args.dim + d] + 0.25 * rng.unit();
                let _ = write!(vec_text, " {v}");
            }
            vec_text.push('\n');
        }
    }
    std::fs::write(&vec_path, vec_text).expect("writing .vec model");

    // Tables: each column samples one topic's vocabulary; tags come from
    // small shared pools so tables overlap in tag space (that overlap is
    // what gives the organization non-trivial structure).
    for ti in 0..args.tables {
        let mut csv = String::new();
        let col_topics: Vec<usize> = (0..args.cols)
            .map(|c| (ti * 7 + c * 3 + (ti / 11)) % topics)
            .collect();
        let header: Vec<String> = (0..args.cols).map(|c| format!("field_{c}")).collect();
        csv.push_str(&header.join(","));
        csv.push('\n');
        for _ in 0..args.rows {
            let row: Vec<String> = col_topics
                .iter()
                .map(|&t| format!("t{t}w{}", rng.below(WORDS_PER_TOPIC)))
                .collect();
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        std::fs::write(dir.join(format!("table_{ti:04}.csv")), csv).expect("writing csv");
        let tags = format!(
            "domain{}\ntheme{}\nseries{}\n",
            ti % 12,
            (ti / 7) % 18,
            ti % 25
        );
        std::fs::write(dir.join(format!("table_{ti:04}.tags")), tags).expect("writing tags");
    }
    (dir, vec_path, topics)
}

/// Serve one query-ranked step on a fresh session (the "first useful
/// response" a cold process produces).
fn first_step(svc: &NavService, query: &[f32]) -> StepResponse {
    let sid = svc.open_session().expect("opening session");
    svc.step(
        sid,
        &StepRequest {
            action: StepAction::Stay,
            query: Some(query.to_vec()),
            deadline_ms: None,
            list_tables: true,
        },
    )
    .expect("first step")
}

/// Compare two services state-by-state: labels and Eq 1 transition
/// probabilities (bit-for-bit, via `f64::to_bits`) under several queries.
/// Returns the number of states compared; panics on any divergence.
fn assert_bit_identical(owned: &NavService, mapped: &NavService, queries: &[Vec<f32>]) -> usize {
    let a = owned.snapshot();
    let b = mapped.snapshot();
    let order: Vec<_> = a.view().topo_order().to_vec();
    assert_eq!(
        order,
        b.view().topo_order(),
        "topo order differs between owned and mapped"
    );
    for &sid in &order {
        assert_eq!(a.label(sid), b.label(sid), "label differs at {sid:?}");
        assert_eq!(
            a.children(sid),
            b.children(sid),
            "children differ at {sid:?}"
        );
        for q in queries {
            let pa = a.transition_probs(sid, q);
            let pb = b.transition_probs(sid, q);
            assert_eq!(pa.len(), pb.len(), "fanout differs at {sid:?}");
            for ((sa, va), (sb, vb)) in pa.iter().zip(pb.iter()) {
                assert_eq!(sa, sb, "ranking order differs at {sid:?}");
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "probability bits differ at {sid:?}"
                );
            }
        }
    }
    order.len()
}

fn main() {
    let args = parse_args();
    let scratch = std::env::temp_dir().join(format!(
        "dln_bench_store_{}_{}",
        std::process::id(),
        args.seed
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("creating scratch dir");
    eprintln!(
        "materializing corpus: {} tables x {} cols x {} rows, dim {} ...",
        args.tables, args.cols, args.rows, args.dim
    );
    let (lake_dir, vec_path, topics) = write_corpus(&scratch, &args);
    let store_path = scratch.join("org.dln");
    let cfg = ServeConfig::default();

    // --- Path 1: cold CSV rebuild, phase by phase. -----------------------
    let t_total = Instant::now();
    let t = Instant::now();
    let model = VecFileModel::from_path(&vec_path).expect("loading .vec model");
    let model_load_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let lake = load_dir(&lake_dir, &model, &CsvOptions::default()).expect("ingesting CSV lake");
    let ingest_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let ctx = OrgContext::full(&lake);
    let context_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let org = clustering_org(&ctx);
    let cluster_s = t.elapsed().as_secs_f64();
    let queries: Vec<Vec<f32>> = (0..3)
        .map(|i| {
            ctx.attr((i * 17 % ctx.n_attrs().max(1)) as u32)
                .unit_topic
                .clone()
        })
        .collect();
    let (n_attrs, n_tags, n_tables) = (ctx.n_attrs(), ctx.n_tags(), ctx.n_tables());
    let t = Instant::now();
    let owned = NavService::new(ctx, org, NavConfig::default(), cfg);
    let first_owned = first_step(&owned, &queries[0]);
    let serve_s = t.elapsed().as_secs_f64();
    let rebuild_s = t_total.elapsed().as_secs_f64();
    eprintln!(
        "rebuild: {n_attrs} attrs / {n_tags} tags / {n_tables} tables in {rebuild_s:.3}s \
         (model {model_load_s:.3}s, ingest {ingest_s:.3}s, context {context_s:.3}s, \
         cluster {cluster_s:.3}s, serve {serve_s:.3}s)"
    );

    // --- Save the store file. --------------------------------------------
    let t = Instant::now();
    owned.save_current(&store_path).expect("saving store");
    let save_s = t.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&store_path)
        .expect("stat store file")
        .len();

    // --- Path 2: mapped cold start. --------------------------------------
    let t_total = Instant::now();
    let t = Instant::now();
    let mapped = NavService::open_path(&store_path, cfg).expect("opening store");
    let open_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let first_mapped = first_step(&mapped, &queries[0]);
    let mapped_first_step_s = t.elapsed().as_secs_f64();
    let mapped_total_s = t_total.elapsed().as_secs_f64();
    let is_mmap = mapped.snapshot().is_mapped();
    eprintln!(
        "mapped: open {open_s:.6}s + first step {mapped_first_step_s:.6}s \
         ({file_bytes} bytes, mmap: {is_mmap})"
    );

    // --- Bit-identity: served views and every state's ranking. -----------
    assert_eq!(first_owned.state, first_mapped.state);
    assert_eq!(first_owned.label, first_mapped.label);
    assert_eq!(first_owned.children.len(), first_mapped.children.len());
    for (a, b) in first_owned
        .children
        .iter()
        .zip(first_mapped.children.iter())
    {
        assert_eq!(a.state, b.state);
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.prob.map(f64::to_bits),
            b.prob.map(f64::to_bits),
            "first-step child probability bits differ"
        );
    }
    let states_checked = assert_bit_identical(&owned, &mapped, &queries);
    eprintln!(
        "bit-identity: {states_checked} states x {} queries OK",
        queries.len()
    );

    let speedup = rebuild_s / mapped_total_s.max(1e-12);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"store_cold_start\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"tables\": {}, \"cols\": {}, \"rows\": {}, \"dim\": {}, \"seed\": {}, \"topics\": {} }},",
        args.tables, args.cols, args.rows, args.dim, args.seed, topics
    );
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"n_attrs\": {n_attrs}, \"n_tags\": {n_tags}, \"n_tables\": {n_tables} }},"
    );
    let _ = writeln!(
        json,
        "  \"rebuild\": {{ \"model_load_s\": {model_load_s:.6}, \"ingest_s\": {ingest_s:.6}, \"context_s\": {context_s:.6}, \"cluster_s\": {cluster_s:.6}, \"serve_first_step_s\": {serve_s:.6}, \"total_s\": {rebuild_s:.6} }},"
    );
    let _ = writeln!(
        json,
        "  \"store\": {{ \"save_s\": {save_s:.6}, \"file_bytes\": {file_bytes}, \"mmap\": {is_mmap} }},"
    );
    let _ = writeln!(
        json,
        "  \"mapped\": {{ \"open_s\": {open_s:.6}, \"first_step_s\": {mapped_first_step_s:.6}, \"total_s\": {mapped_total_s:.6} }},"
    );
    let _ = writeln!(json, "  \"cold_start_speedup\": {speedup:.1},");
    let _ = writeln!(
        json,
        "  \"bit_identical\": true, \"states_checked\": {states_checked}"
    );
    let _ = writeln!(json, "}}");

    let mut f = std::fs::File::create(&args.out).expect("creating output file");
    f.write_all(json.as_bytes()).expect("writing output file");
    println!(
        "cold start: rebuild {rebuild_s:.3}s vs mapped {mapped_total_s:.6}s — {speedup:.0}x; \
         wrote {}",
        args.out
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
