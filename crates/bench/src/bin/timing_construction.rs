//! **§4.3.2 / §4.3.3 timing** — Construction time of TagCloud
//! organizations.
//!
//! The paper reports (full TagCloud, their setup):
//!
//! | organization   | seconds |
//! |----------------|---------|
//! | clustering     | 0.2     |
//! | 1-dim          | 231.3   |
//! | 2-dim          | 148.9   |
//! | 3-dim          | 113.5   |
//! | 4-dim          | 112.7   |
//! | enriched 2-dim | 217.0   |
//! | 2-dim approx   | 30.3    |
//!
//! Two shape claims matter (absolute numbers are hardware- and
//! implementation-dependent): multi-dimensional construction is *faster*
//! than 1-dim because dimensions optimize independently in parallel and
//! each dimension is smaller; and the 10% representative approximation
//! cuts 2-dim construction by roughly 5× with negligible quality loss.

use dln_bench::{print_table, write_csv, ExpArgs};
use dln_org::{MultiDimConfig, MultiDimOrganization, NavConfig, OrganizerBuilder, SearchConfig};
use dln_synth::TagCloudConfig;

fn main() {
    let args = ExpArgs::parse(0.4);
    let scale = args.effective_scale();
    let cfg = TagCloudConfig {
        seed: args.seed,
        ..TagCloudConfig::paper().scaled(scale)
    };
    let bench = cfg.generate();
    let lake = &bench.lake;
    eprintln!(
        "TagCloud: {} tables / {} attrs / {} tags (scale {scale})",
        lake.n_tables(),
        lake.n_attrs(),
        lake.n_tags()
    );
    let nav = NavConfig { gamma: args.gamma };
    let search = SearchConfig {
        nav,
        seed: args.seed,
        ..Default::default()
    };
    let paper = [
        ("clustering", 0.2),
        ("1-dim", 231.3),
        ("2-dim", 148.9),
        ("3-dim", 113.5),
        ("4-dim", 112.7),
        ("enriched 2-dim", 217.0),
        ("2-dim approx", 30.3),
    ];
    let mut measured: Vec<f64> = Vec::new();

    // clustering
    let t0 = std::time::Instant::now();
    let _ = OrganizerBuilder::new(lake)
        .search_config(search.clone())
        .build_clustering();
    measured.push(t0.elapsed().as_secs_f64());

    // n-dim
    for n_dims in 1..=4usize {
        let t0 = std::time::Instant::now();
        let _ = MultiDimOrganization::build(
            lake,
            &MultiDimConfig {
                n_dims,
                search: search.clone(),
                partition_seed: args.seed ^ 0xD13,
                parallel: true,
            },
        );
        measured.push(t0.elapsed().as_secs_f64());
    }

    // enriched 2-dim
    let t0 = std::time::Instant::now();
    let enriched = bench.enrich();
    let _ = MultiDimOrganization::build(
        &enriched.lake,
        &MultiDimConfig {
            n_dims: 2,
            search: search.clone(),
            partition_seed: args.seed ^ 0xD13,
            parallel: true,
        },
    );
    measured.push(t0.elapsed().as_secs_f64());

    // 2-dim approx
    let t0 = std::time::Instant::now();
    let _ = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 2,
            search: SearchConfig {
                rep_fraction: 0.1,
                ..search.clone()
            },
            partition_seed: args.seed ^ 0xD13,
            parallel: true,
        },
    );
    measured.push(t0.elapsed().as_secs_f64());

    println!("\n§4.3.2/§4.3.3 — organization construction time on TagCloud");
    println!("(absolute numbers differ from the paper's setup; the shape is what matters)\n");
    let rows: Vec<Vec<String>> = paper
        .iter()
        .zip(&measured)
        .map(|((name, p), m)| vec![name.to_string(), format!("{p:.1}"), format!("{m:.2}")])
        .collect();
    print_table(&["organization", "paper s", "measured s"], &rows);
    let one_dim = measured[1];
    let two_dim = measured[2];
    let two_dim_approx = measured[6];
    println!(
        "\nshape checks: multi-dim faster than 1-dim? {} (2-dim {:.2}s vs 1-dim {:.2}s); approx speedup {:.1}x (paper: 4.9x)",
        if two_dim <= one_dim { "yes" } else { "no" },
        two_dim,
        one_dim,
        two_dim / two_dim_approx.max(1e-9)
    );
    let paper_col: Vec<f64> = paper.iter().map(|(_, p)| *p).collect();
    let cols: Vec<(&str, &[f64])> = vec![
        ("paper_seconds", paper_col.as_slice()),
        ("measured_seconds", measured.as_slice()),
    ];
    let path = write_csv(&args.out, "timing_construction.csv", &cols).expect("csv written");
    println!("written to {}", path.display());
}
