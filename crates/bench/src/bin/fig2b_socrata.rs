//! **Figure 2(b)** — Success probability on the Socrata lake (§4.3.4).
//!
//! The paper partitions the Socrata crawl's 11,083 tags into ten groups
//! with k-medoids, optimizes one organization per group (12 hours at full
//! scale on their setup, using the 10% representative approximation), and
//! compares the resulting 10-dimensional organization against "the current
//! state of navigation in data portals using only tags" — the flat
//! baseline. Reported averages: **0.38** for the 10-dim organization vs
//! **0.12** for tag-only navigation.
//!
//! The default run uses a 10%-scale Socrata-like lake (`--full` for paper
//! scale).

use dln_bench::{curve_summary, print_table, write_csv, ExpArgs};
use dln_org::{
    success::DEFAULT_THETA, MultiDimConfig, MultiDimOrganization, NavConfig, OrganizerBuilder,
    SearchConfig,
};
use dln_synth::SocrataConfig;

fn main() {
    let args = ExpArgs::parse(0.1);
    let scale = args.effective_scale();
    let cfg = SocrataConfig {
        seed: args.seed,
        ..SocrataConfig::paper().scaled(scale)
    };
    eprintln!(
        "generating Socrata-like lake: {} tables / {} tags (scale {scale})",
        cfg.n_tables, cfg.n_tags
    );
    let socrata = cfg.generate();
    let lake = &socrata.lake;
    eprintln!("{}", lake.stats());

    let nav = NavConfig { gamma: args.gamma };
    let search = SearchConfig {
        nav,
        rep_fraction: 0.1, // §4.3.4: representative set = 10% of attributes
        seed: args.seed,
        ..Default::default()
    };

    // Flat baseline: tag-only navigation.
    let t0 = std::time::Instant::now();
    let flat = OrganizerBuilder::new(lake)
        .search_config(search.clone())
        .build_flat();
    let flat_curve = flat.success_curve(lake, DEFAULT_THETA);
    let flat_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "flat baseline: {} ({flat_secs:.1}s)",
        curve_summary(&flat_curve.values())
    );

    // Ten-dimensional organization.
    let t0 = std::time::Instant::now();
    let md = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 10,
            search: search.clone(),
            partition_seed: args.seed ^ 0x50C,
            parallel: true,
        },
    );
    let build_secs = t0.elapsed().as_secs_f64();
    let md_curve = md.success_curve(lake, DEFAULT_THETA);
    eprintln!(
        "10-dim organization: {} (built in {build_secs:.1}s wall; slowest dimension {:.1}s)",
        curve_summary(&md_curve.values()),
        md.parallel_construction_time().as_secs_f64()
    );

    println!("\nFigure 2(b) — success probability on the Socrata lake");
    println!("paper: 10-dim avg 0.38 vs tag-only flat avg 0.12 (ratio ~3.2x)\n");
    let flat_vals = flat_curve.values();
    let md_vals = md_curve.values();
    print_table(
        &["organization", "avg success", "p50", "seconds"],
        &[
            vec![
                "flat (tags only)".into(),
                format!("{:.4}", flat_curve.mean),
                format!("{:.4}", flat_vals[flat_vals.len() / 2]),
                format!("{flat_secs:.1}"),
            ],
            vec![
                "10-dim".into(),
                format!("{:.4}", md_curve.mean),
                format!("{:.4}", md_vals[md_vals.len() / 2]),
                format!("{build_secs:.1}"),
            ],
        ],
    );
    println!(
        "\nmeasured ratio: {:.2}x (paper: ~3.2x)",
        md_curve.mean / flat_curve.mean.max(1e-12)
    );
    let cols: Vec<(&str, &[f64])> = vec![
        ("flat", flat_vals.as_slice()),
        ("ten_dim", md_vals.as_slice()),
    ];
    let path = write_csv(&args.out, "fig2b_socrata.csv", &cols).expect("csv written");
    println!("curves written to {}", path.display());
}
