//! **Table 1** — Statistics of the 10 organizations of the Socrata lake
//! (§4.3.4).
//!
//! The paper's table reports, for each of the ten k-medoids tag clusters,
//! the number of tags, attributes, tables, and evaluation representatives.
//! Cluster sizes are heavily skewed (2,031 tags in the largest dimension
//! down to 43 in the smallest), because tag popularity in open-data
//! portals is Zipfian.

use dln_bench::{print_table, write_csv, ExpArgs};
use dln_org::{MultiDimConfig, MultiDimOrganization, NavConfig, SearchConfig};
use dln_synth::SocrataConfig;

fn main() {
    let args = ExpArgs::parse(0.1);
    let scale = args.effective_scale();
    let cfg = SocrataConfig {
        seed: args.seed,
        ..SocrataConfig::paper().scaled(scale)
    };
    eprintln!(
        "generating Socrata-like lake: {} tables / {} tags (scale {scale})",
        cfg.n_tables, cfg.n_tags
    );
    let socrata = cfg.generate();
    let lake = &socrata.lake;
    eprintln!("{}", lake.stats());
    let md = MultiDimOrganization::build(
        lake,
        &MultiDimConfig {
            n_dims: 10,
            search: SearchConfig {
                nav: NavConfig { gamma: args.gamma },
                rep_fraction: 0.1,
                seed: args.seed,
                ..Default::default()
            },
            partition_seed: args.seed ^ 0x50C,
            parallel: true,
        },
    );
    let stats = md.dim_stats();
    println!("\nTable 1 — statistics of the 10 organizations of the Socrata lake");
    println!(
        "paper (full scale): tags 2,031..43; attrs 28,248..118; tables 3,284..33; reps = 10% of attrs\n"
    );
    let rows: Vec<Vec<String>> = stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                format!("{}", i + 1),
                format!("{}", s.n_tags),
                format!("{}", s.n_attrs),
                format!("{}", s.n_tables),
                format!("{}", s.n_reps),
            ]
        })
        .collect();
    print_table(&["Org", "#Tags", "#Atts", "#Tables", "#Reps"], &rows);
    let skew = stats.first().map(|s| s.n_tags).unwrap_or(0) as f64
        / stats.last().map(|s| s.n_tags.max(1)).unwrap_or(1) as f64;
    println!(
        "\nskew (largest/smallest dimension by tags): {skew:.1}x (paper: {:.1}x)",
        2031.0 / 43.0
    );
    let tags: Vec<f64> = stats.iter().map(|s| s.n_tags as f64).collect();
    let attrs: Vec<f64> = stats.iter().map(|s| s.n_attrs as f64).collect();
    let tables: Vec<f64> = stats.iter().map(|s| s.n_tables as f64).collect();
    let reps: Vec<f64> = stats.iter().map(|s| s.n_reps as f64).collect();
    let cols: Vec<(&str, &[f64])> = vec![
        ("tags", tags.as_slice()),
        ("attrs", attrs.as_slice()),
        ("tables", tables.as_slice()),
        ("reps", reps.as_slice()),
    ];
    let path = write_csv(&args.out, "table1_socrata_stats.csv", &cols).expect("csv written");
    println!("written to {}", path.display());
}
