//! Ingest-churn maintenance benchmark: emits `BENCH_churn.json`.
//!
//! The claim under test (DESIGN.md §5i): when a lake churns, incremental
//! maintenance — CDC change log → delta apply → localized re-search of
//! only the affected shards — publishes a comparable-quality organization
//! in a fraction of the wall-clock of rebuilding from scratch.
//!
//! Setup: a TagCloud lake built into a 4-shard served organization. Churn
//! is *localized*, as production ingest is: each batch's events (adds,
//! removes, retags) draw their labels from the tags of `--hot-shards`
//! of the initial shards, modelling a per-domain feed. Per batch, two
//! timed paths over the identical post-batch lake:
//!
//! * **incremental** — `Maintainer::ingest` each event (durable,
//!   checksummed, ack-after-fsync), then one
//!   `NavService::run_maintenance_cycle` (plan → delta apply → per-shard
//!   search → shard-scoped republish);
//! * **rebuild** — a from-scratch `build_sharded` over the same lake with
//!   the same search budget.
//!
//! Both results are scored with plain Eq 6 effectiveness (exact
//! representatives) so "comparable effectiveness" is measured, not
//! assumed. The summary reports total wall-clock for each path and the
//! speedup; the per-batch lines additionally carry how many shards the
//! incremental path actually searched and how many slots the republish
//! scope contained.
//!
//! Flags: `--attrs <n>` target attribute count (default 600), `--seed <n>`,
//! `--batches <n>` churn batches (default 4), `--events <n>` events per
//! batch (default 10), `--hot-shards <n>` initial shards whose labels
//! receive the churn (default 1), `--out <path>` (default
//! `BENCH_churn.json`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use dln_bench::git_commit;
use dln_embed::TopicAccumulator;
use dln_lake::{AttrChange, ChangeEvent, DataLake};
use dln_org::{
    build_sharded, Evaluator, MaintConfig, Maintainer, NavConfig, OrgContext, Organization,
    Representatives, SearchConfig, ShardPolicy, ShardedBuild,
};
use dln_serve::{NavService, ServeConfig};
use dln_synth::TagCloudConfig;

struct Args {
    attrs: usize,
    seed: u64,
    batches: usize,
    events: usize,
    hot_shards: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 600,
        seed: 42,
        batches: 4,
        events: 10,
        hot_shards: 1,
        out: "BENCH_churn.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--batches" => {
                args.batches = need(i + 1).parse().expect("--batches: integer");
                i += 2;
            }
            "--events" => {
                args.events = need(i + 1).parse().expect("--events: integer");
                i += 2;
            }
            "--hot-shards" => {
                args.hot_shards = need(i + 1).parse().expect("--hot-shards: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --attrs <n> --seed <n> --batches <n> --events <n> \
                     --hot-shards <n> --out <path>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dln_bench_churn_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service(build: &ShardedBuild) -> NavService {
    NavService::new(
        build.built.ctx.clone(),
        build.built.organization.clone(),
        build.built.nav,
        ServeConfig::default(),
    )
}

/// Deterministic splitmix64 — the benchmark's own randomness,
/// independent of any library RNG.
fn mix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A topic accumulator near `label`'s direction in `lake`, with a
/// deterministic nudge — so added attributes land inside the hot
/// region's geometry instead of scattering churn across shards.
fn topic_near(lake: &DataLake, label: &str, nudge: f32) -> TopicAccumulator {
    let tid = lake.tag_by_label(label).expect("hot label exists");
    let unit = &lake.tag(tid).unit_topic;
    let mut v: Vec<f32> = unit.clone();
    for (i, x) in v.iter_mut().enumerate() {
        *x += nudge * ((i % 3) as f32 - 1.0);
    }
    let mut acc = TopicAccumulator::new(lake.dim());
    acc.add(&v);
    acc
}

/// One batch of localized churn: adds, removes and retags whose labels
/// all come from `hot` (the hot shards' label set). `live` carries the
/// churn tables surviving from earlier batches.
fn churn_batch(
    lake: &DataLake,
    hot: &[String],
    live: &mut Vec<String>,
    batch: usize,
    n: usize,
    seed: u64,
) -> Vec<ChangeEvent> {
    let mut z = seed ^ (batch as u64).wrapping_mul(0x9E37_79B9);
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let roll = mix(&mut z) % 4;
        if roll >= 2 || live.is_empty() {
            let name = format!("churn_b{batch}_t{i}");
            let l0 = hot[(mix(&mut z) as usize) % hot.len()].clone();
            let mut tags = vec![l0.clone()];
            if mix(&mut z).is_multiple_of(3) {
                tags.push(hot[(mix(&mut z) as usize) % hot.len()].clone());
            }
            events.push(ChangeEvent::TableAdded {
                name: name.clone(),
                tags,
                attrs: vec![AttrChange {
                    name: "c0".to_string(),
                    topic: topic_near(lake, &l0, 0.01 * (i as f32 + 1.0)),
                    n_values: 6,
                    tags: Vec::new(),
                }],
            });
            live.push(name);
        } else if roll == 0 {
            let ix = (mix(&mut z) as usize) % live.len();
            let name = live.swap_remove(ix);
            events.push(ChangeEvent::TableRemoved { name });
        } else {
            let ix = (mix(&mut z) as usize) % live.len();
            let name = live[ix].clone();
            let mut tags = vec![hot[(mix(&mut z) as usize) % hot.len()].clone()];
            if mix(&mut z).is_multiple_of(2) {
                tags.push(hot[(mix(&mut z) as usize) % hot.len()].clone());
            }
            events.push(ChangeEvent::TableRetagged { name, tags });
        }
    }
    events
}

/// Plain Eq 6 effectiveness (exact representatives).
fn effectiveness(ctx: &OrgContext, org: &Organization, nav: NavConfig) -> f64 {
    let reps = Representatives::exact(ctx);
    Evaluator::new(ctx, org, nav, &reps).effectiveness()
}

fn main() {
    let args = parse_args();
    eprintln!("generating TagCloud lake (~{} attrs) ...", args.attrs);
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let build_cfg = SearchConfig {
        max_iters: 200,
        plateau_iters: 60,
        seed: args.seed,
        shards: ShardPolicy::Fixed(4),
        ..SearchConfig::default()
    };
    let build = build_sharded(&bench.lake, &build_cfg);
    let ctx = &build.built.ctx;
    eprintln!(
        "context: {} attrs, {} tags, {} tables, {} shards",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        build.n_shards()
    );

    // The hot label set: every tag of the first `--hot-shards` initial
    // shards. All churn draws its labels from here.
    let hot_n = args.hot_shards.clamp(1, build.n_shards());
    let hot: Vec<String> = build.shard_tags[..hot_n]
        .iter()
        .flatten()
        .map(|&t| bench.lake.tag(t).label.clone())
        .collect();
    eprintln!(
        "hot region: {} labels across {hot_n} initial shard(s)",
        hot.len()
    );

    let svc = service(&build);
    let dir = tmp_dir("maint");
    let mut mcfg = MaintConfig::new(&dir);
    mcfg.search = build_cfg.clone();
    mcfg.slice = None;
    mcfg.rebalance_drift = 0.05;
    mcfg.cdc_path = None;
    let mut maint = Maintainer::for_build(&bench.lake, &build, mcfg).expect("open maintainer");

    let mut live: Vec<String> = Vec::new();
    let mut batch_lines = Vec::new();
    let mut inc_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut final_inc_eff = 0.0f64;
    let mut final_rebuild_eff = 0.0f64;
    for batch in 0..args.batches {
        let events = churn_batch(maint.lake(), &hot, &mut live, batch, args.events, args.seed);

        let t0 = Instant::now();
        for ev in &events {
            maint.ingest(ev).expect("ingest");
        }
        let ingest_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let report = svc.run_maintenance_cycle(&mut maint).expect("cycle");
        let inc_secs = t1.elapsed().as_secs_f64();
        assert!(report.epoch.is_some(), "each batch publishes a cycle");
        inc_total += ingest_secs + inc_secs;

        // From-scratch rebuild over the identical post-batch lake.
        let post_lake = maint.lake().clone();
        let t2 = Instant::now();
        let fresh = build_sharded(&post_lake, &build_cfg);
        let rebuild_secs = t2.elapsed().as_secs_f64();
        rebuild_total += rebuild_secs;

        let (mctx, morg) = svc.snapshot().owned_parts().expect("owned snapshot");
        let inc_eff = effectiveness(&mctx, &morg, svc.snapshot().nav());
        let rebuild_eff =
            effectiveness(&fresh.built.ctx, &fresh.built.organization, fresh.built.nav);
        final_inc_eff = inc_eff;
        final_rebuild_eff = rebuild_eff;
        eprintln!(
            "batch {batch}: {} events, incremental {:.3}s ({} of {} shards searched, \
             {} changed slots), rebuild {rebuild_secs:.3}s, effectiveness \
             {inc_eff:.6} vs {rebuild_eff:.6}",
            events.len(),
            ingest_secs + inc_secs,
            report.searched_shards,
            build.n_shards(),
            report.n_changed,
        );
        batch_lines.push(format!(
            "      {{ \"batch\": {batch}, \"events\": {}, \"ingest_seconds\": \
             {ingest_secs:.6}, \"incremental_seconds\": {inc_secs:.6}, \
             \"rebuild_seconds\": {rebuild_secs:.6}, \"searched_shards\": {}, \
             \"changed_slots\": {}, \"effectiveness_incremental\": {inc_eff:.9}, \
             \"effectiveness_rebuild\": {rebuild_eff:.9} }}",
            events.len(),
            report.searched_shards,
            report.n_changed,
        ));
    }

    let speedup = rebuild_total / inc_total.max(1e-9);
    eprintln!(
        "total: incremental {inc_total:.3}s vs rebuild {rebuild_total:.3}s \
         ({speedup:.2}x), final effectiveness {final_inc_eff:.6} vs \
         {final_rebuild_eff:.6} (gap {:+.6})",
        final_inc_eff - final_rebuild_eff
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"churn\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \
         \"n_tables\": {}, \"seed\": {} }},",
        ctx.n_attrs(),
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"n_shards\": {},", build.n_shards());
    let _ = writeln!(json, "  \"events_per_batch\": {},", args.events);
    let _ = writeln!(json, "  \"hot_shards\": {hot_n},");
    let _ = writeln!(json, "  \"batches\": [");
    let _ = writeln!(json, "{}", batch_lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(json, "    \"incremental_total_seconds\": {inc_total:.6},");
    let _ = writeln!(json, "    \"rebuild_total_seconds\": {rebuild_total:.6},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.4},");
    let _ = writeln!(
        json,
        "    \"final_effectiveness_incremental\": {final_inc_eff:.9},"
    );
    let _ = writeln!(
        json,
        "    \"final_effectiveness_rebuild\": {final_rebuild_eff:.9},"
    );
    let _ = writeln!(
        json,
        "    \"effectiveness_gap\": {:.9}",
        final_inc_eff - final_rebuild_eff
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_churn.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
    std::fs::remove_dir_all(&dir).ok();
}
