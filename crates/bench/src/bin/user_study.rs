//! **§4.4 user study** — navigation vs keyword search (simulated).
//!
//! The paper's 12-participant within-subject study found:
//!
//! * **H1**: no statistically significant difference in the *number* of
//!   relevant tables found (largest sessions: 44 navigation / 34 search);
//! * **H2**: result disjointness across participants was significantly
//!   *higher* for navigation (Mdn 0.985 vs 0.916, Mann–Whitney p=0.0019);
//! * only ≈5% of tables were found by both modalities;
//! * <1% of collected tables were judged irrelevant by the verifiers.
//!
//! This binary generates a Socrata-like lake, splits it into two
//! tag-disjoint sub-lakes (Socrata-2 / Socrata-3), builds organizations
//! and a BM25+expansion search engine per sub-lake, runs the simulated
//! participants through the latin-square schedule, and applies the same
//! statistics. See `DESIGN.md` §1 for why simulated participants preserve
//! the measurable claims.

use dln_bench::{write_csv, ExpArgs};
use dln_org::{NavConfig, SearchConfig};
use dln_study::{run_study, AgentConfig, StudyConfig};
use dln_synth::SocrataConfig;

fn main() {
    let args = ExpArgs::parse(0.15);
    let scale = args.effective_scale();
    let cfg = SocrataConfig {
        seed: args.seed,
        store_values: true, // search needs raw values
        ..SocrataConfig::paper().scaled(scale)
    };
    eprintln!(
        "generating Socrata-like lake: {} tables / {} tags (scale {scale})",
        cfg.n_tables, cfg.n_tags
    );
    let socrata = cfg.generate();
    let (lake2, lake3) = socrata.split_disjoint(args.seed ^ 0x2357);
    eprintln!(
        "sub-lakes: Socrata-2-like {} tables / {} tags; Socrata-3-like {} tables / {} tags (tag-disjoint)",
        lake2.n_tables(),
        lake2.n_tags(),
        lake3.n_tables(),
        lake3.n_tags()
    );
    let study_cfg = StudyConfig {
        n_participants: 12,
        n_dims: 5,
        search: SearchConfig {
            nav: NavConfig { gamma: args.gamma },
            rep_fraction: 0.1,
            seed: args.seed,
            ..Default::default()
        },
        agent: AgentConfig {
            budget: 200,
            judge_threshold: 0.73,
            seed: args.seed,
            ..Default::default()
        },
        relevance_threshold: 0.75,
        seed: args.seed,
        ..Default::default()
    };
    eprintln!("running 12 simulated participants (latin-square blocks) ...");
    let report = run_study(&lake2, &lake3, &socrata.model, &study_cfg).expect("study");
    println!("\n{report}");

    let cols: Vec<(&str, &[f64])> = vec![
        ("nav_found", report.nav.n_found.as_slice()),
        ("search_found", report.search.n_found.as_slice()),
        ("nav_disjointness", report.nav.disjointness.as_slice()),
        ("search_disjointness", report.search.disjointness.as_slice()),
    ];
    let path = write_csv(&args.out, "user_study.csv", &cols).expect("csv written");
    println!("\nraw samples written to {}", path.display());
}
