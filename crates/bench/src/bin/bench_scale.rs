//! Full-Socrata-scale construction benchmark: emits `BENCH_scale.json`.
//!
//! The paper's real lake has ~50,879 attributes and its organization build
//! took ~12 h; this bench drives a synthetic lake of comparable attribute
//! count end-to-end through the scale-ready front-end and reports, per
//! thread count of the `DLN_THREADS` sweep:
//!
//! 1. **Pairwise build** — [`CondensedMatrix::from_points`] over *all*
//!    attribute unit topics (tiled gram kernel, `n(n−1)/2` f32 entries),
//!    with the peak distance-store bytes reported next to the dense
//!    `n × n` baseline it replaces (the ratio is ~0.5 by construction);
//! 2. **Clustering** — NN-chain average linkage over the condensed store
//!    ([`Dendrogram::average_linkage_condensed`]), the paper's §3.3
//!    initial-organization step at full attribute scale;
//! 3. **k-medoids** — a matrix-free [`KMedoids`] fit over the full
//!    attribute set (strip-blocked through the tiled kernel; working
//!    memory is kilobytes, never `n × n`);
//! 4. **Sharded construction** — [`build_sharded`] on the same lake under
//!    `ShardPolicy::Auto` (knee of the k-medoids cost curve) and the
//!    fixed-4 baseline, with stitched effectiveness and the auto
//!    spectrum recorded so the policy choice is auditable.
//!
//! At toy sizes (`n ≤ ORACLE_MAX_N`) the dense-matrix oracle also runs
//! and the merge sequences are **bit-compared** — the bench doubles as an
//! end-to-end determinism check and fails loudly on any divergence.
//!
//! Flags: `--attrs <n>` target attribute count (default 50_000),
//! `--seed <n>`, `--iters <n>` proposal budget per shard search
//! (default 64), `--kmedoids-k <k>` cluster count for stage 3 (default 16),
//! `--out <path>` JSON output path (default `BENCH_scale.json`).
//!
//! [`CondensedMatrix::from_points`]: dln_cluster::CondensedMatrix::from_points
//! [`Dendrogram::average_linkage_condensed`]: dln_cluster::Dendrogram::average_linkage_condensed
//! [`KMedoids`]: dln_cluster::KMedoids
//! [`build_sharded`]: dln_org::build_sharded

use std::fmt::Write as _;
use std::time::Instant;

use dln_bench::{git_commit, thread_sweep};
use dln_cluster::{CondensedMatrix, CosinePoints, Dendrogram, KMedoids};
use dln_org::{build_sharded, OrgContext, SearchConfig, ShardPolicy, ShardedBuild};
use dln_synth::TagCloudConfig;

/// Largest attribute count at which the dense oracle path also runs and
/// merge sequences are bit-compared (dense is `n × n`; 1500² f32 ≈ 9 MB).
const ORACLE_MAX_N: usize = 1_500;

/// Iteration cap for the stage-3 k-medoids fit — bounds the stage's
/// wall-clock deterministically; convergence typically lands well under it.
const KMEDOIDS_MAX_ITER: usize = 10;

struct Args {
    attrs: usize,
    seed: u64,
    iters: usize,
    kmedoids_k: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        attrs: 50_000,
        seed: 42,
        iters: 64,
        kmedoids_k: 16,
        out: "BENCH_scale.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> &str {
            argv.get(j).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("error: {} needs a value", argv[j - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--attrs" => {
                args.attrs = need(i + 1).parse().expect("--attrs: integer");
                i += 2;
            }
            "--seed" => {
                args.seed = need(i + 1).parse().expect("--seed: integer");
                i += 2;
            }
            "--iters" => {
                args.iters = need(i + 1).parse().expect("--iters: integer");
                i += 2;
            }
            "--kmedoids-k" => {
                args.kmedoids_k = need(i + 1).parse().expect("--kmedoids-k: integer");
                i += 2;
            }
            "--out" => {
                args.out = need(i + 1).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --attrs <n> --seed <n> --iters <n> --kmedoids-k <k> --out <path>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One timed sharded build (partition + searches + stitch, plateau stop
/// disabled for comparability across cells).
fn timed_build(
    lake: &dln_lake::DataLake,
    seed: u64,
    iters: usize,
    shards: ShardPolicy,
) -> (f64, ShardedBuild) {
    let cfg = SearchConfig {
        max_iters: iters,
        plateau_iters: iters.max(1),
        seed,
        shards,
        ..Default::default()
    };
    let start = Instant::now();
    let build = build_sharded(lake, &cfg);
    (start.elapsed().as_secs_f64(), build)
}

fn main() {
    let args = parse_args();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "generating TagCloud lake (~{} attrs), host parallelism {host_threads} ...",
        args.attrs
    );
    let bench = TagCloudConfig {
        n_tags: (args.attrs / 12).max(16),
        n_attrs_target: args.attrs,
        store_values: false,
        seed: args.seed,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    let n = ctx.n_attrs();
    if ctx.n_tags() == 0 || n < 2 {
        eprintln!("error: --attrs {} produced a degenerate lake", args.attrs);
        std::process::exit(2);
    }
    eprintln!(
        "context: {} attrs, {} tags, {} tables",
        n,
        ctx.n_tags(),
        ctx.n_tables()
    );
    let units: Vec<&[f32]> = (0..n as u32).map(|a| ctx.attr_unit(a)).collect();
    let points = CosinePoints::new(units);

    let sweep = thread_sweep();
    let mut stage_lines = Vec::new();
    let mut construction_lines = Vec::new();
    let mut condensed_bytes = 0usize;
    let mut dense_baseline = 0usize;
    let mut oracle_checked = false;
    let mut spectrum_json = "null".to_string();
    for &threads in &sweep {
        rayon::set_num_threads(threads);

        // Stage 1: condensed pairwise build over every attribute.
        let start = Instant::now();
        let cond = CondensedMatrix::from_points(&points);
        let pairwise_secs = start.elapsed().as_secs_f64();
        condensed_bytes = cond.bytes();
        dense_baseline = cond.dense_baseline_bytes();
        eprintln!(
            "pairwise @ {threads} thread(s): {:.1} ms, {} entries, {:.3} GB condensed \
             ({:.4} of dense baseline)",
            pairwise_secs * 1e3,
            cond.entries(),
            condensed_bytes as f64 / 1e9,
            condensed_bytes as f64 / dense_baseline as f64,
        );

        // Stage 2: NN-chain average linkage over the condensed store
        // (consumes it — the store *is* the working memory).
        let start = Instant::now();
        let dend = Dendrogram::average_linkage_condensed(cond);
        let cluster_secs = start.elapsed().as_secs_f64();
        eprintln!(
            "clustering @ {threads} thread(s): {:.1} ms, {} merges",
            cluster_secs * 1e3,
            dend.merges().len()
        );

        // Toy sizes: run the dense oracle and bit-compare merge sequences.
        if n <= ORACLE_MAX_N {
            let dense = Dendrogram::average_linkage_dense(&points);
            let same = dense.merges().len() == dend.merges().len()
                && dense.merges().iter().zip(dend.merges()).all(|(a, b)| {
                    a.a == b.a
                        && a.b == b.b
                        && a.size == b.size
                        && a.dist.to_bits() == b.dist.to_bits()
                });
            assert!(
                same,
                "condensed merge sequence diverged from the dense oracle \
                 (n = {n}, threads = {threads})"
            );
            oracle_checked = true;
            eprintln!("oracle @ {threads} thread(s): dense merge sequence bit-identical");
        }

        // Stage 3: matrix-free k-medoids over the full attribute set.
        let k = args.kmedoids_k.clamp(1, n);
        let start = Instant::now();
        let km = KMedoids::fit_with(&points, k, args.seed, KMEDOIDS_MAX_ITER);
        let kmedoids_secs = start.elapsed().as_secs_f64();
        eprintln!(
            "kmedoids @ {threads} thread(s): {:.1} ms, k = {k}, cost {:.4}, {} iteration(s)",
            kmedoids_secs * 1e3,
            km.cost,
            km.iterations
        );
        stage_lines.push(format!(
            "    {{ \"threads\": {threads}, \"pairwise_seconds\": {pairwise_secs:.6}, \"clustering_seconds\": {cluster_secs:.6}, \"merges\": {}, \"kmedoids_seconds\": {kmedoids_secs:.6}, \"kmedoids_k\": {k}, \"kmedoids_cost\": {:.9}, \"kmedoids_iterations\": {} }}",
            dend.merges().len(),
            km.cost,
            km.iterations
        ));

        // Stage 4: sharded construction, auto policy vs the fixed-4 baseline.
        for &shards in &[ShardPolicy::Auto, ShardPolicy::Fixed(4)] {
            let (secs, build) = timed_build(&bench.lake, args.seed, args.iters, shards);
            let eff = build.effectiveness();
            let knee = build
                .shard_spectrum
                .as_ref()
                .map(|s| s.knee.to_string())
                .unwrap_or_else(|| "null".to_string());
            if let Some(spec) = &build.shard_spectrum {
                let costs: Vec<String> = spec.costs.iter().map(|c| format!("{c:.9}")).collect();
                spectrum_json = format!(
                    "{{ \"candidates\": {:?}, \"costs\": [{}], \"knee\": {} }}",
                    spec.candidates,
                    costs.join(", "),
                    spec.knee
                );
            }
            eprintln!(
                "construction shards={shards} @ {threads} thread(s): {:.1} ms, \
                 effectiveness {eff:.6}, {} shards built, {} proposals",
                secs * 1e3,
                build.n_shards(),
                build.total_iterations()
            );
            construction_lines.push(format!(
                "    {{ \"threads\": {threads}, \"shards\": \"{shards}\", \"auto_knee\": {knee}, \"seconds\": {secs:.6}, \"effectiveness\": {eff:.9}, \"n_shards_built\": {}, \"iterations\": {} }}",
                build.n_shards(),
                build.total_iterations()
            ));
        }
    }
    rayon::set_num_threads(0); // restore the environment default

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"scale\",");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(
        json,
        "  \"lake\": {{ \"generator\": \"tagcloud\", \"n_attrs\": {}, \"n_tags\": {}, \"n_tables\": {}, \"seed\": {} }},",
        n,
        ctx.n_tags(),
        ctx.n_tables(),
        args.seed
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"proposal_budget_per_shard\": {},", args.iters);
    let _ = writeln!(json, "  \"condensed_bytes\": {condensed_bytes},");
    let _ = writeln!(json, "  \"dense_baseline_bytes\": {dense_baseline},");
    let _ = writeln!(
        json,
        "  \"condensed_vs_dense\": {:.6},",
        condensed_bytes as f64 / dense_baseline as f64
    );
    let _ = writeln!(json, "  \"oracle_bit_compared\": {oracle_checked},");
    let _ = writeln!(json, "  \"auto_spectrum\": {spectrum_json},");
    let _ = writeln!(json, "  \"stages\": [");
    let _ = writeln!(json, "{}", stage_lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"construction\": [");
    let _ = writeln!(json, "{}", construction_lines.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write BENCH_scale.json");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
