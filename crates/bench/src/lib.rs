//! Shared infrastructure for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §3 for the index). All binaries accept:
//!
//! * `--scale <f>`  — size multiplier relative to the binary's default;
//! * `--full`       — run at the paper's full scale (can be slow —
//!   the paper's own full Socrata construction took 12 hours);
//! * `--seed <n>`   — RNG seed;
//! * `--gamma <g>`  — the γ of the transition model (Eq 1);
//! * `--out <dir>`  — CSV output directory (default `target/experiments`).
//!
//! Results are printed as plain-text tables and also written as CSV so the
//! curves can be plotted.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::Write;
use std::path::{Path, PathBuf};

pub mod timing;

/// Parsed common experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Scale multiplier (interpreted per binary).
    pub scale: f64,
    /// Run at the paper's full scale.
    pub full: bool,
    /// RNG seed.
    pub seed: u64,
    /// Transition-model γ.
    pub gamma: f32,
    /// Output directory for CSV files.
    pub out: PathBuf,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with a per-binary default scale.
    pub fn parse(default_scale: f64) -> ExpArgs {
        let mut args = ExpArgs {
            scale: default_scale,
            full: false,
            seed: 42,
            gamma: 20.0,
            out: PathBuf::from("target/experiments"),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number"));
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                    i += 2;
                }
                "--gamma" => {
                    args.gamma = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--gamma needs a number"));
                    i += 2;
                }
                "--out" => {
                    args.out = argv
                        .get(i + 1)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--out needs a path"));
                    i += 2;
                }
                "--full" => {
                    args.full = true;
                    i += 1;
                }
                "--help" | "-h" => {
                    eprintln!("flags: --scale <f> --full --seed <n> --gamma <g> --out <dir>");
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// The effective scale: 1.0 when `--full`, else `scale`.
    pub fn effective_scale(&self) -> f64 {
        if self.full {
            1.0
        } else {
            self.scale
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// The current git commit (short hash, `+dirty` when the tree has local
/// modifications), or `"unknown"` outside a repository — stamped into
/// every bench JSON so numbers stay traceable to the code that produced
/// them.
pub fn git_commit() -> String {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output();
    let hash = match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => String::new(),
    };
    if hash.is_empty() {
        return "unknown".to_string();
    }
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .map(|o| o.status.success() && !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{hash}+dirty")
    } else {
        hash
    }
}

/// The worker counts a bench sweeps over: the canonical `{1, 2, 4, 8}`
/// ladder capped by `DLN_THREADS` when set (else the host parallelism),
/// with the cap itself always included — so the configured operating
/// point is measured even when it is not a power of two, and every bench
/// binary honors the knob the same way.
pub fn thread_sweep() -> Vec<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = std::env::var("DLN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(host);
    let mut sweep: Vec<usize> = [1, 2, 4, 8].into_iter().filter(|&t| t <= cap).collect();
    if !sweep.contains(&cap) {
        sweep.push(cap);
    }
    if sweep.is_empty() {
        sweep.push(1);
    }
    sweep.sort_unstable();
    sweep
}

/// Write a CSV file of named columns (columns may have different lengths;
/// missing cells are left empty).
pub fn write_csv(dir: &Path, name: &str, columns: &[(&str, &[f64])]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    let header: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    writeln!(f, "{}", header.join(","))?;
    let rows = columns.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for r in 0..rows {
        let row: Vec<String> = columns
            .iter()
            .map(|(_, c)| c.get(r).map(|v| format!("{v}")).unwrap_or_default())
            .collect();
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render a fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Summarize a success curve for the textual report: mean plus a few
/// quantiles of the sorted per-table values.
pub fn curve_summary(values: &[f64]) -> String {
    if values.is_empty() {
        return "empty".to_string();
    }
    let q = |p: f64| values[((values.len() - 1) as f64 * p) as usize];
    format!(
        "mean={:.3} p10={:.3} p50={:.3} p90={:.3}",
        values.iter().sum::<f64>() / values.len() as f64,
        q(0.1),
        q(0.5),
        q(0.9)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dln_bench_test_{}", std::process::id()));
        let a = [1.0, 2.0];
        let b = [3.0];
        let path = write_csv(&dir, "t.csv", &[("a", &a), ("b", &b)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(text, "a,b\n1,3\n2,\n");
    }

    #[test]
    fn thread_sweep_is_sorted_dedup_nonempty() {
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sweep[0], 1);
    }

    #[test]
    fn git_commit_is_nonempty() {
        assert!(!git_commit().is_empty());
    }

    #[test]
    fn curve_summary_formats() {
        let s = curve_summary(&[0.0, 0.5, 1.0]);
        assert!(s.contains("mean=0.500"));
        assert_eq!(curve_summary(&[]), "empty");
    }
}
