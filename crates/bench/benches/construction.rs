//! Criterion micro-benchmarks for organization construction: the kernels
//! behind the §4.3.2 construction-time table — clustering initialization,
//! k-medoids partitioning, the two local-search operations, and a bounded
//! local-search run (exact vs representative-approximate evaluation).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dln_cluster::{CosinePoints, Dendrogram, KMedoids};
use dln_org::{clustering_org, ops, search, Evaluator, NavConfig, OrgContext, Representatives, SearchConfig};
use dln_synth::TagCloudConfig;

fn bench_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 80,
        n_attrs_target: 500,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

fn clustering_init(c: &mut Criterion) {
    let ctx = bench_ctx();
    c.bench_function("clustering_org/80tags", |b| {
        b.iter(|| black_box(clustering_org(&ctx)))
    });
}

fn agglomerative(c: &mut Criterion) {
    let ctx = bench_ctx();
    let points = CosinePoints::new(ctx.tags().iter().map(|t| t.unit_topic.as_slice()).collect());
    c.bench_function("dendrogram/average_linkage/80", |b| {
        b.iter(|| black_box(Dendrogram::average_linkage(&points)))
    });
}

fn kmedoids(c: &mut Criterion) {
    let ctx = bench_ctx();
    let points =
        CosinePoints::new(ctx.attrs().iter().map(|a| a.unit_topic.as_slice()).collect());
    let mut g = c.benchmark_group("kmedoids/attrs500");
    for k in [10usize, 50] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(KMedoids::fit(&points, k, 7)))
        });
    }
    g.finish();
}

fn op_add_parent(c: &mut Criterion) {
    let ctx = bench_ctx();
    let org = clustering_org(&ctx);
    let reach = vec![0.5f64; org.n_slots()];
    c.bench_function("op/add_parent+undo", |b| {
        b.iter_batched(
            || org.clone(),
            |mut o| {
                let s = o.tag_state(3);
                if let Some(out) = ops::try_add_parent(&mut o, &ctx, s, &reach) {
                    ops::undo(&mut o, &ctx, out);
                }
                black_box(o)
            },
            BatchSize::SmallInput,
        )
    });
}

fn local_search_bounded(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut g = c.benchmark_group("local_search/50iters");
    g.sample_size(10);
    for (name, rep_fraction) in [("exact", 1.0f64), ("approx10", 0.1)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || clustering_org(&ctx),
                |mut org| {
                    let cfg = SearchConfig {
                        max_iters: 50,
                        plateau_iters: usize::MAX,
                        rep_fraction,
                        ..Default::default()
                    };
                    black_box(search::optimize(&ctx, &mut org, &cfg))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn evaluator_build(c: &mut Criterion) {
    let ctx = bench_ctx();
    let org = clustering_org(&ctx);
    let reps = Representatives::exact(&ctx);
    c.bench_function("evaluator/full_build/exact", |b| {
        b.iter(|| black_box(Evaluator::new(&ctx, &org, NavConfig::default(), &reps)))
    });
}

criterion_group!(
    benches,
    clustering_init,
    agglomerative,
    kmedoids,
    op_add_parent,
    local_search_bounded,
    evaluator_build
);
criterion_main!(benches);
