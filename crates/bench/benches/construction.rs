//! Micro-benchmarks for organization construction: the kernels behind the
//! §4.3.2 construction-time table — clustering initialization, k-medoids
//! partitioning, the two local-search operations, and a bounded
//! local-search run (exact vs representative-approximate evaluation).
//!
//! Plain `main()` harness over [`dln_bench::timing`]; run with
//! `cargo bench --bench construction`.

use dln_bench::timing::bench_n;
use dln_cluster::{CosinePoints, Dendrogram, KMedoids};
use dln_org::{
    clustering_org, ops, search, Evaluator, NavConfig, OrgContext, Representatives, SearchConfig,
};
use dln_synth::TagCloudConfig;

fn bench_ctx() -> OrgContext {
    let bench = TagCloudConfig {
        n_tags: 80,
        n_attrs_target: 500,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    OrgContext::full(&bench.lake)
}

fn main() {
    let ctx = bench_ctx();
    bench_n("clustering_org/80tags", 10, || clustering_org(&ctx));

    let tag_points =
        CosinePoints::new(ctx.tags().iter().map(|t| t.unit_topic.as_slice()).collect());
    bench_n("dendrogram/average_linkage/80", 20, || {
        Dendrogram::average_linkage(&tag_points)
    });

    let attr_points = CosinePoints::new(
        ctx.attrs()
            .iter()
            .map(|a| a.unit_topic.as_slice())
            .collect(),
    );
    for k in [10usize, 50] {
        bench_n(&format!("kmedoids/attrs500/k{k}"), 5, || {
            KMedoids::fit(&attr_points, k, 7)
        });
    }

    // Op + undo leaves the organization bit-identical, so one instance can
    // be reused across iterations.
    let mut org = clustering_org(&ctx);
    let reach = vec![0.5f64; org.n_slots()];
    bench_n("op/add_parent+undo", 200, || {
        let s = org.tag_state(3);
        if let Some(out) = ops::try_add_parent(&mut org, &ctx, s, &reach) {
            ops::undo(&mut org, &ctx, out);
        }
    });

    for (name, rep_fraction) in [("exact", 1.0f64), ("approx10", 0.1)] {
        bench_n(&format!("local_search/50iters/{name}"), 3, || {
            let mut org = clustering_org(&ctx);
            let cfg = SearchConfig {
                max_iters: 50,
                plateau_iters: usize::MAX,
                rep_fraction,
                ..Default::default()
            };
            search::optimize(&ctx, &mut org, &cfg)
        });
    }

    let org = clustering_org(&ctx);
    let reps = Representatives::exact(&ctx);
    bench_n("evaluator/full_build/exact", 10, || {
        Evaluator::new(&ctx, &org, NavConfig::default(), &reps)
    });
}
