//! Micro-benchmarks for the navigation-model evaluation kernels: the
//! reach-probability DP, incremental delta evaluation (cached parallel path
//! vs the seed baseline), exact discovery probabilities, success-curve
//! computation, and generator throughput.
//!
//! Plain `main()` harness over [`dln_bench::timing`]; run with
//! `cargo bench --bench evaluation`. The deeper threaded sweep that emits
//! `BENCH_eval.json` lives in the `bench_eval` binary.

use dln_bench::timing::bench_n;
use dln_org::{
    clustering_org, eval::discovery_probs, ops, success, Evaluator, NavConfig, OrgContext,
    Representatives,
};
use dln_synth::{SocrataConfig, TagCloudConfig};

fn bench_setup() -> (dln_lake::DataLake, OrgContext) {
    let bench = TagCloudConfig {
        n_tags: 80,
        n_attrs_target: 500,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    (bench.lake, ctx)
}

fn main() {
    let (lake, ctx) = bench_setup();
    let org = clustering_org(&ctx);

    for (name, fraction) in [("exact", 1.0f64), ("reps10", 0.1)] {
        let reps = if fraction >= 1.0 {
            Representatives::exact(&ctx)
        } else {
            Representatives::kmedoids(&ctx, fraction, 7)
        };
        bench_n(&format!("evaluator/full/{name}"), 10, || {
            Evaluator::new(&ctx, &org, NavConfig::default(), &reps)
        });
    }

    // Delta + rollback restores both structures exactly, so the organization
    // and evaluator are reused across iterations.
    let reps = Representatives::exact(&ctx);
    let mut delta_org = clustering_org(&ctx);
    let mut ev = Evaluator::new(&ctx, &delta_org, NavConfig::default(), &reps);
    let mut reach = Vec::new();
    bench_n("evaluator/incremental_delta/cached", 100, || {
        ev.reachability_into(&mut reach);
        let s = delta_org.tag_state(3);
        let out = ops::try_add_parent(&mut delta_org, &ctx, s, &reach).expect("applicable");
        let (undo, stats) = ev.apply_delta(&ctx, &delta_org, &out.dirty_parents);
        ev.rollback(undo);
        ops::undo(&mut delta_org, &ctx, out);
        stats
    });
    bench_n("evaluator/incremental_delta/seed_baseline", 100, || {
        ev.reachability_into(&mut reach);
        let s = delta_org.tag_state(3);
        let out = ops::try_add_parent(&mut delta_org, &ctx, s, &reach).expect("applicable");
        let (undo, stats) = ev.apply_delta_uncached(&ctx, &delta_org, &out.dirty_parents);
        ev.rollback(undo);
        ops::undo(&mut delta_org, &ctx, out);
        stats
    });

    for threads in [1usize, 4] {
        bench_n(&format!("discovery_probs/500attrs/t{threads}"), 3, || {
            discovery_probs(&ctx, &org, NavConfig::default(), threads)
        });
    }

    let disc = {
        let built = dln_org::builder::BuiltOrganization {
            ctx: ctx.clone(),
            organization: org.clone(),
            nav: NavConfig::default(),
            search_stats: None,
        };
        built.attr_discovery_global(&lake)
    };
    bench_n("success_curve/500attrs/theta0.9", 5, || {
        success::success_curve(&lake, &disc, 0.9, 4)
    });

    bench_n("generators/tagcloud/small", 3, || {
        TagCloudConfig::small().generate()
    });
    bench_n("generators/socrata/small", 3, || {
        SocrataConfig::small().generate()
    });
}
