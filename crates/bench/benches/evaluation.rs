//! Criterion micro-benchmarks for the navigation-model evaluation kernels:
//! the reach-probability DP, incremental delta evaluation, exact discovery
//! probabilities, success-curve computation, and generator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dln_org::{
    clustering_org, eval::discovery_probs, ops, success, Evaluator, NavConfig, OrgContext,
    Representatives,
};
use dln_synth::{SocrataConfig, TagCloudConfig};

fn bench_setup() -> (dln_lake::DataLake, OrgContext) {
    let bench = TagCloudConfig {
        n_tags: 80,
        n_attrs_target: 500,
        store_values: false,
        ..TagCloudConfig::small()
    }
    .generate();
    let ctx = OrgContext::full(&bench.lake);
    (bench.lake, ctx)
}

fn full_evaluation(c: &mut Criterion) {
    let (_lake, ctx) = bench_setup();
    let org = clustering_org(&ctx);
    let mut g = c.benchmark_group("evaluator/full");
    for (name, fraction) in [("exact", 1.0f64), ("reps10", 0.1)] {
        let reps = if fraction >= 1.0 {
            Representatives::exact(&ctx)
        } else {
            Representatives::kmedoids(&ctx, fraction, 7)
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(Evaluator::new(&ctx, &org, NavConfig::default(), &reps)))
        });
    }
    g.finish();
}

fn incremental_delta(c: &mut Criterion) {
    let (_lake, ctx) = bench_setup();
    let reps = Representatives::exact(&ctx);
    c.bench_function("evaluator/incremental_delta", |b| {
        b.iter_batched(
            || {
                let org = clustering_org(&ctx);
                let ev = Evaluator::new(&ctx, &org, NavConfig::default(), &reps);
                (org, ev)
            },
            |(mut org, mut ev)| {
                let reach = ev.reachability();
                let s = org.tag_state(3);
                let out = ops::try_add_parent(&mut org, &ctx, s, &reach).expect("applicable");
                let (undo, stats) = ev.apply_delta(&ctx, &org, &out.dirty_parents);
                black_box(stats);
                ev.rollback(undo);
                ops::undo(&mut org, &ctx, out);
            },
            BatchSize::SmallInput,
        )
    });
}

fn exact_discovery(c: &mut Criterion) {
    let (_lake, ctx) = bench_setup();
    let org = clustering_org(&ctx);
    let mut g = c.benchmark_group("discovery_probs/500attrs");
    g.sample_size(20);
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(discovery_probs(&ctx, &org, NavConfig::default(), t)))
        });
    }
    g.finish();
}

fn success_curve(c: &mut Criterion) {
    let (lake, ctx) = bench_setup();
    let org = clustering_org(&ctx);
    let disc = {
        let built = dln_org::builder::BuiltOrganization {
            ctx: ctx.clone(),
            organization: org,
            nav: NavConfig::default(),
            search_stats: None,
        };
        built.attr_discovery_global(&lake)
    };
    let mut g = c.benchmark_group("success_curve/500attrs");
    g.sample_size(20);
    g.bench_function("theta0.9", |b| {
        b.iter(|| black_box(success::success_curve(&lake, &disc, 0.9, 4)))
    });
    g.finish();
}

fn generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("tagcloud/small", |b| {
        b.iter(|| black_box(TagCloudConfig::small().generate()))
    });
    g.bench_function("socrata/small", |b| {
        b.iter(|| black_box(SocrataConfig::small().generate()))
    });
    g.finish();
}

criterion_group!(
    benches,
    full_evaluation,
    incremental_delta,
    exact_discovery,
    success_curve,
    generators
);
criterion_main!(benches);
