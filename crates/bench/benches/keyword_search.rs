//! Criterion micro-benchmarks for the keyword-search substrate: index
//! construction, plain BM25 queries, and expansion-enabled queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dln_search::{ExpansionConfig, KeywordSearch};
use dln_synth::SocrataConfig;

fn setup() -> (dln_lake::DataLake, dln_embed::SyntheticEmbedding, Vec<String>) {
    let s = SocrataConfig::small().generate();
    // Query terms: a few vocabulary words.
    let queries: Vec<String> = (0..8)
        .map(|i| s.model.vocab().word(dln_embed::TokenId(i * 37)).to_string())
        .collect();
    (s.lake, s.model, queries)
}

fn index_build(c: &mut Criterion) {
    let (lake, model, _q) = setup();
    let mut g = c.benchmark_group("keyword_index/build");
    g.sample_size(10);
    g.bench_function("plain", |b| b.iter(|| black_box(KeywordSearch::build(&lake))));
    g.bench_function("with_expansion", |b| {
        b.iter(|| {
            black_box(KeywordSearch::build_with_expansion(
                &lake,
                model.clone(),
                ExpansionConfig::default(),
            ))
        })
    });
    g.finish();
}

fn query(c: &mut Criterion) {
    let (lake, model, queries) = setup();
    let plain = KeywordSearch::build(&lake);
    let expanded =
        KeywordSearch::build_with_expansion(&lake, model, ExpansionConfig::default());
    let mut g = c.benchmark_group("keyword_query/top10");
    g.bench_function("bm25", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(plain.search(q, 10));
            }
        })
    });
    g.bench_function("bm25+expansion", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(expanded.search(q, 10));
            }
        })
    });
    g.bench_function("bm25+expansion/expansion_disabled", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(expanded.search_with_options(q, 10, false));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, index_build, query);
criterion_main!(benches);
