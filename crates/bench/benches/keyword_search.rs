//! Micro-benchmarks for the keyword-search substrate: index construction,
//! plain BM25 queries, and expansion-enabled queries.
//!
//! Plain `main()` harness over [`dln_bench::timing`]; run with
//! `cargo bench --bench keyword_search`.

use dln_bench::timing::bench_n;
use dln_search::{ExpansionConfig, KeywordSearch};
use dln_synth::SocrataConfig;

fn setup() -> (
    dln_lake::DataLake,
    dln_embed::SyntheticEmbedding,
    Vec<String>,
) {
    let s = SocrataConfig::small().generate();
    // Query terms: a few vocabulary words.
    let queries: Vec<String> = (0..8)
        .map(|i| s.model.vocab().word(dln_embed::TokenId(i * 37)).to_string())
        .collect();
    (s.lake, s.model, queries)
}

fn main() {
    let (lake, model, queries) = setup();

    bench_n("keyword_index/build/plain", 5, || {
        KeywordSearch::build(&lake)
    });
    bench_n("keyword_index/build/with_expansion", 5, || {
        KeywordSearch::build_with_expansion(&lake, model.clone(), ExpansionConfig::default())
    });

    let plain = KeywordSearch::build(&lake);
    let expanded =
        KeywordSearch::build_with_expansion(&lake, model.clone(), ExpansionConfig::default());
    bench_n("keyword_query/top10/bm25", 20, || {
        queries
            .iter()
            .map(|q| plain.search(q, 10).len())
            .sum::<usize>()
    });
    bench_n("keyword_query/top10/bm25+expansion", 20, || {
        queries
            .iter()
            .map(|q| expanded.search(q, 10).len())
            .sum::<usize>()
    });
    bench_n("keyword_query/top10/expansion_disabled", 20, || {
        queries
            .iter()
            .map(|q| expanded.search_with_options(q, 10, false).len())
            .sum::<usize>()
    });
}
