//! The organization DAG.
//!
//! States are sets of tags; the graph's sinks are the *tag states* (exactly
//! one tag each, §3.2) and the source is the root, whose tag set is the
//! whole group. Every edge `p → c` satisfies the inclusion property
//! `tags(c) ⊆ tags(p)` — and therefore `attrs(c) ⊆ attrs(p)` since a
//! state's attributes are the union of its tags' populations.
//!
//! Attribute leaves are *implicit*: per §4.3.4 the probability of
//! discovering an attribute is the probability of reaching one of its tag
//! states times the probability of selecting it among the tag's
//! attributes, so the explicit graph stops at tag states.
//!
//! States are stored in a slotted arena; `DELETE_PARENT` tombstones
//! eliminated states (`alive = false`) instead of reindexing, which keeps
//! every evaluator array index-stable across operations.
//!
//! The topological order and the BFS levels are *cached*: the local search
//! asks for both on every proposal, but they only change when the edge set
//! or the alive set changes, so every structural mutation drops the caches
//! and the next query rebuilds them (see `DESIGN.md`, "Performance
//! architecture").

use std::sync::OnceLock;

use dln_embed::TopicAccumulator;

use crate::bitset::BitSet;
use crate::ctx::OrgContext;

/// Identifier of a state within an [`Organization`] (stable across ops).
///
/// `repr(transparent)` over `u32`: a `&[u32]` section of the persistent
/// store ([`crate::store`]) is reinterpreted as `&[StateId]` without a
/// copy, which this layout guarantee makes sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of the organization DAG.
#[derive(Clone, Debug)]
pub struct State {
    /// False when the state was eliminated by `DELETE_PARENT`.
    pub alive: bool,
    /// The local tag of a *tag state* (single-tag sink), else `None`.
    pub tag: Option<u32>,
    /// Tag membership (local tag ids).
    pub tags: BitSet,
    /// Attribute membership: the union of `data(t)` over member tags.
    pub attrs: BitSet,
    /// Topic accumulator over the attribute union (Definition 5).
    pub topic: TopicAccumulator,
    /// Unit-normalized topic vector (cached for cosine-as-dot).
    pub unit_topic: Vec<f32>,
    /// Child states (alive edges only).
    pub children: Vec<StateId>,
    /// Parent states (alive edges only).
    pub parents: Vec<StateId>,
}

/// An organization: a rooted DAG of tag-set states over an [`OrgContext`].
#[derive(Clone, Debug)]
pub struct Organization {
    root: StateId,
    states: Vec<State>,
    /// Tag state of each local tag.
    tag_states: Vec<StateId>,
    /// Cached topological order; dropped by every structural mutation.
    topo: OnceLock<Vec<StateId>>,
    /// Cached BFS levels; dropped by every structural mutation.
    levels: OnceLock<Vec<u32>>,
}

impl Organization {
    /// Create an organization containing only the tag states (one per
    /// context tag) and a root covering every tag. Initializers in
    /// [`crate::init`] add interior structure between root and tag states.
    pub fn with_tag_states(ctx: &OrgContext) -> Organization {
        let n_tags = ctx.n_tags();
        let n_attrs = ctx.n_attrs();
        let mut states = Vec::with_capacity(n_tags + 1);
        let mut tag_states = Vec::with_capacity(n_tags);
        for t in 0..n_tags as u32 {
            let lt = ctx.tag(t);
            let tags = BitSet::from_iter_with_capacity(n_tags, [t]);
            let attrs = BitSet::from_iter_with_capacity(n_attrs, lt.attrs.iter().copied());
            let mut topic = TopicAccumulator::new(ctx.dim());
            for &a in &lt.attrs {
                topic.merge(&ctx.attr(a).topic);
            }
            let unit_topic = topic.unit_mean();
            tag_states.push(StateId(states.len() as u32));
            states.push(State {
                alive: true,
                tag: Some(t),
                tags,
                attrs,
                topic,
                unit_topic,
                children: Vec::new(),
                parents: Vec::new(),
            });
        }
        // Root over the full universe.
        let root_tags = BitSet::full(n_tags);
        let mut org = Organization {
            root: StateId(0),
            states,
            tag_states,
            topo: OnceLock::new(),
            levels: OnceLock::new(),
        };
        let root = org.add_state(ctx, root_tags, None);
        org.root = root;
        org
    }

    /// The root state.
    #[inline]
    pub fn root(&self) -> StateId {
        self.root
    }

    /// A state by id.
    #[inline]
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Drop the order caches after a structural mutation (edge or alive-set
    /// change, or a slot-count change that invalidates array lengths).
    #[inline]
    fn invalidate_order_caches(&mut self) {
        self.topo = OnceLock::new();
        self.levels = OnceLock::new();
    }

    /// Set the alive flag of a state (tombstoning / undo revival).
    pub(crate) fn set_alive(&mut self, id: StateId, alive: bool) {
        if self.states[id.index()].alive != alive {
            self.states[id.index()].alive = alive;
            self.invalidate_order_caches();
        }
    }

    /// Total number of state slots (alive + tombstoned).
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.states.len()
    }

    /// Number of alive states.
    pub fn n_alive(&self) -> usize {
        self.states.iter().filter(|s| s.alive).count()
    }

    /// Number of alive edges.
    pub fn n_edges(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.children.len())
            .sum()
    }

    /// Structural + topical fingerprint of the alive part of the
    /// organization (FNV-folded): slot identities, tag assignments, exact
    /// child/parent list order, and unit-topic bits. Two organizations
    /// with equal fingerprints are bit-identical as far as the search and
    /// evaluator are concerned. Used for cheap bit-identity assertions and
    /// to bind checkpoints to the initial organization they resumed from.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = mix(h, self.n_slots() as u64);
        h = mix(h, self.n_alive() as u64);
        for s in self.alive_ids() {
            let st = self.state(s);
            h = mix(h, s.index() as u64);
            h = mix(h, st.tag.map(|t| t as u64 + 1).unwrap_or(0));
            for &c in &st.children {
                h = mix(h, c.index() as u64 ^ 0x10_0000);
            }
            for &p in &st.parents {
                h = mix(h, p.index() as u64 ^ 0x20_0000);
            }
            for v in &st.unit_topic {
                h = mix(h, v.to_bits() as u64);
            }
        }
        h
    }

    /// Iterate over alive state ids.
    pub fn alive_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| StateId(i as u32))
    }

    /// The tag state of local tag `t`.
    #[inline]
    pub fn tag_state(&self, t: u32) -> StateId {
        self.tag_states[t as usize]
    }

    /// All tag states, indexed by local tag.
    #[inline]
    pub fn tag_states(&self) -> &[StateId] {
        &self.tag_states
    }

    /// Create a new interior state from a tag set, deriving its attribute
    /// union and topic vector from the context. Returns its id.
    pub fn add_state(&mut self, ctx: &OrgContext, tags: BitSet, tag: Option<u32>) -> StateId {
        let mut attrs = BitSet::new(ctx.n_attrs());
        let mut topic = TopicAccumulator::new(ctx.dim());
        for t in tags.iter() {
            for &a in &ctx.tag(t).attrs {
                if attrs.insert(a) {
                    topic.merge(&ctx.attr(a).topic);
                }
            }
        }
        let unit_topic = topic.unit_mean();
        let id = StateId(self.states.len() as u32);
        self.invalidate_order_caches(); // cached arrays are length n_slots
        self.states.push(State {
            alive: true,
            tag,
            tags,
            attrs,
            topic,
            unit_topic,
            children: Vec::new(),
            parents: Vec::new(),
        });
        id
    }

    /// Add edge `parent → child` (no-op if already present).
    ///
    /// Edge lists are kept sorted by slot id. This canonical order makes
    /// edge-set restoration (op undo) an exact *order* restoration too,
    /// which downstream caches rely on: the evaluator's per-state
    /// child-topic matrices are row-aligned with `children` and stay valid
    /// across a remove + re-add round trip.
    ///
    /// Callers must preserve the inclusion property; [`validate`] checks it.
    ///
    /// [`validate`]: Organization::validate
    pub fn add_edge(&mut self, parent: StateId, child: StateId) -> bool {
        debug_assert_ne!(parent, child, "self edge");
        let cs = &mut self.states[parent.index()].children;
        let Err(ci) = cs.binary_search(&child) else {
            return false;
        };
        cs.insert(ci, child);
        let ps = &mut self.states[child.index()].parents;
        if let Err(pi) = ps.binary_search(&parent) {
            ps.insert(pi, parent);
        }
        self.invalidate_order_caches();
        true
    }

    /// Remove edge `parent → child` (returns false if absent).
    pub fn remove_edge(&mut self, parent: StateId, child: StateId) -> bool {
        let cs = &mut self.states[parent.index()].children;
        let Some(ci) = cs.iter().position(|&c| c == child) else {
            return false;
        };
        cs.remove(ci);
        let ps = &mut self.states[child.index()].parents;
        if let Some(pi) = ps.iter().position(|&p| p == parent) {
            ps.remove(pi);
        }
        self.invalidate_order_caches();
        true
    }

    /// Grow state `sid` (and no one else) by the tags in `new_tags`,
    /// updating its attribute union and topic vector incrementally.
    /// Returns the tags and attributes actually added (for undo logs).
    pub(crate) fn absorb_tags(
        &mut self,
        ctx: &OrgContext,
        sid: StateId,
        new_tags: &BitSet,
    ) -> (Vec<u32>, Vec<u32>) {
        let state = &mut self.states[sid.index()];
        let added_tags: Vec<u32> = state.tags.missing_from(new_tags).collect();
        let mut added_attrs = Vec::new();
        for &t in &added_tags {
            state.tags.insert(t);
        }
        for &t in &added_tags {
            for &a in &ctx.tag(t).attrs {
                if state.attrs.insert(a) {
                    state.topic.merge(&ctx.attr(a).topic);
                    added_attrs.push(a);
                }
            }
        }
        if !added_attrs.is_empty() {
            state.topic.write_unit_mean(&mut state.unit_topic);
        }
        (added_tags, added_attrs)
    }

    /// Undo of [`absorb_tags`](Self::absorb_tags): remove the recorded tags
    /// and attributes and restore the exact pre-absorb topic state. The
    /// accumulator is restored from the snapshot rather than by
    /// subtraction, so undo is bit-exact (floating-point subtraction would
    /// leave drift that desynchronizes cached evaluator state).
    pub(crate) fn shed_tags(
        &mut self,
        sid: StateId,
        tags: &[u32],
        attrs: &[u32],
        prev_topic: TopicAccumulator,
        prev_unit: Vec<f32>,
    ) {
        let state = &mut self.states[sid.index()];
        for &t in tags {
            state.tags.remove(t);
        }
        for &a in attrs {
            state.attrs.remove(a);
        }
        state.topic = prev_topic;
        state.unit_topic = prev_unit;
    }

    /// Shortest-path level of every state slot from the root (BFS over
    /// alive edges). Dead or unreachable slots get `u32::MAX`.
    ///
    /// Cached: recomputed only after a structural mutation.
    pub fn levels(&self) -> &[u32] {
        self.levels.get_or_init(|| self.compute_levels())
    }

    fn compute_levels(&self) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        if self.states[self.root.index()].alive {
            level[self.root.index()] = 0;
            queue.push_back(self.root);
        }
        while let Some(s) = queue.pop_front() {
            let l = level[s.index()];
            for &c in &self.states[s.index()].children {
                if self.states[c.index()].alive && level[c.index()] == u32::MAX {
                    level[c.index()] = l + 1;
                    queue.push_back(c);
                }
            }
        }
        level
    }

    /// Alive states in a topological order (parents before children),
    /// starting from the root.
    ///
    /// Cached: recomputed only after a structural mutation. Use
    /// [`compute_topo_order`](Self::compute_topo_order) to force the
    /// uncached Kahn pass (benchmark baselines).
    pub fn topo_order(&self) -> &[StateId] {
        self.topo.get_or_init(|| self.compute_topo_order())
    }

    /// The uncached Kahn topological sort (what [`topo_order`] memoizes).
    ///
    /// [`topo_order`]: Self::topo_order
    pub fn compute_topo_order(&self) -> Vec<StateId> {
        let mut indeg = vec![0usize; self.states.len()];
        let mut reachable = vec![false; self.states.len()];
        // Restrict to states reachable from the root.
        let mut stack = vec![self.root];
        reachable[self.root.index()] = true;
        while let Some(s) = stack.pop() {
            for &c in &self.states[s.index()].children {
                if self.states[c.index()].alive && !reachable[c.index()] {
                    reachable[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        for (i, s) in self.states.iter().enumerate() {
            if !s.alive || !reachable[i] {
                continue;
            }
            for c in &s.children {
                if self.states[c.index()].alive && reachable[c.index()] {
                    indeg[c.index()] += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(self.states.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for &c in &self.states[s.index()].children {
                if !self.states[c.index()].alive || !reachable[c.index()] {
                    continue;
                }
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        order
    }

    /// Is `anc` an ancestor of (or equal to) `desc` over alive edges?
    pub fn is_ancestor(&self, anc: StateId, desc: StateId) -> bool {
        if anc == desc {
            return true;
        }
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![anc];
        seen[anc.index()] = true;
        while let Some(s) = stack.pop() {
            for &c in &self.states[s.index()].children {
                if c == desc {
                    return true;
                }
                if self.states[c.index()].alive && !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// All alive states reachable from `roots` (inclusive), i.e. the
    /// affected subgraph of an operation.
    pub fn descendants_of(&self, roots: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = Vec::new();
        let mut out = Vec::new();
        self.descendants_of_into(roots, &mut seen, &mut stack, &mut out);
        out
    }

    /// Allocation-free form of [`descendants_of`](Self::descendants_of) for
    /// hot callers: `seen` must be an all-false slice of length
    /// [`n_slots`](Self::n_slots); on return `seen[s]` is true exactly for
    /// the states appended to `out` (callers reuse it as their own affected
    /// marker and clear it afterwards). `stack` is scratch and left empty.
    pub fn descendants_of_into(
        &self,
        roots: &[StateId],
        seen: &mut [bool],
        stack: &mut Vec<StateId>,
        out: &mut Vec<StateId>,
    ) {
        debug_assert!(seen.len() >= self.states.len());
        debug_assert!(stack.is_empty());
        for &r in roots {
            if self.states[r.index()].alive && !seen[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
        while let Some(s) = stack.pop() {
            out.push(s);
            for &c in &self.states[s.index()].children {
                if self.states[c.index()].alive && !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
    }

    /// A human-readable label for a state: the tag label for tag states,
    /// otherwise the `max_tags` most *popular* member tags (popularity =
    /// attribute count within the state), echoing the labelling scheme of
    /// the user-study prototype (§4.4).
    pub fn label(&self, ctx: &OrgContext, sid: StateId, max_tags: usize) -> String {
        let state = self.state(sid);
        if let Some(t) = state.tag {
            return ctx.tag(t).label.clone();
        }
        let mut scored: Vec<(u32, usize)> = state
            .tags
            .iter()
            .map(|t| {
                let pop = ctx
                    .tag(t)
                    .attrs
                    .iter()
                    .filter(|&&a| state.attrs.contains(a))
                    .count();
                (t, pop)
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let names: Vec<&str> = scored
            .iter()
            .take(max_tags.max(1))
            .map(|(t, _)| ctx.tag(*t).label.as_str())
            .collect();
        names.join(" / ")
    }

    /// Structural validation: the graph must be acyclic, every edge must
    /// satisfy the inclusion property, tag states must hold exactly their
    /// tag and have no children, every alive tag state must be reachable
    /// from the root, and parent/child lists must mirror each other.
    pub fn validate(&self, ctx: &OrgContext) -> Result<(), String> {
        // Mirrored adjacency.
        for (i, s) in self.states.iter().enumerate() {
            if !s.alive {
                continue;
            }
            let sid = StateId(i as u32);
            for &c in &s.children {
                if !self.states[c.index()].alive {
                    return Err(format!("edge {i} -> dead state {}", c.0));
                }
                if !self.states[c.index()].parents.contains(&sid) {
                    return Err(format!("edge {i} -> {} not mirrored", c.0));
                }
            }
            for &p in &s.parents {
                if !self.states[p.index()].alive {
                    return Err(format!("state {i} has dead parent {}", p.0));
                }
                if !self.states[p.index()].children.contains(&sid) {
                    return Err(format!("parent edge {} -> {i} not mirrored", p.0));
                }
            }
        }
        // Acyclicity: topo order must cover all reachable alive states.
        let order = self.topo_order();
        let mut reachable = vec![false; self.states.len()];
        let mut stack = vec![self.root];
        reachable[self.root.index()] = true;
        let mut n_reach = 1usize;
        while let Some(s) = stack.pop() {
            for &c in &self.states[s.index()].children {
                if self.states[c.index()].alive && !reachable[c.index()] {
                    reachable[c.index()] = true;
                    n_reach += 1;
                    stack.push(c);
                }
            }
        }
        if order.len() != n_reach {
            return Err(format!(
                "cycle detected: topo covered {} of {} reachable states",
                order.len(),
                n_reach
            ));
        }
        // Inclusion property on both tag and attribute sets.
        for (i, s) in self.states.iter().enumerate() {
            if !s.alive {
                continue;
            }
            for &c in &s.children {
                let cs = &self.states[c.index()];
                if !s.tags.is_superset_of(&cs.tags) {
                    return Err(format!("tags inclusion violated on edge {i} -> {}", c.0));
                }
                if !s.attrs.is_superset_of(&cs.attrs) {
                    return Err(format!("attrs inclusion violated on edge {i} -> {}", c.0));
                }
            }
        }
        // Tag states.
        for (t, &ts) in self.tag_states.iter().enumerate() {
            let s = self.state(ts);
            if !s.alive {
                return Err(format!("tag state {t} eliminated"));
            }
            if s.tag != Some(t as u32) || s.tags.len() != 1 || !s.tags.contains(t as u32) {
                return Err(format!("tag state {t} does not hold exactly its tag"));
            }
            if !s.children.is_empty() {
                return Err(format!("tag state {t} has children"));
            }
            if ctx.n_tags() > 0 && !reachable[ts.index()] {
                return Err(format!("tag state {t} unreachable from root"));
            }
        }
        Ok(())
    }
}

/// What [`Organization::rebase_universe`] did to the tag-state tier.
#[derive(Clone, Debug, Default)]
pub(crate) struct RebaseReport {
    /// Slots of tag states whose tag left the universe (tombstoned).
    pub removed_tag_slots: Vec<u32>,
    /// Freshly appended tag-state slots for tags new to the universe.
    pub added_tag_slots: Vec<u32>,
}

/// Maintenance surgery (`crate::maintain`). These operations deliberately
/// leave the organization *inconsistent in stages* — tag sets are rebased
/// first, shard subtrees are grafted next, the routing tier and the
/// attribute memberships are recomputed last — so callers must finish the
/// full sequence and then [`validate`](Organization::validate).
impl Organization {
    /// Rebase the organization onto a new tag universe (`ctx` over the
    /// post-churn lake). `tag_map[old_local]` gives the surviving tag's
    /// new local id, or `None` when the tag left the lake.
    ///
    /// Slot-preserving: every surviving state keeps its slot number (the
    /// serving layer's session paths stay meaningful), tag bitsets are
    /// translated to the new capacity/ids, removed tag states are
    /// tombstoned and unlinked, and fresh tag states are appended for new
    /// tags — unrouted until a graft links them under a shard. Attribute
    /// memberships are *not* touched here; run
    /// [`refresh_memberships`](Self::refresh_memberships) after the
    /// grafts.
    pub(crate) fn rebase_universe(
        &mut self,
        ctx: &OrgContext,
        tag_map: &[Option<u32>],
    ) -> RebaseReport {
        let n_tags_new = ctx.n_tags();
        self.invalidate_order_caches();
        // Translate every slot's tag set to the new numbering. Dead slots
        // just get empty sets at the new capacity (they are never read,
        // but mixed capacities would trip bitset assertions later).
        for s in &mut self.states {
            if !s.alive {
                s.tags = BitSet::new(n_tags_new);
                continue;
            }
            let mut translated = BitSet::new(n_tags_new);
            for t in s.tags.iter() {
                if let Some(&Some(nt)) = tag_map.get(t as usize) {
                    translated.insert(nt);
                }
            }
            s.tags = translated;
        }
        // Tombstone the tag states of removed tags; renumber the rest.
        let old_tag_states = std::mem::take(&mut self.tag_states);
        let mut report = RebaseReport::default();
        let mut slot_of_new: Vec<Option<StateId>> = vec![None; n_tags_new];
        for (t_old, &slot) in old_tag_states.iter().enumerate() {
            match tag_map.get(t_old).copied().flatten() {
                Some(nt) => {
                    self.states[slot.index()].tag = Some(nt);
                    slot_of_new[nt as usize] = Some(slot);
                }
                None => {
                    for p in self.states[slot.index()].parents.clone() {
                        self.remove_edge(p, slot);
                    }
                    // Tag states have no children by invariant.
                    self.states[slot.index()].tag = None;
                    self.states[slot.index()].alive = false;
                    report.removed_tag_slots.push(slot.0);
                }
            }
        }
        // Fresh tag states for tags new to the universe.
        let mut tag_states = Vec::with_capacity(n_tags_new);
        for (nt, existing) in slot_of_new.into_iter().enumerate() {
            tag_states.push(match existing {
                Some(slot) => slot,
                None => {
                    let bits = BitSet::from_iter_with_capacity(n_tags_new, [nt as u32]);
                    let slot = self.add_state(ctx, bits, Some(nt as u32));
                    report.added_tag_slots.push(slot.0);
                    slot
                }
            });
        }
        self.tag_states = tag_states;
        // The root spans the whole new universe.
        let root = self.root;
        self.states[root.index()].tags = BitSet::full(n_tags_new);
        report
    }

    /// Structurally shed tag `t` (new-universe local id) from the subtree
    /// under `root` — the cheap-donor half of a cross-shard rebalance: no
    /// search, just set/edge surgery. Removes `t` from every interior tag
    /// set in the subtree, unlinks `t`'s tag state from its parents
    /// inside the subtree, and cascade-tombstones interiors left childless
    /// or tag-empty. The subtree root itself is never tombstoned (callers
    /// guarantee the donor retains ≥ 2 tags). Returns the sorted slots
    /// whose content or edges changed.
    pub(crate) fn shed_tag_from_subtree(&mut self, root: StateId, t: u32) -> Vec<u32> {
        let sub = self.descendants_of(&[root]);
        let mut in_sub = vec![false; self.states.len()];
        for &s in &sub {
            in_sub[s.index()] = true;
        }
        let mut changed: Vec<u32> = Vec::new();
        self.invalidate_order_caches();
        for &s in &sub {
            let st = &mut self.states[s.index()];
            if st.tag.is_none() && st.tags.remove(t) {
                changed.push(s.0);
            }
        }
        let ts = self.tag_states[t as usize];
        for p in self.states[ts.index()].parents.clone() {
            if in_sub[p.index()] {
                self.remove_edge(p, ts);
                changed.push(p.0);
            }
        }
        // Cascade: an interior whose children (or tags) ran out carries no
        // navigation value — tombstone it and let its parents re-check.
        loop {
            let mut any = false;
            for &s in &sub {
                if s == root {
                    continue;
                }
                let st = &self.states[s.index()];
                if !st.alive || st.tag.is_some() {
                    continue;
                }
                if st.children.is_empty() || st.tags.is_empty() {
                    for p in self.states[s.index()].parents.clone() {
                        self.remove_edge(p, s);
                    }
                    for c in self.states[s.index()].children.clone() {
                        self.remove_edge(s, c);
                    }
                    self.states[s.index()].alive = false;
                    changed.push(s.0);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Recompute the routing tier's tag sets: every ancestor of a shard
    /// root (the junctions and the global root, not the shard roots
    /// themselves) gets `tags = ⋃ children`, children-before-parents.
    /// Must run after every graft/shed so the inclusion property holds
    /// across the router again.
    pub(crate) fn refresh_routing_tags(&mut self, shard_roots: &[StateId]) {
        let mut is_junction = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::new();
        for &r in shard_roots {
            for &p in &self.states[r.index()].parents {
                if !is_junction[p.index()] {
                    is_junction[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        while let Some(s) = stack.pop() {
            for &p in &self.states[s.index()].parents.clone() {
                if !is_junction[p.index()] {
                    is_junction[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        let order = self.topo_order().to_vec();
        let cap = self.tag_states.len();
        self.invalidate_order_caches();
        for &s in order.iter().rev() {
            if !is_junction[s.index()] {
                continue;
            }
            let mut union = BitSet::new(cap);
            for c in self.states[s.index()].children.clone() {
                if self.states[c.index()].alive {
                    union.union_with(&self.states[c.index()].tags);
                }
            }
            self.states[s.index()].tags = union;
        }
    }

    /// Recompute every alive slot's attribute membership, topic
    /// accumulator and unit topic from its tag set against `ctx` — the
    /// exact derivation of [`add_state`](Self::add_state) (tags ascending,
    /// per-tag attrs ascending, merge on fresh insert), so two maintained
    /// organizations with equal tag sets get bit-identical topics. Dead
    /// slots are zeroed at the new capacities.
    pub(crate) fn refresh_memberships(&mut self, ctx: &OrgContext) {
        let n_attrs = ctx.n_attrs();
        let n_tags = ctx.n_tags();
        self.invalidate_order_caches();
        for i in 0..self.states.len() {
            if !self.states[i].alive {
                self.states[i].tags = BitSet::new(n_tags);
                self.states[i].attrs = BitSet::new(n_attrs);
                self.states[i].topic = TopicAccumulator::new(ctx.dim());
                self.states[i].unit_topic = self.states[i].topic.unit_mean();
                continue;
            }
            let mut attrs = BitSet::new(n_attrs);
            let mut topic = TopicAccumulator::new(ctx.dim());
            for t in self.states[i].tags.iter() {
                for &a in &ctx.tag(t).attrs {
                    if attrs.insert(a) {
                        topic.merge(&ctx.attr(a).topic);
                    }
                }
            }
            self.states[i].unit_topic = topic.unit_mean();
            self.states[i].attrs = attrs;
            self.states[i].topic = topic;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::OrgContext;
    use dln_synth::TagCloudConfig;

    fn ctx() -> OrgContext {
        let bench = TagCloudConfig::small().generate();
        OrgContext::full(&bench.lake)
    }

    /// Flat organization: root → every tag state.
    fn flat(ctx: &OrgContext) -> Organization {
        let mut org = Organization::with_tag_states(ctx);
        for t in 0..ctx.n_tags() as u32 {
            org.add_edge(org.root(), org.tag_state(t));
        }
        org
    }

    #[test]
    fn with_tag_states_builds_root_over_everything() {
        let ctx = ctx();
        let org = Organization::with_tag_states(&ctx);
        let root = org.state(org.root());
        assert_eq!(root.tags.len(), ctx.n_tags());
        assert_eq!(root.attrs.len(), ctx.n_attrs());
        assert_eq!(org.n_alive(), ctx.n_tags() + 1);
        // Root topic counts every attribute's population exactly once.
        let expected: u64 = ctx.attrs().iter().map(|a| a.topic.count()).sum();
        assert_eq!(root.topic.count(), expected);
    }

    #[test]
    fn flat_org_validates() {
        let ctx = ctx();
        let org = flat(&ctx);
        org.validate(&ctx).expect("flat org is structurally valid");
        assert_eq!(org.n_edges(), ctx.n_tags());
    }

    #[test]
    fn levels_of_flat_org() {
        let ctx = ctx();
        let org = flat(&ctx);
        let levels = org.levels();
        assert_eq!(levels[org.root().index()], 0);
        for t in 0..ctx.n_tags() as u32 {
            assert_eq!(levels[org.tag_state(t).index()], 1);
        }
    }

    #[test]
    fn topo_order_parents_first() {
        let ctx = ctx();
        let org = flat(&ctx);
        let order = org.topo_order();
        assert_eq!(order.len(), org.n_alive());
        assert_eq!(order[0], org.root());
    }

    #[test]
    fn cached_orders_track_mutations() {
        let ctx = ctx();
        let mut org = flat(&ctx);
        let before = org.topo_order().to_vec();
        assert_eq!(org.levels().len(), org.n_slots());
        org.remove_edge(org.root(), org.tag_state(0));
        assert_eq!(
            org.topo_order().len(),
            before.len() - 1,
            "topo cache must be dropped on edge removal"
        );
        assert_eq!(
            org.levels()[org.tag_state(0).index()],
            u32::MAX,
            "levels cache must be dropped on edge removal"
        );
        // Re-adding appends the child at the end of root's children list, so
        // the recomputed order is a (valid) permutation of the original.
        org.add_edge(org.root(), org.tag_state(0));
        assert_eq!(org.topo_order().len(), before.len());
        assert_eq!(org.topo_order()[0], org.root());
        assert_eq!(org.topo_order(), org.compute_topo_order().as_slice());
        assert_eq!(org.levels()[org.tag_state(0).index()], 1);
    }

    #[test]
    fn descendants_of_into_reuses_buffers() {
        let ctx = ctx();
        let org = flat(&ctx);
        let mut seen = vec![false; org.n_slots()];
        let mut stack = Vec::new();
        let mut out = Vec::new();
        org.descendants_of_into(&[org.root()], &mut seen, &mut stack, &mut out);
        assert_eq!(out.len(), org.n_alive());
        assert!(stack.is_empty());
        assert!(out.iter().all(|s| seen[s.index()]));
        assert_eq!(out, org.descendants_of(&[org.root()]));
    }

    #[test]
    fn add_remove_edge_roundtrip() {
        let ctx = ctx();
        let mut org = flat(&ctx);
        let ts = org.tag_state(0);
        assert!(!org.add_edge(org.root(), ts), "edge already present");
        assert!(org.remove_edge(org.root(), ts));
        assert!(!org.remove_edge(org.root(), ts));
        assert!(org.add_edge(org.root(), ts));
        org.validate(&ctx).unwrap();
    }

    #[test]
    fn absorb_and_shed_tags_roundtrip() {
        let ctx = ctx();
        let mut org = flat(&ctx);
        // New interior state over tags {0,1}.
        let tags01 = crate::bitset::BitSet::from_iter_with_capacity(ctx.n_tags(), [0u32, 1]);
        let s = org.add_state(&ctx, tags01, None);
        let before_topic = org.state(s).topic.clone();
        let before_unit = org.state(s).unit_topic.clone();
        // Absorb tag 2.
        let extra = crate::bitset::BitSet::from_iter_with_capacity(ctx.n_tags(), [2u32]);
        let (tags, attrs) = org.absorb_tags(&ctx, s, &extra);
        assert_eq!(tags, vec![2]);
        assert_eq!(attrs.len(), ctx.tag(2).attrs.len());
        assert!(org.state(s).tags.contains(2));
        // Shed it again, restoring the snapshot exactly.
        org.shed_tags(s, &tags, &attrs, before_topic.clone(), before_unit.clone());
        assert!(!org.state(s).tags.contains(2));
        assert_eq!(org.state(s).topic.count(), before_topic.count());
        assert_eq!(org.state(s).unit_topic, before_unit, "bit-exact restore");
    }

    #[test]
    fn absorb_overlapping_tags_is_exact_union() {
        // Tags sharing attributes must not double-count in the topic.
        let ctx = ctx();
        let mut org = Organization::with_tag_states(&ctx);
        let all = crate::bitset::BitSet::full(ctx.n_tags());
        let s = org.add_state(&ctx, all, None);
        assert_eq!(
            org.state(s).topic.count(),
            org.state(org.root()).topic.count()
        );
    }

    #[test]
    fn is_ancestor_and_descendants() {
        let ctx = ctx();
        let org = flat(&ctx);
        assert!(org.is_ancestor(org.root(), org.tag_state(0)));
        assert!(!org.is_ancestor(org.tag_state(0), org.root()));
        assert!(org.is_ancestor(org.root(), org.root()));
        let desc = org.descendants_of(&[org.root()]);
        assert_eq!(desc.len(), org.n_alive());
    }

    #[test]
    fn validate_detects_inclusion_violation() {
        let ctx = ctx();
        let mut org = flat(&ctx);
        // tag state 0 as parent of tag state 1 violates inclusion.
        org.add_edge(org.tag_state(0), org.tag_state(1));
        assert!(org.validate(&ctx).is_err());
    }

    #[test]
    fn validate_detects_unreachable_tag_state() {
        let ctx = ctx();
        let mut org = flat(&ctx);
        org.remove_edge(org.root(), org.tag_state(3));
        let err = org.validate(&ctx).unwrap_err();
        assert!(err.contains("unreachable"), "got: {err}");
    }

    #[test]
    fn label_of_tag_state_is_its_tag() {
        let ctx = ctx();
        let org = flat(&ctx);
        assert_eq!(org.label(&ctx, org.tag_state(0), 2), ctx.tag(0).label);
        let root_label = org.label(&ctx, org.root(), 2);
        assert!(root_label.contains(" / "), "root label joins two tags");
    }
}
